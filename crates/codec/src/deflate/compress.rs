//! DEFLATE compression: an LZ77 hash-chain matcher feeding stored,
//! fixed-Huffman, or dynamic-Huffman block emission, whichever is smallest.

use crate::deflate::bits::BitWriter;
use crate::deflate::huffman::{build_lengths, EncTable};
use crate::deflate::tables::{
    distance_to_symbol, fixed_dist_lens, fixed_litlen_lens, length_to_symbol, CLEN_ORDER,
};

/// Compression effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// No compression: stored blocks only (fastest, for incompressible data).
    Store,
    /// LZ77 with short hash chains + fixed Huffman codes.
    Fast,
    /// LZ77 with deeper chains + dynamic Huffman codes (default).
    Default,
    /// Deepest chains + lazy matching.
    Best,
}

impl Level {
    fn max_chain(self) -> usize {
        match self {
            Level::Store => 0,
            Level::Fast => 16,
            Level::Default => 128,
            Level::Best => 1024,
        }
    }

    /// Stop chain-walking once a match at least this long is in hand: the
    /// marginal win from a longer match rarely pays for a deep walk at the
    /// faster levels.
    fn nice_len(self) -> usize {
        match self {
            Level::Store => 0,
            Level::Fast => 64,
            Level::Default => 128,
            Level::Best => MAX_MATCH,
        }
    }

    fn lazy(self) -> bool {
        matches!(self, Level::Best)
    }
}

const WINDOW_SIZE: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Emit a block at most this many tokens long so Huffman tables adapt.
const MAX_BLOCK_TOKENS: usize = 64 * 1024;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8], level: Level) -> Vec<u8> {
    let mut w = BitWriter::new();
    if data.is_empty() {
        // A final stored block of length zero.
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_to_byte();
        w.write_aligned_bytes(&0u16.to_le_bytes());
        w.write_aligned_bytes(&0xffffu16.to_le_bytes());
        return w.finish();
    }
    if level == Level::Store {
        write_stored(&mut w, data);
        return w.finish();
    }

    let tokens = lz77(data, level);
    // Split the token stream into blocks and pick per block the cheapest of
    // stored / fixed / dynamic. `pos` tracks the raw-byte offset so stored
    // blocks can reference the original data.
    let mut pos = 0usize;
    let mut start = 0usize;
    while start < tokens.len() {
        let end = (start + MAX_BLOCK_TOKENS).min(tokens.len());
        let block = &tokens[start..end];
        let raw_len: usize = block
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        let last = end == tokens.len();
        write_best_block(&mut w, block, &data[pos..pos + raw_len], last);
        pos += raw_len;
        start = end;
    }
    w.finish()
}

fn write_stored(w: &mut BitWriter, data: &[u8]) {
    let mut chunks = data.chunks(u16::MAX as usize).peekable();
    if data.is_empty() {
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_to_byte();
        w.write_aligned_bytes(&0u16.to_le_bytes());
        w.write_aligned_bytes(&0xffffu16.to_le_bytes());
        return;
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = u32::from(chunks.peek().is_none());
        w.write_bits(bfinal, 1);
        w.write_bits(0, 2);
        w.align_to_byte();
        w.write_aligned_bytes(&(chunk.len() as u16).to_le_bytes());
        w.write_aligned_bytes(&(!(chunk.len() as u16)).to_le_bytes());
        w.write_aligned_bytes(chunk);
    }
}

/// Hash-table widths sized to the input: a 64 KiB head table is pure
/// memset overhead when compressing a 12 KiB filtered tile. Deterministic
/// in the input length, so output bytes stay a pure function of
/// `(data, level)`.
fn table_bits(len: usize) -> (u32, u32) {
    let need = len.max(256).next_power_of_two().trailing_zeros();
    (need.clamp(8, 14), need.clamp(8, 16))
}

/// 3-byte hash (used for a single most-recent head, catching short-range
/// length-3 matches the 4-byte chains cannot see).
#[inline(always)]
fn hash3(data: &[u8], i: usize, shift: u32) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> shift) as usize
}

/// 4-byte hash feeding the main chains: one more byte of context halves
/// the rate of false chain entries vs the old 3-byte chains.
#[inline(always)]
fn hash4(data: &[u8], i: usize, shift: u32) -> usize {
    let v = u32::from_le_bytes(data[i..i + 4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> shift) as usize
}

/// Length of the common prefix of `data[cand..]` and `data[i..]`, capped at
/// `limit`, compared 8 bytes at a time. Caller guarantees
/// `i + limit <= data.len()` and `cand < i`. Byte-equality semantics are
/// identical to a byte-at-a-time loop (overlapping self-referential matches
/// included: both compare the raw input, not the decoder's copy).
#[inline]
fn match_len(data: &[u8], cand: usize, i: usize, limit: usize) -> usize {
    let mut l = 0;
    while l + 8 <= limit {
        let a = u64::from_le_bytes(data[cand + l..cand + l + 8].try_into().unwrap());
        let b = u64::from_le_bytes(data[i + l..i + l + 8].try_into().unwrap());
        let x = a ^ b;
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < limit && data[cand + l] == data[i + l] {
        l += 1;
    }
    l
}

/// Hash-chain match finder: a single-entry 3-byte head plus 4-byte hash
/// chains (libdeflate's arrangement). Positions are stored `+1` in `u32`
/// slots so `0` means empty.
struct MatchFinder<'a> {
    data: &'a [u8],
    head3: Vec<u32>,
    head4: Vec<u32>,
    prev: Vec<u32>,
    shift3: u32,
    shift4: u32,
    max_chain: usize,
    nice_len: usize,
}

impl<'a> MatchFinder<'a> {
    fn new(data: &'a [u8], level: Level) -> Self {
        assert!(
            data.len() < u32::MAX as usize,
            "deflate input exceeds u32 position space"
        );
        let (bits3, bits4) = table_bits(data.len());
        MatchFinder {
            data,
            head3: vec![0; 1 << bits3],
            head4: vec![0; 1 << bits4],
            prev: vec![0; data.len()],
            shift3: 32 - bits3,
            shift4: 32 - bits4,
            max_chain: level.max_chain(),
            nice_len: level.nice_len(),
        }
    }

    /// The one place the `i + MIN_MATCH` bound lives: positions too close
    /// to the end can neither be hashed nor start a match.
    #[inline(always)]
    fn hashable(&self, i: usize) -> bool {
        i + MIN_MATCH <= self.data.len()
    }

    /// Enter position `i` into the hash tables.
    #[inline]
    fn insert(&mut self, i: usize) {
        if !self.hashable(i) {
            return;
        }
        self.head3[hash3(self.data, i, self.shift3)] = (i + 1) as u32;
        if i + 4 <= self.data.len() {
            let h = hash4(self.data, i, self.shift4);
            self.prev[i] = self.head4[h];
            self.head4[h] = (i + 1) as u32;
        }
    }

    /// Best `(len, dist)` match for position `i`, if any of length >=
    /// MIN_MATCH exists within the window.
    fn find(&self, i: usize) -> Option<(usize, usize)> {
        if !self.hashable(i) {
            return None;
        }
        let data = self.data;
        let limit = MAX_MATCH.min(data.len() - i);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;

        // Most recent position sharing the 3-byte prefix: the only source
        // of length-3 matches (the chains below need 4 bytes of context).
        let c3 = self.head3[hash3(data, i, self.shift3)];
        if c3 != 0 {
            let cand = (c3 - 1) as usize;
            let dist = i - cand;
            if dist <= WINDOW_SIZE {
                let l = match_len(data, cand, i, limit);
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = dist;
                }
            }
        }

        // Walk the 4-byte chain for longer matches.
        if i + 4 <= data.len() && best_len < limit && best_len < self.nice_len {
            let mut cand = self.head4[hash4(data, i, self.shift4)];
            let mut chain = 0usize;
            while cand != 0 && chain < self.max_chain {
                let c = (cand - 1) as usize;
                let dist = i - c;
                if dist > WINDOW_SIZE {
                    break;
                }
                // Quick reject on the byte past the current best (in range:
                // best_len < limit is invariant while the loop runs).
                if data[c + best_len] == data[i + best_len] {
                    let l = match_len(data, c, i, limit);
                    if l > best_len {
                        best_len = l;
                        best_dist = dist;
                        if l >= limit || l >= self.nice_len {
                            break;
                        }
                    }
                }
                cand = self.prev[c];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Greedy (or lazy, at `Level::Best`) hash-chain LZ77.
fn lz77(data: &[u8], level: Level) -> Vec<Token> {
    let mut f = MatchFinder::new(data, level);
    let mut tokens = Vec::with_capacity(data.len() / 2);

    let mut i = 0;
    while i < data.len() {
        match f.find(i) {
            Some((mut len, mut dist)) => {
                // Lazy evaluation: if the next position has a strictly longer
                // match, emit a literal instead and take that one.
                if level.lazy() && i + 1 < data.len() {
                    f.insert(i);
                    if let Some((len2, dist2)) = f.find(i + 1) {
                        if len2 > len {
                            tokens.push(Token::Literal(data[i]));
                            i += 1;
                            len = len2;
                            dist = dist2;
                        }
                    }
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    let end = i + len;
                    // `i` itself was inserted above.
                    let mut j = i + 1;
                    while j < end && j < data.len() {
                        f.insert(j);
                        j += 1;
                    }
                    i = end;
                } else {
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    let end = i + len;
                    let mut j = i;
                    while j < end && j < data.len() {
                        f.insert(j);
                        j += 1;
                    }
                    i = end;
                }
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                f.insert(i);
                i += 1;
            }
        }
    }
    tokens
}

/// Histogram the token stream into litlen and dist symbol frequencies.
fn frequencies(tokens: &[Token]) -> (Vec<u32>, Vec<u32>) {
    let mut lit = vec![0u32; 286];
    let mut dist = vec![0u32; 30];
    for t in tokens {
        match t {
            Token::Literal(b) => lit[*b as usize] += 1,
            Token::Match { len, dist: d } => {
                lit[length_to_symbol(*len).0 as usize] += 1;
                dist[distance_to_symbol(*d).0 as usize] += 1;
            }
        }
    }
    lit[256] += 1; // end-of-block
    (lit, dist)
}

fn token_cost_bits(tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) -> usize {
    let mut bits = 0usize;
    for t in tokens {
        match t {
            Token::Literal(b) => bits += lit_lens[*b as usize] as usize,
            Token::Match { len, dist } => {
                let (ls, le, _) = length_to_symbol(*len);
                let (ds, de, _) = distance_to_symbol(*dist);
                bits += lit_lens[ls as usize] as usize
                    + le as usize
                    + dist_lens[ds as usize] as usize
                    + de as usize;
            }
        }
    }
    bits + lit_lens[256] as usize
}

fn write_tokens(w: &mut BitWriter, tokens: &[Token], lit: &EncTable, dist: &EncTable) {
    for t in tokens {
        match t {
            Token::Literal(b) => {
                w.write_code(lit.codes[*b as usize] as u32, lit.lens[*b as usize] as u32);
            }
            Token::Match { len, dist: d } => {
                let (ls, le, lv) = length_to_symbol(*len);
                w.write_code(lit.codes[ls as usize] as u32, lit.lens[ls as usize] as u32);
                if le > 0 {
                    w.write_bits(lv as u32, le as u32);
                }
                let (ds, de, dv) = distance_to_symbol(*d);
                w.write_code(
                    dist.codes[ds as usize] as u32,
                    dist.lens[ds as usize] as u32,
                );
                if de > 0 {
                    w.write_bits(dv as u32, de as u32);
                }
            }
        }
    }
    w.write_code(lit.codes[256] as u32, lit.lens[256] as u32);
}

/// Code-length-alphabet RLE (symbols 16/17/18) for the dynamic header.
fn rle_code_lengths(lens: &[u8]) -> Vec<(u8, u8)> {
    // Returns (symbol, extra-bits-value) pairs.
    let mut out = Vec::new();
    let mut i = 0;
    while i < lens.len() {
        let v = lens[i];
        let mut run = 1;
        while i + run < lens.len() && lens[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut remaining = run;
            while remaining >= 11 {
                let take = remaining.min(138);
                out.push((18, (take - 11) as u8));
                remaining -= take;
            }
            if remaining >= 3 {
                out.push((17, (remaining - 3) as u8));
                remaining = 0;
            }
            for _ in 0..remaining {
                out.push((0, 0));
            }
        } else {
            out.push((v, 0));
            let mut remaining = run - 1;
            while remaining >= 3 {
                let take = remaining.min(6);
                out.push((16, (take - 3) as u8));
                remaining -= take;
            }
            for _ in 0..remaining {
                out.push((v, 0));
            }
        }
        i += run;
    }
    out
}

/// Emit one block choosing the cheapest representation.
fn write_best_block(w: &mut BitWriter, tokens: &[Token], raw: &[u8], last: bool) {
    let (lit_freq, dist_freq) = frequencies(tokens);
    let mut dyn_lit_lens = build_lengths(&lit_freq, 15);
    let mut dyn_dist_lens = build_lengths(&dist_freq, 15);
    // DEFLATE requires HLIT >= 257 and HDIST >= 1 entries.
    if dyn_lit_lens.len() < 257 {
        dyn_lit_lens.resize(257, 0);
    }
    if dyn_dist_lens.iter().all(|&l| l == 0) {
        // No distances used: emit a single dummy 1-bit code (decoders accept
        // the incomplete single-code case).
        dyn_dist_lens[0] = 1;
    }

    let fixed_lit = fixed_litlen_lens();
    let fixed_dist = fixed_dist_lens();

    let fixed_cost = 3 + token_cost_bits(tokens, &fixed_lit, &fixed_dist);
    let (dyn_header_bits, clen_plan) = dynamic_header_cost(&dyn_lit_lens, &dyn_dist_lens);
    let dyn_cost = 3 + dyn_header_bits + token_cost_bits(tokens, &dyn_lit_lens, &dyn_dist_lens);
    // Stored cost (upper bound, ignores alignment slack).
    let stored_cost = 3 + 32 + raw.len() * 8 + 7;

    if stored_cost < fixed_cost && stored_cost < dyn_cost {
        // Stored block(s). Note: `write_stored` writes its own BFINAL per
        // chunk, so only use it when this is the last block or raw fits one
        // chunk; otherwise fall through to fixed (rare: incompressible
        // middle blocks).
        if last {
            write_stored(w, raw);
            return;
        } else if raw.len() <= u16::MAX as usize {
            w.write_bits(0, 1);
            w.write_bits(0, 2);
            w.align_to_byte();
            w.write_aligned_bytes(&(raw.len() as u16).to_le_bytes());
            w.write_aligned_bytes(&(!(raw.len() as u16)).to_le_bytes());
            w.write_aligned_bytes(raw);
            return;
        }
    }

    w.write_bits(u32::from(last), 1);
    if dyn_cost < fixed_cost {
        w.write_bits(2, 2);
        write_dynamic_header(w, &dyn_lit_lens, &dyn_dist_lens, &clen_plan);
        let lit = EncTable::from_lens(&dyn_lit_lens);
        let dist = EncTable::from_lens(&dyn_dist_lens);
        write_tokens(w, tokens, &lit, &dist);
    } else {
        w.write_bits(1, 2);
        let lit = EncTable::from_lens(&fixed_lit);
        let dist = EncTable::from_lens(&fixed_dist);
        write_tokens(w, tokens, &lit, &dist);
    }
}

struct ClenPlan {
    clen_lens: [u8; 19],
    rle: Vec<(u8, u8)>,
    hclen: usize,
}

fn dynamic_header_cost(lit_lens: &[u8], dist_lens: &[u8]) -> (usize, ClenPlan) {
    // Trim trailing zeros, respecting minima.
    let hlit = trimmed_len(lit_lens, 257);
    let hdist = trimmed_len(dist_lens, 1);
    let mut all = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lens[..hlit]);
    all.extend_from_slice(&dist_lens[..hdist]);
    let rle = rle_code_lengths(&all);
    let mut clen_freq = vec![0u32; 19];
    for &(sym, _) in &rle {
        clen_freq[sym as usize] += 1;
    }
    let clen_lens_v = build_lengths(&clen_freq, 7);
    let mut clen_lens = [0u8; 19];
    clen_lens.copy_from_slice(&clen_lens_v);
    // HCLEN: number of code-length-code lengths transmitted, in CLEN_ORDER.
    let mut hclen = 19;
    while hclen > 4 && clen_lens[CLEN_ORDER[hclen - 1] as usize] == 0 {
        hclen -= 1;
    }
    let mut bits = 5 + 5 + 4 + 3 * hclen;
    for &(sym, _) in &rle {
        bits += clen_lens[sym as usize] as usize;
        bits += match sym {
            16 => 2,
            17 => 3,
            18 => 7,
            _ => 0,
        };
    }
    (
        bits,
        ClenPlan {
            clen_lens,
            rle,
            hclen,
        },
    )
}

fn trimmed_len(lens: &[u8], min: usize) -> usize {
    let mut n = lens.len();
    while n > min && lens[n - 1] == 0 {
        n -= 1;
    }
    n
}

fn write_dynamic_header(w: &mut BitWriter, lit_lens: &[u8], dist_lens: &[u8], plan: &ClenPlan) {
    let hlit = trimmed_len(lit_lens, 257);
    let hdist = trimmed_len(dist_lens, 1);
    w.write_bits((hlit - 257) as u32, 5);
    w.write_bits((hdist - 1) as u32, 5);
    w.write_bits((plan.hclen - 4) as u32, 4);
    for &idx in CLEN_ORDER.iter().take(plan.hclen) {
        w.write_bits(plan.clen_lens[idx as usize] as u32, 3);
    }
    let clen = EncTable::from_lens(&plan.clen_lens);
    for &(sym, extra) in &plan.rle {
        w.write_code(
            clen.codes[sym as usize] as u32,
            clen.lens[sym as usize] as u32,
        );
        match sym {
            16 => w.write_bits(extra as u32, 2),
            17 => w.write_bits(extra as u32, 3),
            18 => w.write_bits(extra as u32, 7),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::inflate::inflate;
    use proptest::prelude::*;

    const LIMIT: usize = 16 << 20;

    /// Naive mirror of the production matcher: identical candidate policy
    /// (single 3-byte head, 4-byte chains, same chain/nice-length budgets,
    /// same traversal order and tie-breaks) with byte-at-a-time match
    /// extension and `usize` tables. Any divergence in the optimised
    /// word-compare walk shows up as a token-stream mismatch.
    fn lz77_reference(data: &[u8], level: Level) -> Vec<Token> {
        let (bits3, bits4) = table_bits(data.len());
        let (shift3, shift4) = (32 - bits3, 32 - bits4);
        let mut head3 = vec![usize::MAX; 1 << bits3];
        let mut head4 = vec![usize::MAX; 1 << bits4];
        let mut prev = vec![usize::MAX; data.len()];
        let max_chain = level.max_chain();
        let nice_len = level.nice_len();

        let naive_len = |cand: usize, i: usize, limit: usize| -> usize {
            let mut l = 0;
            while l < limit && data[cand + l] == data[i + l] {
                l += 1;
            }
            l
        };

        let find = |head3: &[usize], head4: &[usize], prev: &[usize], i: usize| {
            if i + MIN_MATCH > data.len() {
                return None;
            }
            let limit = MAX_MATCH.min(data.len() - i);
            let mut best_len = MIN_MATCH - 1;
            let mut best_dist = 0usize;
            let c3 = head3[hash3(data, i, shift3)];
            if c3 != usize::MAX && i - c3 <= WINDOW_SIZE {
                let l = naive_len(c3, i, limit);
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = i - c3;
                }
            }
            if i + 4 <= data.len() && best_len < limit && best_len < nice_len {
                let mut cand = head4[hash4(data, i, shift4)];
                let mut chain = 0usize;
                while cand != usize::MAX && chain < max_chain {
                    let dist = i - cand;
                    if dist > WINDOW_SIZE {
                        break;
                    }
                    if data[cand + best_len] == data[i + best_len] {
                        let l = naive_len(cand, i, limit);
                        if l > best_len {
                            best_len = l;
                            best_dist = dist;
                            if l >= limit || l >= nice_len {
                                break;
                            }
                        }
                    }
                    cand = prev[cand];
                    chain += 1;
                }
            }
            if best_len >= MIN_MATCH {
                Some((best_len, best_dist))
            } else {
                None
            }
        };

        let insert = |head3: &mut [usize], head4: &mut [usize], prev: &mut [usize], i: usize| {
            if i + MIN_MATCH > data.len() {
                return;
            }
            head3[hash3(data, i, shift3)] = i;
            if i + 4 <= data.len() {
                let h = hash4(data, i, shift4);
                prev[i] = head4[h];
                head4[h] = i;
            }
        };

        let mut tokens = Vec::new();
        let mut i = 0;
        while i < data.len() {
            match find(&head3, &head4, &prev, i) {
                Some((mut len, mut dist)) => {
                    if level.lazy() && i + 1 < data.len() {
                        insert(&mut head3, &mut head4, &mut prev, i);
                        if let Some((len2, dist2)) = find(&head3, &head4, &prev, i + 1) {
                            if len2 > len {
                                tokens.push(Token::Literal(data[i]));
                                i += 1;
                                len = len2;
                                dist = dist2;
                            }
                        }
                        tokens.push(Token::Match {
                            len: len as u16,
                            dist: dist as u16,
                        });
                        let end = i + len;
                        let mut j = i + 1;
                        while j < end && j < data.len() {
                            insert(&mut head3, &mut head4, &mut prev, j);
                            j += 1;
                        }
                        i = end;
                    } else {
                        tokens.push(Token::Match {
                            len: len as u16,
                            dist: dist as u16,
                        });
                        let end = i + len;
                        let mut j = i;
                        while j < end && j < data.len() {
                            insert(&mut head3, &mut head4, &mut prev, j);
                            j += 1;
                        }
                        i = end;
                    }
                }
                None => {
                    tokens.push(Token::Literal(data[i]));
                    insert(&mut head3, &mut head4, &mut prev, i);
                    i += 1;
                }
            }
        }
        tokens
    }

    #[test]
    fn match_len_agrees_with_naive_at_all_phases() {
        // Exercise every alignment of the u64 fast path, including
        // overlapping (dist < 8) self-referential matches.
        let mut data = Vec::new();
        for i in 0..512usize {
            data.push((i % 7) as u8);
        }
        data.extend_from_slice(&data.clone());
        for dist in 1..16usize {
            for start in 520..540 {
                let limit = MAX_MATCH.min(data.len() - start);
                let fast = match_len(&data, start - dist, start, limit);
                let mut naive = 0;
                while naive < limit && data[start - dist + naive] == data[start + naive] {
                    naive += 1;
                }
                assert_eq!(fast, naive, "dist {dist} start {start}");
            }
        }
    }

    proptest! {
        // The optimised matcher must emit exactly the reference's tokens
        // at every level — this pins the word-compare extension and chain
        // walk to the naive policy byte for byte.
        #[test]
        fn optimised_matcher_equals_reference(
            data in proptest::collection::vec(0u8..8, 0..2048),
            level in (0usize..3).prop_map(|i| [Level::Fast, Level::Default, Level::Best][i]),
        ) {
            prop_assert_eq!(lz77(&data, level), lz77_reference(&data, level));
        }

        // Adversarial repeats: short periods, period changes, and runs that
        // straddle the MAX_MATCH boundary must all round-trip.
        #[test]
        fn adversarial_repeats_round_trip(
            period in 1usize..12,
            reps in 1usize..600,
            tail in proptest::collection::vec(any::<u8>(), 0..32),
            level in (0usize..3).prop_map(|i| [Level::Fast, Level::Default, Level::Best][i]),
        ) {
            let unit: Vec<u8> = (0..period).map(|i| (i * 37 + 11) as u8).collect();
            let mut data: Vec<u8> = unit.iter().cycle().take(period * reps).copied().collect();
            data.extend_from_slice(&tail);
            let compressed = deflate(&data, level);
            prop_assert_eq!(inflate(&compressed, LIMIT).unwrap(), data);
        }
    }

    fn round_trip(data: &[u8], level: Level) {
        let compressed = deflate(data, level);
        let back = inflate(&compressed, LIMIT).unwrap();
        assert_eq!(
            back,
            data,
            "round-trip failed at {level:?} for {} bytes",
            data.len()
        );
    }

    #[test]
    fn empty_input() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            round_trip(b"", level);
        }
    }

    #[test]
    fn tiny_inputs() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            round_trip(b"a", level);
            round_trip(b"ab", level);
            round_trip(b"abc", level);
        }
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let compressed = deflate(&data, level);
            assert!(
                compressed.len() < data.len() / 4,
                "{level:?}: {} -> {}",
                data.len(),
                compressed.len()
            );
            round_trip(&data, level);
        }
    }

    #[test]
    fn long_runs() {
        let data = vec![0u8; 100_000];
        round_trip(&data, Level::Default);
        let compressed = deflate(&data, Level::Default);
        assert!(
            compressed.len() < 200,
            "all-zero should shrink massively: {}",
            compressed.len()
        );
    }

    #[test]
    fn incompressible_data() {
        // Pseudo-random bytes: stored block should win, round trip must hold.
        let mut state = 0x1234_5678u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        for level in [Level::Fast, Level::Default, Level::Best] {
            let compressed = deflate(&data, level);
            round_trip(&data, level);
            assert!(compressed.len() < data.len() + data.len() / 100 + 64);
        }
    }

    #[test]
    fn structured_screen_like_data() {
        // Synthetic scanline-ish content: gradients + repeated UI chrome.
        let mut data = Vec::new();
        for row in 0..200u32 {
            for col in 0..300u32 {
                data.push((col % 17) as u8);
                data.push((row % 13) as u8);
                data.push(200);
            }
        }
        round_trip(&data, Level::Default);
        round_trip(&data, Level::Best);
        let c = deflate(&data, Level::Default);
        assert!(c.len() < data.len() / 5);
    }

    #[test]
    fn exactly_window_sized_and_larger() {
        let pattern: Vec<u8> = (0..=255u8).collect();
        let data: Vec<u8> = pattern
            .iter()
            .cycle()
            .take(WINDOW_SIZE + 1000)
            .copied()
            .collect();
        round_trip(&data, Level::Default);
    }

    #[test]
    fn max_match_lengths_exercised() {
        // 300 identical bytes force a 258-length match + continuation.
        let data = vec![7u8; 300];
        round_trip(&data, Level::Default);
        round_trip(&data, Level::Fast);
    }

    #[test]
    fn store_level_is_stored() {
        let data = b"hello world".repeat(10);
        let c = deflate(&data, Level::Store);
        // 1 stored block: 5 bytes overhead.
        assert_eq!(c.len(), data.len() + 5);
        round_trip(&data, Level::Store);
    }

    #[test]
    fn rle_code_lengths_round_trip_structure() {
        let lens = [
            0u8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 5, 5, 5, 5, 5, 5, 5, 0, 0, 0, 3,
        ];
        let rle = rle_code_lengths(&lens);
        // Expand back.
        let mut expanded: Vec<u8> = Vec::new();
        for &(sym, extra) in &rle {
            match sym {
                16 => {
                    let last = *expanded.last().unwrap();
                    for _ in 0..(3 + extra) {
                        expanded.push(last);
                    }
                }
                17 => expanded.resize(expanded.len() + 3 + extra as usize, 0),
                18 => expanded.resize(expanded.len() + 11 + extra as usize, 0),
                v => expanded.push(v),
            }
        }
        assert_eq!(expanded, lens);
    }
}
