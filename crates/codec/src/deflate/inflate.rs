//! DEFLATE decompression (RFC 1951).

use crate::deflate::bits::BitReader;
use crate::deflate::huffman::Decoder;
use crate::deflate::tables::{
    fixed_dist_lens, fixed_litlen_lens, CLEN_ORDER, DIST_BASE, DIST_EXTRA, LEN_BASE, LEN_EXTRA,
};
use crate::{Error, Result};

/// Decompress a complete DEFLATE stream.
///
/// `max_out` bounds the decompressed size; hostile streams that would expand
/// beyond it are rejected rather than allocated.
pub fn inflate(data: &[u8], max_out: usize) -> Result<Vec<u8>> {
    let mut r = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    loop {
        let bfinal = r.read_bit()?;
        let btype = r.read_bits(2)?;
        match btype {
            0 => inflate_stored(&mut r, &mut out, max_out)?,
            1 => {
                let lit = Decoder::from_lens(&fixed_litlen_lens())?;
                let dist = Decoder::from_lens(&fixed_dist_lens())?;
                inflate_block(&mut r, &mut out, &lit, &dist, max_out)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &mut out, &lit, &dist, max_out)?;
            }
            _ => {
                return Err(Error::Invalid {
                    what: "deflate block",
                    detail: "btype 3",
                })
            }
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>, max_out: usize) -> Result<()> {
    r.align_to_byte();
    let hdr = r.read_aligned_bytes(4)?;
    let len = u16::from_le_bytes([hdr[0], hdr[1]]) as usize;
    let nlen = u16::from_le_bytes([hdr[2], hdr[3]]);
    if nlen != !(len as u16) {
        return Err(Error::Invalid {
            what: "stored block",
            detail: "LEN/NLEN mismatch",
        });
    }
    if out.len() + len > max_out {
        return Err(Error::OutputTooLarge { limit: max_out });
    }
    out.extend_from_slice(&r.read_aligned_bytes(len)?);
    Ok(())
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder)> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(Error::Invalid {
            what: "dynamic header",
            detail: "HLIT/HDIST out of range",
        });
    }
    let mut clen_lens = [0u8; 19];
    for &idx in CLEN_ORDER.iter().take(hclen) {
        clen_lens[idx as usize] = r.read_bits(3)? as u8;
    }
    let clen_dec = Decoder::from_lens(&clen_lens)?;

    let total = hlit + hdist;
    let mut lens = Vec::with_capacity(total);
    while lens.len() < total {
        let sym = clen_dec.decode(r)?;
        match sym {
            0..=15 => lens.push(sym as u8),
            16 => {
                let &last = lens.last().ok_or(Error::Invalid {
                    what: "code lengths",
                    detail: "repeat before any",
                })?;
                let n = 3 + r.read_bits(2)?;
                for _ in 0..n {
                    lens.push(last);
                }
            }
            17 => {
                let n = 3 + r.read_bits(3)? as usize;
                lens.resize(lens.len() + n, 0);
            }
            18 => {
                let n = 11 + r.read_bits(7)? as usize;
                lens.resize(lens.len() + n, 0);
            }
            _ => {
                return Err(Error::Invalid {
                    what: "code lengths",
                    detail: "symbol > 18",
                })
            }
        }
    }
    if lens.len() != total {
        return Err(Error::Invalid {
            what: "code lengths",
            detail: "repeat overruns header",
        });
    }
    let lit = Decoder::from_lens(&lens[..hlit])?;
    let dist = Decoder::from_lens(&lens[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: &Decoder,
    max_out: usize,
) -> Result<()> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => {
                if out.len() >= max_out {
                    return Err(Error::OutputTooLarge { limit: max_out });
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let li = (sym - 257) as usize;
                let len = LEN_BASE[li] as usize + r.read_bits(LEN_EXTRA[li] as u32)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(Error::Invalid {
                        what: "distance",
                        detail: "symbol > 29",
                    });
                }
                let d = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
                if d == 0 || d > out.len() {
                    return Err(Error::Invalid {
                        what: "distance",
                        detail: "reaches before stream start",
                    });
                }
                if out.len() + len > max_out {
                    return Err(Error::OutputTooLarge { limit: max_out });
                }
                // Overlapping copy: must proceed byte-by-byte when d < len.
                let start = out.len() - d;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => {
                return Err(Error::Invalid {
                    what: "literal/length",
                    detail: "symbol > 285",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::bits::BitWriter;

    /// Hand-built stored block.
    #[test]
    fn stored_block_golden() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0, 2); // stored
        w.align_to_byte();
        w.write_aligned_bytes(&5u16.to_le_bytes());
        w.write_aligned_bytes(&(!5u16).to_le_bytes());
        w.write_aligned_bytes(b"hello");
        let stream = w.finish();
        assert_eq!(inflate(&stream, 1 << 20).unwrap(), b"hello");
    }

    #[test]
    fn stored_block_bad_nlen_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_to_byte();
        w.write_aligned_bytes(&5u16.to_le_bytes());
        w.write_aligned_bytes(&0u16.to_le_bytes()); // wrong NLEN
        w.write_aligned_bytes(b"hello");
        assert!(inflate(&w.finish(), 1 << 20).is_err());
    }

    /// Hand-built fixed-Huffman block: literal 'A' then end-of-block.
    /// 'A' = 65 → 8-bit code 0x30+65 = 01110001; EOB = 7-bit 0000000.
    #[test]
    fn fixed_block_single_literal() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(1, 2); // fixed
        w.write_code(0x30 + 65, 8); // literal 'A'
        w.write_code(0, 7); // end of block
        assert_eq!(inflate(&w.finish(), 16).unwrap(), b"A");
    }

    /// Fixed block exercising a length/distance copy: "ababab" encoded as
    /// 'a','b', then (len=4, dist=2).
    #[test]
    fn fixed_block_with_match() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(1, 2);
        w.write_code(0x30 + b'a' as u32, 8);
        w.write_code(0x30 + b'b' as u32, 8);
        // length 4 = symbol 258 (base 4, no extra); fixed code for 258 is
        // 7-bit value 258-256 = 2.
        w.write_code(2, 7);
        // distance 2 = dist symbol 1 (base 2, no extra), 5-bit code.
        w.write_code(1, 5);
        w.write_code(0, 7); // EOB
        assert_eq!(inflate(&w.finish(), 64).unwrap(), b"ababab");
    }

    #[test]
    fn distance_before_start_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(1, 2);
        w.write_code(0x30 + b'a' as u32, 8);
        w.write_code(2, 7); // len 4
        w.write_code(5, 5); // dist symbol 5 = base 7 > output size 1
        w.write_code(0, 7);
        assert!(inflate(&w.finish(), 64).is_err());
    }

    #[test]
    fn output_cap_enforced() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_to_byte();
        w.write_aligned_bytes(&100u16.to_le_bytes());
        w.write_aligned_bytes(&(!100u16).to_le_bytes());
        w.write_aligned_bytes(&[0u8; 100]);
        assert!(matches!(
            inflate(&w.finish(), 50),
            Err(Error::OutputTooLarge { limit: 50 })
        ));
    }

    #[test]
    fn noise_never_panics() {
        let mut state = 0x2468aceu32;
        for len in 0..200 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = inflate(&buf, 1 << 16);
        }
    }
}
