//! Fixed tables from RFC 1951: length/distance bases and extra bits, the
//! code-length-code transmission order, and the fixed Huffman code lengths.

/// Base match lengths for litlen symbols 257..=285.
pub const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];

/// Extra bits for litlen symbols 257..=285.
pub const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Base distances for distance symbols 0..=29.
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];

/// Extra bits for distance symbols 0..=29.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which code-length-code lengths are transmitted (RFC 1951 §3.2.7).
pub const CLEN_ORDER: [u8; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Fixed litlen code lengths (RFC 1951 §3.2.6).
pub fn fixed_litlen_lens() -> Vec<u8> {
    let mut lens = vec![0u8; 288];
    for (i, l) in lens.iter_mut().enumerate() {
        *l = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    lens
}

/// Fixed distance code lengths: thirty-two 5-bit codes.
pub fn fixed_dist_lens() -> Vec<u8> {
    vec![5u8; 30]
}

/// Map a match length (3..=258) to (litlen symbol, extra bits, extra value).
pub fn length_to_symbol(len: u16) -> (u16, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    // Linear scan is fine: table has 29 entries and the hot path caches
    // nothing larger.
    let mut idx = 0;
    for i in (0..LEN_BASE.len()).rev() {
        if len >= LEN_BASE[i] {
            idx = i;
            break;
        }
    }
    // Symbol 285 (len 258) has 0 extra bits, but lengths 227..=257 belong to
    // symbol 284 — `rev` scan handles this because 258 matches index 28 first.
    (257 + idx as u16, LEN_EXTRA[idx], len - LEN_BASE[idx])
}

/// Map a match distance (1..=32768) to (distance symbol, extra bits, extra value).
pub fn distance_to_symbol(dist: u16) -> (u16, u8, u16) {
    debug_assert!(dist >= 1);
    let mut idx = 0;
    for i in (0..DIST_BASE.len()).rev() {
        if dist >= DIST_BASE[i] {
            idx = i;
            break;
        }
    }
    (idx as u16, DIST_EXTRA[idx], dist - DIST_BASE[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_symbol_edges() {
        assert_eq!(length_to_symbol(3), (257, 0, 0));
        assert_eq!(length_to_symbol(10), (264, 0, 0));
        assert_eq!(length_to_symbol(11), (265, 1, 0));
        assert_eq!(length_to_symbol(12), (265, 1, 1));
        assert_eq!(length_to_symbol(257), (284, 5, 30));
        assert_eq!(length_to_symbol(258), (285, 0, 0));
    }

    #[test]
    fn distance_symbol_edges() {
        assert_eq!(distance_to_symbol(1), (0, 0, 0));
        assert_eq!(distance_to_symbol(4), (3, 0, 0));
        assert_eq!(distance_to_symbol(5), (4, 1, 0));
        assert_eq!(distance_to_symbol(6), (4, 1, 1));
        assert_eq!(distance_to_symbol(24577), (29, 13, 0));
        assert_eq!(distance_to_symbol(32768), (29, 13, 8191));
    }

    #[test]
    fn every_length_round_trips() {
        for len in 3..=258u16 {
            let (sym, extra, val) = length_to_symbol(len);
            let base = LEN_BASE[(sym - 257) as usize];
            assert_eq!(base + val, len);
            assert!(val < (1 << extra) || extra == 0 && val == 0);
        }
    }

    #[test]
    fn every_distance_round_trips() {
        for dist in 1..=32768u32 {
            let (sym, extra, val) = distance_to_symbol(dist as u16);
            let base = DIST_BASE[sym as usize] as u32;
            assert_eq!(base + val as u32, dist);
            assert!(extra == 0 && val == 0 || (val as u32) < (1 << extra));
        }
    }
}
