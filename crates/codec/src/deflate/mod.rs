//! DEFLATE (RFC 1951), implemented from scratch.
//!
//! The PNG payload format the draft mandates is zlib/DEFLATE underneath, and
//! no compression crate is on the approved dependency list — so this module
//! provides a complete implementation: a total, DoS-bounded inflater and a
//! compressor with stored, fixed-Huffman and dynamic-Huffman blocks over an
//! LZ77 hash-chain matcher with optional lazy matching.

pub mod bits;
pub mod compress;
pub mod huffman;
pub mod inflate;
pub mod tables;

pub use compress::{deflate, Level};
pub use inflate::inflate;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// inflate(deflate(x)) == x for arbitrary bytes at every level.
        #[test]
        fn round_trip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
                let c = deflate(&data, level);
                let back = inflate(&c, 1 << 24).unwrap();
                prop_assert_eq!(&back, &data);
            }
        }

        /// Highly repetitive structured data round-trips and shrinks.
        #[test]
        fn round_trip_repetitive(byte in any::<u8>(), reps in 1usize..20_000) {
            let data = vec![byte; reps];
            let c = deflate(&data, Level::Default);
            let back = inflate(&c, 1 << 24).unwrap();
            prop_assert_eq!(back, data);
        }

        /// The inflater never panics on arbitrary input.
        #[test]
        fn inflate_total(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let _ = inflate(&data, 1 << 20);
        }
    }
}
