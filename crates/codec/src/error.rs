//! Error type for codec operations.

use std::fmt;

/// Errors from encoding or decoding image payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended before a complete structure was parsed.
    Truncated(&'static str),
    /// A header or stream field holds an invalid value.
    Invalid {
        /// What was being parsed.
        what: &'static str,
        /// Detail for diagnostics.
        detail: &'static str,
    },
    /// A checksum (CRC-32 or Adler-32) did not match.
    ChecksumMismatch(&'static str),
    /// Image dimensions are zero or exceed sane limits.
    BadDimensions {
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
    },
    /// The decoded size disagrees with the declared dimensions.
    SizeMismatch {
        /// Bytes expected.
        expected: usize,
        /// Bytes present.
        actual: usize,
    },
    /// A feature of the container we deliberately do not support
    /// (e.g. interlaced PNG).
    Unsupported(&'static str),
    /// Decompressed output would exceed the configured limit (DoS guard).
    OutputTooLarge {
        /// Configured cap in bytes.
        limit: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated(what) => write!(f, "truncated {what}"),
            Error::Invalid { what, detail } => write!(f, "invalid {what}: {detail}"),
            Error::ChecksumMismatch(what) => write!(f, "{what} checksum mismatch"),
            Error::BadDimensions { width, height } => {
                write!(f, "bad image dimensions {width}x{height}")
            }
            Error::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: expected {expected} bytes, got {actual}")
            }
            Error::Unsupported(what) => write!(f, "unsupported feature: {what}"),
            Error::OutputTooLarge { limit } => {
                write!(f, "decompressed output exceeds {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for Error {}
