//! Run-length pixel codec: the VNC/RFB-style baseline encoding.
//!
//! Pixels are encoded as `(run_length, R, G, B, A)` records per row. This is
//! what early remote-desktop systems (VNC's RRE/hextile family) effectively
//! do; it gives the comparison benchmarks an architectural baseline that is
//! cheap to encode but much weaker than PNG on structured content.

use crate::image::{Image, MAX_DIMENSION};
use crate::{Error, Result};

/// Magic bytes identifying the container.
const MAGIC: [u8; 4] = *b"ARLE";

/// Encode an image with per-row RGBA run-length encoding.
pub fn encode(img: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.width() as usize * img.height() as usize);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&img.width().to_be_bytes());
    out.extend_from_slice(&img.height().to_be_bytes());
    for y in 0..img.height() {
        let row = img.row(y);
        let mut x = 0usize;
        let w = img.width() as usize;
        while x < w {
            let px = &row[x * 4..x * 4 + 4];
            let mut run = 1usize;
            while x + run < w && run < 255 && &row[(x + run) * 4..(x + run) * 4 + 4] == px {
                run += 1;
            }
            out.push(run as u8);
            out.extend_from_slice(px);
            x += run;
        }
    }
    out
}

/// Decode an image produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Image> {
    if data.len() < 12 {
        return Err(Error::Truncated("RLE header"));
    }
    if data[..4] != MAGIC {
        return Err(Error::Invalid {
            what: "RLE container",
            detail: "bad magic",
        });
    }
    let w = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
    let h = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
    if w == 0 || h == 0 || w > MAX_DIMENSION || h > MAX_DIMENSION {
        return Err(Error::BadDimensions {
            width: w,
            height: h,
        });
    }
    let mut rgba = Vec::with_capacity(w as usize * h as usize * 4);
    let total = w as usize * h as usize;
    let mut off = 12usize;
    let mut pixels = 0usize;
    while pixels < total {
        if off + 5 > data.len() {
            return Err(Error::Truncated("RLE record"));
        }
        let run = data[off] as usize;
        if run == 0 {
            return Err(Error::Invalid {
                what: "RLE record",
                detail: "zero run",
            });
        }
        if pixels + run > total {
            return Err(Error::Invalid {
                what: "RLE record",
                detail: "run past image end",
            });
        }
        let px = &data[off + 1..off + 5];
        for _ in 0..run {
            rgba.extend_from_slice(px);
        }
        pixels += run;
        off += 5;
    }
    if off != data.len() {
        return Err(Error::Invalid {
            what: "RLE stream",
            detail: "trailing bytes",
        });
    }
    Image::from_rgba(w, h, rgba)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Rect;

    #[test]
    fn round_trip_flat() {
        let img = Image::filled(100, 50, [1, 2, 3, 255]).unwrap();
        let enc = encode(&img);
        // 100-pixel rows → ceil(100/255)=1 record per row: 50 * 5 + 12 bytes.
        assert_eq!(enc.len(), 12 + 50 * 5);
        assert_eq!(decode(&enc).unwrap(), img);
    }

    #[test]
    fn round_trip_noise() {
        let mut img = Image::new(31, 17).unwrap();
        let mut state = 1u32;
        for y in 0..17 {
            for x in 0..31 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                img.set_pixel(x, y, state.to_be_bytes());
            }
        }
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn runs_do_not_cross_rows() {
        // Identical rows still restart runs at row boundaries: the encoded
        // size of N identical rows is N times one row.
        let img = Image::filled(10, 4, [5, 5, 5, 255]).unwrap();
        let enc = encode(&img);
        assert_eq!(enc.len(), 12 + 4 * 5);
    }

    #[test]
    fn run_longer_than_255_splits() {
        let img = Image::filled(1000, 1, [9, 9, 9, 255]).unwrap();
        let enc = encode(&img);
        assert_eq!(enc.len(), 12 + 4 * 5); // 255+255+255+235
        assert_eq!(decode(&enc).unwrap(), img);
    }

    #[test]
    fn ui_content_compresses_noise_does_not() {
        let mut ui = Image::filled(200, 100, [240, 240, 240, 255]).unwrap();
        ui.fill_rect(Rect::new(10, 10, 50, 20), [30, 30, 30, 255]);
        let ui_size = encode(&ui).len();
        assert!(ui_size < 200 * 100 * 4 / 20, "ui rle size {ui_size}");

        let mut noise = Image::new(200, 100).unwrap();
        let mut state = 7u32;
        for y in 0..100 {
            for x in 0..200 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                noise.set_pixel(x, y, state.to_be_bytes());
            }
        }
        let noise_size = encode(&noise).len();
        assert!(noise_size > 200 * 100 * 4, "noise inflates: {noise_size}");
    }

    #[test]
    fn hostile_input_rejected() {
        assert!(decode(b"ARLE").is_err());
        // Valid header, zero-run record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&[0, 1, 2, 3, 4]);
        assert!(decode(&buf).is_err());
        // Run overrunning the image.
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(&MAGIC);
        buf2.extend_from_slice(&2u32.to_be_bytes());
        buf2.extend_from_slice(&1u32.to_be_bytes());
        buf2.extend_from_slice(&[200, 1, 2, 3, 4]);
        assert!(decode(&buf2).is_err());
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0x0badf00du32;
        for len in 0..128 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = decode(&buf);
        }
    }
}
