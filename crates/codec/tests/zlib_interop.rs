//! Interoperability with real zlib: every fixture stream was produced by
//! CPython's zlib (see `scripts/gen_zlib_vectors.py`); our from-scratch
//! inflater must recover the exact plaintext. This catches the class of
//! bug a self-round-trip never can — a compressor and decompressor that
//! agree with each other but not with the spec.

use adshare_codec::zlib;

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

fn vectors() -> Vec<(String, Vec<u8>, Vec<u8>)> {
    include_str!("fixtures/zlib_vectors.txt")
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|line| {
            let mut parts = line.split('\t');
            let name = parts.next().expect("name").to_owned();
            let plain = unhex(parts.next().expect("plain"));
            let comp = unhex(parts.next().expect("compressed"));
            (name, plain, comp)
        })
        .collect()
}

#[test]
fn inflates_real_zlib_streams() {
    let vectors = vectors();
    assert!(vectors.len() >= 9, "fixture file should carry all cases");
    for (name, plain, comp) in vectors {
        let out = zlib::decompress(&comp, plain.len().max(1) + 64)
            .unwrap_or_else(|e| panic!("{name}: decompress failed: {e}"));
        assert_eq!(out, plain, "{name}: plaintext mismatch");
    }
}

#[test]
fn real_zlib_checksums_match_ours() {
    // The Adler-32 trailer of each reference stream must equal our own
    // Adler-32 of the plaintext (independent checksum cross-check).
    for (name, plain, comp) in vectors() {
        let trailer = u32::from_be_bytes([
            comp[comp.len() - 4],
            comp[comp.len() - 3],
            comp[comp.len() - 2],
            comp[comp.len() - 1],
        ]);
        assert_eq!(
            adshare_codec::checksum::adler32(&plain),
            trailer,
            "{name}: Adler-32 disagrees with zlib"
        );
    }
}

fn hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

/// Deterministic corpora exercising the three regimes the LZ77 matcher
/// sees in production: prose (long-range text matches), filtered
/// scanlines (short periodic pixel matches), and noise (no matches;
/// stored blocks win).
fn golden_corpora() -> Vec<(&'static str, Vec<u8>)> {
    let text = b"A participant joins the session and the application host \
        shares the damaged window regions. The application host encodes \
        each region according to its characteristics and the participants \
        decode whatever the payload type says. "
        .repeat(24);

    let mut pixel = Vec::with_capacity(9000);
    for row in 0..60u32 {
        pixel.push((row % 5) as u8); // filter byte
        for col in 0..50u32 {
            pixel.push((col * 3 % 256) as u8);
            pixel.push((row * 7 % 256) as u8);
            pixel.push(((col ^ row) % 256) as u8);
        }
    }

    let mut state = 0xdead_beef_cafe_f00du64;
    let random: Vec<u8> = (0..4096)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect();

    vec![("text", text), ("pixel", pixel), ("random", random)]
}

/// Golden vectors: the exact DEFLATE bytes for each corpus × level are
/// checked in, so any change to the match loop, hash policy, or block
/// splitter shows up as a byte diff, not just a round-trip pass.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -p adshare-codec --test
/// zlib_interop` after an intentional change, and justify the diff in the
/// PR.
#[test]
fn deflate_output_matches_golden_vectors() {
    use adshare_codec::deflate::{deflate, Level};
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/deflate_golden.txt"
    );
    let mut produced =
        String::from("# <corpus>\t<level>\t<compressed hex> — regenerate with UPDATE_GOLDEN=1\n");
    for (name, corpus) in golden_corpora() {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let compressed = deflate(&corpus, level);
            // Every vector must still round-trip before it is pinned.
            let back =
                adshare_codec::deflate::inflate(&compressed, corpus.len() + 64).expect("inflate");
            assert_eq!(back, corpus, "{name}/{level:?} round trip");
            produced.push_str(&format!("{name}\t{level:?}\t{}\n", hex(&compressed)));
        }
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &produced).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path} ({e}); run with UPDATE_GOLDEN=1")
    });
    for (exp, got) in expected
        .lines()
        .filter(|l| !l.starts_with('#'))
        .zip(produced.lines().filter(|l| !l.starts_with('#')))
    {
        let label = got.split('\t').take(2).collect::<Vec<_>>().join("/");
        assert_eq!(exp, got, "DEFLATE output drifted for {label}");
    }
    assert_eq!(
        expected.lines().filter(|l| !l.starts_with('#')).count(),
        produced.lines().filter(|l| !l.starts_with('#')).count(),
        "golden fixture row count"
    );
}

#[test]
fn our_streams_carry_valid_structure_for_every_level() {
    // The reverse direction (real zlib inflating our output) is checked by
    // `scripts/check_interop.sh` in CI; here we at least re-inflate our own
    // compressor's output for the same fixture plaintexts at every level.
    use adshare_codec::deflate::Level;
    for (name, plain, _) in vectors() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let ours = zlib::compress(&plain, level);
            let back = zlib::decompress(&ours, plain.len().max(1) + 64)
                .unwrap_or_else(|e| panic!("{name}/{level:?}: {e}"));
            assert_eq!(back, plain, "{name} at {level:?}");
        }
    }
}
