//! Interoperability with real zlib: every fixture stream was produced by
//! CPython's zlib (see `scripts/gen_zlib_vectors.py`); our from-scratch
//! inflater must recover the exact plaintext. This catches the class of
//! bug a self-round-trip never can — a compressor and decompressor that
//! agree with each other but not with the spec.

use adshare_codec::zlib;

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

fn vectors() -> Vec<(String, Vec<u8>, Vec<u8>)> {
    include_str!("fixtures/zlib_vectors.txt")
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|line| {
            let mut parts = line.split('\t');
            let name = parts.next().expect("name").to_owned();
            let plain = unhex(parts.next().expect("plain"));
            let comp = unhex(parts.next().expect("compressed"));
            (name, plain, comp)
        })
        .collect()
}

#[test]
fn inflates_real_zlib_streams() {
    let vectors = vectors();
    assert!(vectors.len() >= 9, "fixture file should carry all cases");
    for (name, plain, comp) in vectors {
        let out = zlib::decompress(&comp, plain.len().max(1) + 64)
            .unwrap_or_else(|e| panic!("{name}: decompress failed: {e}"));
        assert_eq!(out, plain, "{name}: plaintext mismatch");
    }
}

#[test]
fn real_zlib_checksums_match_ours() {
    // The Adler-32 trailer of each reference stream must equal our own
    // Adler-32 of the plaintext (independent checksum cross-check).
    for (name, plain, comp) in vectors() {
        let trailer = u32::from_be_bytes([
            comp[comp.len() - 4],
            comp[comp.len() - 3],
            comp[comp.len() - 2],
            comp[comp.len() - 1],
        ]);
        assert_eq!(
            adshare_codec::checksum::adler32(&plain),
            trailer,
            "{name}: Adler-32 disagrees with zlib"
        );
    }
}

#[test]
fn our_streams_carry_valid_structure_for_every_level() {
    // The reverse direction (real zlib inflating our output) is checked by
    // `scripts/check_interop.sh` in CI; here we at least re-inflate our own
    // compressor's output for the same fixture plaintexts at every level.
    use adshare_codec::deflate::Level;
    for (name, plain, _) in vectors() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let ours = zlib::compress(&plain, level);
            let back = zlib::decompress(&ours, plain.len().max(1) + 64)
                .unwrap_or_else(|e| panic!("{name}/{level:?}: {e}"));
            assert_eq!(back, plain, "{name} at {level:?}");
        }
    }
}
