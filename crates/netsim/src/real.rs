//! Real-socket adapters (`std::net`) for loopback demonstrations.
//!
//! The protocol crates are sans-IO; the simulator drives them in tests and
//! benches. These adapters prove the same code also runs over actual
//! sockets: a non-blocking UDP pair and a length-aware TCP stream (the
//! caller layers RFC 4571 framing from `adshare-rtp` on top).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};

/// A non-blocking UDP endpoint bound to loopback.
#[derive(Debug)]
pub struct RealUdp {
    socket: UdpSocket,
    peer: Option<SocketAddr>,
}

impl RealUdp {
    /// Bind to an ephemeral loopback port.
    pub fn bind() -> io::Result<Self> {
        Self::bind_port(0)
    }

    /// Bind to a specific loopback port (0 = ephemeral).
    pub fn bind_port(port: u16) -> io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", port))?;
        socket.set_nonblocking(true)?;
        Ok(RealUdp { socket, peer: None })
    }

    /// Send one datagram to an explicit destination (server side serving
    /// many peers).
    pub fn send_to(&self, payload: &[u8], to: SocketAddr) -> io::Result<usize> {
        self.socket.send_to(payload, to)
    }

    /// Local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Set the remote endpoint.
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = Some(peer);
    }

    /// Send one datagram to the peer.
    pub fn send(&self, payload: &[u8]) -> io::Result<usize> {
        let peer = self
            .peer
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no peer set"))?;
        self.socket.send_to(payload, peer)
    }

    /// Receive pending datagrams (non-blocking; empty when none).
    pub fn recv_all(&self) -> io::Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 65_536];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((n, from)) => {
                    // Learn the peer from the first inbound datagram when
                    // unset (server side).
                    if self.peer.is_none() {
                        // Note: cannot store due to &self; callers use
                        // recv_all_from when they need the source.
                        let _ = from;
                    }
                    out.push(buf[..n].to_vec());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Receive pending datagrams with their source addresses.
    pub fn recv_all_from(&self) -> io::Result<Vec<(SocketAddr, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 65_536];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((n, from)) => out.push((from, buf[..n].to_vec())),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// A non-blocking TCP stream carrying opaque bytes (frame with RFC 4571).
#[derive(Debug)]
pub struct RealTcp {
    stream: TcpStream,
}

impl RealTcp {
    /// Connect to an address.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(RealTcp { stream })
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(RealTcp { stream })
    }

    /// Write bytes; returns how many were accepted (0 on WouldBlock) —
    /// the real-socket equivalent of [`crate::tcp::TcpLink::send`].
    pub fn send(&mut self, data: &[u8]) -> io::Result<usize> {
        match self.stream.write(data) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Read whatever is available.
    pub fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 16_384];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break, // closed
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// A loopback TCP listener.
#[derive(Debug)]
pub struct RealTcpListener {
    listener: TcpListener,
}

impl RealTcpListener {
    /// Bind to an ephemeral loopback port.
    pub fn bind() -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        Ok(RealTcpListener { listener })
    }

    /// Local address to hand to connecting participants.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept a pending connection if one is ready.
    pub fn accept(&self) -> io::Result<Option<RealTcp>> {
        match self.listener.accept() {
            Ok((stream, _)) => Ok(Some(RealTcp::from_stream(stream)?)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn spin<T>(mut f: impl FnMut() -> io::Result<Option<T>>) -> T {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(v) = f().expect("io") {
                return v;
            }
            assert!(Instant::now() < deadline, "timed out");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn udp_loopback_round_trip() {
        let mut a = RealUdp::bind().unwrap();
        let mut b = RealUdp::bind().unwrap();
        a.set_peer(b.local_addr().unwrap());
        b.set_peer(a.local_addr().unwrap());
        a.send(b"ping").unwrap();
        let got = spin(|| {
            let v = b.recv_all()?;
            Ok(if v.is_empty() { None } else { Some(v) })
        });
        assert_eq!(got, vec![b"ping".to_vec()]);
        b.send(b"pong").unwrap();
        let got = spin(|| {
            let v = a.recv_all()?;
            Ok(if v.is_empty() { None } else { Some(v) })
        });
        assert_eq!(got, vec![b"pong".to_vec()]);
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let listener = RealTcpListener::bind().unwrap();
        let mut client = RealTcp::connect(listener.local_addr().unwrap()).unwrap();
        let mut server = spin(|| listener.accept());
        let payload = vec![7u8; 100_000];
        let mut sent = 0;
        let mut received = Vec::new();
        while sent < payload.len() || received.len() < payload.len() {
            if sent < payload.len() {
                sent += client.send(&payload[sent..]).unwrap();
            }
            received.extend(server.recv().unwrap());
        }
        assert_eq!(received, payload);
    }
}
