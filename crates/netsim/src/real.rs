//! Real-socket adapters (`std::net`) for loopback demonstrations.
//!
//! The protocol crates are sans-IO; the simulator drives them in tests and
//! benches. These adapters prove the same code also runs over actual
//! sockets: a non-blocking UDP pair and a length-aware TCP stream (the
//! caller layers RFC 4571 framing from `adshare-rtp` on top).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};

/// A non-blocking UDP endpoint bound to loopback.
#[derive(Debug)]
pub struct RealUdp {
    socket: UdpSocket,
    peer: Option<SocketAddr>,
}

impl RealUdp {
    /// Bind to an ephemeral loopback port.
    pub fn bind() -> io::Result<Self> {
        Self::bind_port(0)
    }

    /// Bind to a specific loopback port (0 = ephemeral).
    pub fn bind_port(port: u16) -> io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", port))?;
        socket.set_nonblocking(true)?;
        Ok(RealUdp { socket, peer: None })
    }

    /// Send one datagram to an explicit destination (server side serving
    /// many peers).
    pub fn send_to(&self, payload: &[u8], to: SocketAddr) -> io::Result<usize> {
        self.socket.send_to(payload, to)
    }

    /// Local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Set the remote endpoint.
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = Some(peer);
    }

    /// Send one datagram to the peer.
    pub fn send(&self, payload: &[u8]) -> io::Result<usize> {
        let peer = self
            .peer
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no peer set"))?;
        self.socket.send_to(payload, peer)
    }

    /// Receive pending datagrams (non-blocking; empty when none).
    pub fn recv_all(&self) -> io::Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 65_536];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((n, from)) => {
                    // Learn the peer from the first inbound datagram when
                    // unset (server side).
                    if self.peer.is_none() {
                        // Note: cannot store due to &self; callers use
                        // recv_all_from when they need the source.
                        let _ = from;
                    }
                    out.push(buf[..n].to_vec());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Block until a datagram is readable or `timeout` elapses; returns
    /// whether data is waiting. The OS parks the thread on the socket, so
    /// waiting costs no CPU — use this instead of polling `recv_all` in a
    /// sleep loop. The socket is back in non-blocking mode on return.
    pub fn wait_readable(&self, timeout: std::time::Duration) -> io::Result<bool> {
        self.socket.set_read_timeout(Some(timeout))?;
        self.socket.set_nonblocking(false)?;
        let mut buf = [0u8; 1];
        let res = self.socket.peek(&mut buf);
        self.socket.set_nonblocking(true)?;
        self.socket.set_read_timeout(None)?;
        match res {
            Ok(_) => Ok(true),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Receive pending datagrams with their source addresses.
    pub fn recv_all_from(&self) -> io::Result<Vec<(SocketAddr, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 65_536];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((n, from)) => out.push((from, buf[..n].to_vec())),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// A non-blocking TCP stream carrying opaque bytes (frame with RFC 4571).
#[derive(Debug)]
pub struct RealTcp {
    stream: TcpStream,
}

impl RealTcp {
    /// Connect to an address.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(RealTcp { stream })
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(RealTcp { stream })
    }

    /// Write bytes; returns how many were accepted (0 on WouldBlock) —
    /// the real-socket equivalent of [`crate::tcp::TcpLink::send`].
    pub fn send(&mut self, data: &[u8]) -> io::Result<usize> {
        match self.stream.write(data) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Block until bytes are readable (or the peer closed) or `timeout`
    /// elapses; returns whether a `recv` will make progress. The stream is
    /// back in non-blocking mode on return.
    pub fn wait_readable(&self, timeout: std::time::Duration) -> io::Result<bool> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_nonblocking(false)?;
        let mut buf = [0u8; 1];
        let res = self.stream.peek(&mut buf);
        self.stream.set_nonblocking(true)?;
        self.stream.set_read_timeout(None)?;
        match res {
            Ok(_) => Ok(true), // data waiting, or 0 = orderly close
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Read whatever is available.
    pub fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 16_384];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break, // closed
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// A loopback TCP listener.
#[derive(Debug)]
pub struct RealTcpListener {
    listener: TcpListener,
}

impl RealTcpListener {
    /// Bind to an ephemeral loopback port.
    pub fn bind() -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        Ok(RealTcpListener { listener })
    }

    /// Local address to hand to connecting participants.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept a pending connection if one is ready.
    pub fn accept(&self) -> io::Result<Option<RealTcp>> {
        match self.listener.accept() {
            Ok((stream, _)) => Ok(Some(RealTcp::from_stream(stream)?)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Block until a connection arrives and accept it. Only call once a
    /// client's `connect` has already succeeded (e.g. on loopback), so the
    /// handshake is complete and the accept queue is non-empty — otherwise
    /// this blocks indefinitely (`TcpListener` has no accept timeout).
    pub fn accept_blocking(&self) -> io::Result<RealTcp> {
        self.listener.set_nonblocking(false)?;
        let res = self.listener.accept();
        self.listener.set_nonblocking(true)?;
        let (stream, _) = res?;
        RealTcp::from_stream(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn udp_loopback_round_trip() {
        let mut a = RealUdp::bind().unwrap();
        let mut b = RealUdp::bind().unwrap();
        a.set_peer(b.local_addr().unwrap());
        b.set_peer(a.local_addr().unwrap());
        a.send(b"ping").unwrap();
        assert!(b.wait_readable(WAIT).unwrap(), "timed out");
        assert_eq!(b.recv_all().unwrap(), vec![b"ping".to_vec()]);
        b.send(b"pong").unwrap();
        assert!(a.wait_readable(WAIT).unwrap(), "timed out");
        assert_eq!(a.recv_all().unwrap(), vec![b"pong".to_vec()]);
    }

    #[test]
    fn udp_wait_readable_times_out_clean() {
        let a = RealUdp::bind().unwrap();
        assert!(!a.wait_readable(Duration::from_millis(10)).unwrap());
        // And the socket is back in non-blocking mode.
        assert!(a.recv_all().unwrap().is_empty());
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let listener = RealTcpListener::bind().unwrap();
        let mut client = RealTcp::connect(listener.local_addr().unwrap()).unwrap();
        // connect() has succeeded, so the handshake is done and the accept
        // queue holds the connection: blocking accept returns immediately.
        let mut server = listener.accept_blocking().unwrap();
        let payload = vec![7u8; 100_000];
        let mut sent = 0;
        let mut received = Vec::new();
        while received.len() < payload.len() {
            if sent < payload.len() {
                // Interleave send and drain so neither side's buffer fills.
                sent += client.send(&payload[sent..]).unwrap();
            } else {
                // Everything written: park on the socket until the rest
                // arrives instead of spinning on recv.
                assert!(server.wait_readable(WAIT).unwrap(), "timed out");
            }
            received.extend(server.recv().unwrap());
        }
        assert_eq!(received, payload);
    }
}
