//! Multicast fan-out: one AH send reaches every group member, each across
//! its own impaired path (§4.2: "The AH can support both multicast and
//! unicast transmissions"; §4.3: "Several simultaneous multicast sessions
//! with different transmission rates can be created").

use adshare_obs::{Counter, Registry};

use crate::udp::{LinkConfig, UdpChannel, UdpStats};

/// A multicast group: one ingress, N member channels.
#[derive(Debug)]
pub struct MulticastGroup {
    members: Vec<UdpChannel>,
    /// Datagrams sent into the group (counted once, as the AH's egress).
    sent: Counter,
    /// Bytes sent into the group.
    bytes_sent: Counter,
}

impl MulticastGroup {
    /// An empty group.
    pub fn new() -> Self {
        MulticastGroup {
            members: Vec::new(),
            sent: Counter::new(),
            bytes_sent: Counter::new(),
        }
    }

    /// Add a member with its own path characteristics; returns its index.
    pub fn join(&mut self, cfg: LinkConfig, seed: u64) -> usize {
        self.members.push(UdpChannel::new(cfg, seed));
        self.members.len() - 1
    }

    /// Remove a member (e.g. participant left). Later indices shift down.
    pub fn leave(&mut self, member: usize) {
        if member < self.members.len() {
            self.members.remove(member);
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Send one datagram to every member. The AH pays the cost once —
    /// that is multicast's whole point, and experiment E7 measures it.
    pub fn send(&mut self, now_us: u64, payload: &[u8]) {
        self.sent.inc();
        self.bytes_sent.add(payload.len() as u64);
        for m in &mut self.members {
            m.send(now_us, payload);
        }
    }

    /// Poll one member's deliveries.
    pub fn poll(&mut self, member: usize, now_us: u64) -> Vec<Vec<u8>> {
        self.members
            .get_mut(member)
            .map(|m| m.poll(now_us))
            .unwrap_or_default()
    }

    /// The AH-side egress counters: (datagrams, bytes) — independent of
    /// group size.
    pub fn egress(&self) -> (u64, u64) {
        (self.sent.get(), self.bytes_sent.get())
    }

    /// Earliest pending delivery across all members, for event-driven
    /// stepping.
    pub fn next_delivery_us(&self) -> Option<u64> {
        self.members
            .iter()
            .filter_map(|m| m.next_delivery_us())
            .min()
    }

    /// A member's delivery statistics.
    pub fn member_stats(&self, member: usize) -> Option<UdpStats> {
        self.members.get(member).map(|m| m.stats())
    }

    /// Adopt the group's egress counters plus each current member's channel
    /// counters into `registry`: egress under `{prefix}.tx_*`, member `i`
    /// under `{prefix}.member.{i}.*`.
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        registry.adopt_counter(&format!("{prefix}.tx_datagrams"), &self.sent);
        registry.adopt_counter(&format!("{prefix}.tx_bytes"), &self.bytes_sent);
        for (i, m) in self.members.iter().enumerate() {
            m.register_metrics(registry, &format!("{prefix}.member.{i}"));
        }
    }
}

impl Default for MulticastGroup {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_member_receives() {
        let mut g = MulticastGroup::new();
        for i in 0..5 {
            g.join(
                LinkConfig {
                    delay_us: 1_000 * (i + 1),
                    ..Default::default()
                },
                i,
            );
        }
        g.send(0, b"frame");
        for m in 0..5 {
            let got = g.poll(m, 100_000);
            assert_eq!(got, vec![b"frame".to_vec()], "member {m}");
        }
        assert_eq!(g.egress(), (1, 5));
    }

    #[test]
    fn egress_counted_once_regardless_of_size() {
        let mut g = MulticastGroup::new();
        for i in 0..64 {
            g.join(LinkConfig::default(), i);
        }
        for _ in 0..10 {
            g.send(0, &[0u8; 1000]);
        }
        assert_eq!(g.egress(), (10, 10_000));
    }

    #[test]
    fn per_member_loss_is_independent() {
        let mut g = MulticastGroup::new();
        g.join(
            LinkConfig {
                loss: 0.0,
                delay_us: 0,
                ..Default::default()
            },
            1,
        );
        g.join(
            LinkConfig {
                loss: 1.0,
                delay_us: 0,
                ..Default::default()
            },
            2,
        );
        for _ in 0..100 {
            g.send(0, b"x");
        }
        assert_eq!(g.poll(0, 1_000_000).len(), 100);
        assert_eq!(g.poll(1, 1_000_000).len(), 0);
    }

    #[test]
    fn group_counters_adoptable_into_registry() {
        let mut g = MulticastGroup::new();
        g.join(
            LinkConfig {
                delay_us: 0,
                ..Default::default()
            },
            1,
        );
        g.join(
            LinkConfig {
                loss: 1.0,
                delay_us: 0,
                ..Default::default()
            },
            2,
        );
        let registry = Registry::new();
        g.register_metrics(&registry, "mcast");
        g.send(0, &[0u8; 10]);
        g.poll(0, 1_000);
        g.poll(1, 1_000);
        assert_eq!(registry.counter_value("mcast.tx_bytes"), Some(10));
        assert_eq!(registry.counter_value("mcast.member.0.rx_bytes"), Some(10));
        assert_eq!(registry.counter_value("mcast.member.1.rx_bytes"), Some(0));
        assert_eq!(
            registry.counter_value("mcast.member.1.dropped_bytes"),
            Some(10)
        );
    }

    #[test]
    fn leave_shrinks_group() {
        let mut g = MulticastGroup::new();
        g.join(LinkConfig::default(), 1);
        g.join(LinkConfig::default(), 2);
        g.leave(0);
        assert_eq!(g.len(), 1);
        g.send(0, b"y");
        assert_eq!(g.poll(0, 1_000_000).len(), 1);
        assert!(
            g.poll(5, 1_000_000).is_empty(),
            "out-of-range member polls empty"
        );
    }
}
