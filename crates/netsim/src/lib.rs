//! Deterministic network substrate.
//!
//! The draft's transport behaviours are the crux of its design points: UDP
//! needs AH-side pacing, NACK/PLI recovery and multicast (§4.3); TCP needs
//! RFC 4571 framing and the §7 "send only the freshest frame when the send
//! buffer backs up" policy. Benchmarks need those behaviours *reproducibly*,
//! which real networks cannot give — so this crate provides a discrete-time
//! simulation:
//!
//! * [`time`] — the virtual clock (microseconds) and 90 kHz conversions.
//! * [`udp`] — unidirectional datagram channels with seeded loss,
//!   reordering, duplication, delay/jitter and rate limits.
//! * [`tcp`] — reliable byte streams with bandwidth limits, propagation
//!   delay and a bounded send buffer whose occupancy is observable (the
//!   `select()` signal §7 relies on).
//! * [`multicast`] — one-send/N-receiver fan-out with per-receiver loss.
//! * [`real`] — thin `std::net` loopback adapters proving the same code
//!   runs on actual sockets (used by the examples).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multicast;
pub mod real;
pub mod tcp;
pub mod time;
pub mod udp;

pub use tcp::{TcpConfig, TcpLink};
pub use time::{ticks_to_us, us_to_ticks, VirtualClock};
pub use udp::{LinkConfig, LinkStep, UdpChannel};
