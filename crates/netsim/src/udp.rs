//! Simulated unidirectional UDP channel: seeded loss, reordering,
//! duplication, propagation delay with jitter, and an optional rate limit
//! (the draft's AH "controls the transmission rate for participants using
//! UDP", §4.3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use adshare_obs::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel impairment parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Probability a datagram is dropped, 0.0..=1.0.
    pub loss: f64,
    /// Probability a delivered datagram is duplicated.
    pub duplicate: f64,
    /// Base one-way propagation delay, µs.
    pub delay_us: u64,
    /// Uniform jitter added to the delay, µs (0..=jitter_us).
    pub jitter_us: u64,
    /// Link rate in bits/second; `None` = infinite.
    pub rate_bps: Option<u64>,
    /// Maximum datagram size; larger sends are dropped (no IP
    /// fragmentation modelled).
    pub mtu: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            loss: 0.0,
            duplicate: 0.0,
            delay_us: 20_000, // 20 ms
            jitter_us: 0,
            rate_bps: None,
            mtu: 65_535,
        }
    }
}

/// One step of a time-varying link profile: from `at_us` on, the channel
/// behaves per `cfg`.
#[derive(Debug, Clone, Copy)]
pub struct LinkStep {
    /// Simulation time the new parameters take effect, µs.
    pub at_us: u64,
    /// The parameters in force from `at_us` until the next step.
    pub cfg: LinkConfig,
}

/// Delivery statistics (a point-in-time copy of the channel's counters).
///
/// Accounting is byte-exact: every offered datagram ends up delivered,
/// dropped, or still in flight, and duplication is tracked separately, so
/// once the channel is drained
///
/// ```text
/// sent + duplicated == delivered + dropped
/// bytes_sent + bytes_duplicated == bytes_delivered + bytes_dropped
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct UdpStats {
    /// Datagrams offered to the channel.
    pub sent: u64,
    /// Datagrams delivered (includes duplicates).
    pub delivered: u64,
    /// Datagrams dropped by loss, MTU, or rate policing.
    pub dropped: u64,
    /// Extra datagram copies injected by duplication.
    pub duplicated: u64,
    /// Payload bytes offered.
    pub bytes_sent: u64,
    /// Payload bytes delivered (includes duplicate copies).
    pub bytes_delivered: u64,
    /// Payload bytes dropped by loss, MTU, or rate policing.
    pub bytes_dropped: u64,
    /// Payload bytes added by duplicate copies.
    pub bytes_duplicated: u64,
}

/// Live counter handles behind [`UdpStats`]; adoptable into a [`Registry`].
#[derive(Debug, Clone, Default)]
struct UdpCounters {
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    duplicated: Counter,
    bytes_sent: Counter,
    bytes_delivered: Counter,
    bytes_dropped: Counter,
    bytes_duplicated: Counter,
}

#[derive(Debug, PartialEq, Eq)]
struct InFlight {
    deliver_at: u64,
    /// Tie-break so equal-time packets keep send order.
    seq: u64,
    payload: Vec<u8>,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A unidirectional datagram channel.
#[derive(Debug)]
pub struct UdpChannel {
    cfg: LinkConfig,
    rng: StdRng,
    queue: BinaryHeap<Reverse<InFlight>>,
    next_seq: u64,
    /// Time the serializer is busy until (rate limiting).
    tx_free_at: u64,
    /// Pending profile steps, sorted by time, consumed front-first.
    schedule: Vec<LinkStep>,
    /// Deterministic drop: the next `drop_pending` sends are discarded
    /// regardless of the loss probability (test hook).
    drop_pending: u32,
    counters: UdpCounters,
}

impl UdpChannel {
    /// New channel with deterministic behaviour derived from `seed`.
    pub fn new(cfg: LinkConfig, seed: u64) -> Self {
        UdpChannel {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            next_seq: 0,
            tx_free_at: 0,
            schedule: Vec::new(),
            drop_pending: 0,
            counters: UdpCounters::default(),
        }
    }

    /// The configured impairments (as of the last applied schedule step).
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Install a time-varying profile: each [`LinkStep`] replaces the
    /// channel parameters once the clock reaches its `at_us` (applied on
    /// the next `send`). Bandwidth step changes, loss episodes, and
    /// duplicate storms are all just steps. Replaces any prior schedule;
    /// packets already in flight are unaffected.
    pub fn set_schedule(&mut self, mut steps: Vec<LinkStep>) {
        steps.sort_by_key(|s| s.at_us);
        self.schedule = steps;
    }

    fn apply_schedule(&mut self, now_us: u64) {
        let due = self
            .schedule
            .iter()
            .take_while(|s| s.at_us <= now_us)
            .count();
        for step in self.schedule.drain(..due) {
            self.cfg = step.cfg;
        }
    }

    /// Deterministically drop the next `n` offered datagrams, independent
    /// of the probabilistic loss model. Lets tests lose a *specific* packet
    /// (e.g. the same sequence on two fan-out legs) without seed hunting.
    pub fn drop_next(&mut self, n: u32) {
        self.drop_pending += n;
    }

    /// Offer a datagram at time `now_us`.
    pub fn send(&mut self, now_us: u64, payload: &[u8]) {
        self.apply_schedule(now_us);
        self.counters.sent.inc();
        self.counters.bytes_sent.add(payload.len() as u64);
        if self.drop_pending > 0 {
            self.drop_pending -= 1;
            self.drop(payload.len());
            return;
        }
        if payload.len() > self.cfg.mtu {
            self.drop(payload.len());
            return;
        }
        // Serialisation delay under the rate limit. The channel models a
        // short router queue: if the serializer is more than 100 ms behind,
        // the queue is full and the datagram is tail-dropped.
        let ser_start = self.tx_free_at.max(now_us);
        if let Some(rate) = self.cfg.rate_bps {
            if ser_start > now_us + 100_000 {
                self.drop(payload.len());
                return;
            }
            let ser_us = (payload.len() as u64 * 8).saturating_mul(1_000_000) / rate.max(1);
            self.tx_free_at = ser_start + ser_us;
        }
        if self.rng.gen_bool(self.cfg.loss.clamp(0.0, 1.0)) {
            self.drop(payload.len());
            return;
        }
        let base = if self.cfg.rate_bps.is_some() {
            self.tx_free_at
        } else {
            now_us
        };
        let jitter = if self.cfg.jitter_us > 0 {
            self.rng.gen_range(0..=self.cfg.jitter_us)
        } else {
            0
        };
        let deliver_at = base + self.cfg.delay_us + jitter;
        self.queue.push(Reverse(InFlight {
            deliver_at,
            seq: self.next_seq,
            payload: payload.to_vec(),
        }));
        self.next_seq += 1;
        if self.rng.gen_bool(self.cfg.duplicate.clamp(0.0, 1.0)) {
            self.counters.duplicated.inc();
            self.counters.bytes_duplicated.add(payload.len() as u64);
            let dup_at = deliver_at + self.rng.gen_range(0..=self.cfg.jitter_us.max(1000));
            self.queue.push(Reverse(InFlight {
                deliver_at: dup_at,
                seq: self.next_seq,
                payload: payload.to_vec(),
            }));
            self.next_seq += 1;
        }
    }

    fn drop(&mut self, len: usize) {
        self.counters.dropped.inc();
        self.counters.bytes_dropped.add(len as u64);
    }

    /// Collect all datagrams due by `now_us`, in delivery-time order.
    pub fn poll(&mut self, now_us: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.deliver_at > now_us {
                break;
            }
            let Reverse(pkt) = self.queue.pop().expect("peeked");
            self.counters.delivered.inc();
            self.counters.bytes_delivered.add(pkt.payload.len() as u64);
            out.push(pkt.payload);
        }
        out
    }

    /// Earliest pending delivery time, if any (for event-driven stepping).
    pub fn next_delivery_us(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(p)| p.deliver_at)
    }

    /// Datagrams currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> UdpStats {
        let c = &self.counters;
        UdpStats {
            sent: c.sent.get(),
            delivered: c.delivered.get(),
            dropped: c.dropped.get(),
            duplicated: c.duplicated.get(),
            bytes_sent: c.bytes_sent.get(),
            bytes_delivered: c.bytes_delivered.get(),
            bytes_dropped: c.bytes_dropped.get(),
            bytes_duplicated: c.bytes_duplicated.get(),
        }
    }

    /// Adopt this channel's counters into `registry` under `prefix`
    /// (e.g. `participant.0.udp` → `participant.0.udp.tx_bytes`, ...).
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        let c = &self.counters;
        registry.adopt_counter(&format!("{prefix}.tx_datagrams"), &c.sent);
        registry.adopt_counter(&format!("{prefix}.tx_bytes"), &c.bytes_sent);
        registry.adopt_counter(&format!("{prefix}.rx_datagrams"), &c.delivered);
        registry.adopt_counter(&format!("{prefix}.rx_bytes"), &c.bytes_delivered);
        registry.adopt_counter(&format!("{prefix}.dropped_datagrams"), &c.dropped);
        registry.adopt_counter(&format!("{prefix}.dropped_bytes"), &c.bytes_dropped);
        registry.adopt_counter(&format!("{prefix}.dup_datagrams"), &c.duplicated);
        registry.adopt_counter(&format!("{prefix}.dup_bytes"), &c.bytes_duplicated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless(delay_us: u64) -> UdpChannel {
        UdpChannel::new(
            LinkConfig {
                delay_us,
                ..Default::default()
            },
            1,
        )
    }

    #[test]
    fn delivers_after_delay_in_order() {
        let mut ch = lossless(10_000);
        ch.send(0, b"one");
        ch.send(100, b"two");
        assert!(ch.poll(9_999).is_empty());
        let got = ch.poll(10_050);
        assert_eq!(got, vec![b"one".to_vec()]);
        let got = ch.poll(10_200);
        assert_eq!(got, vec![b"two".to_vec()]);
        assert_eq!(ch.stats().delivered, 2);
    }

    #[test]
    fn loss_rate_approximately_respected() {
        let cfg = LinkConfig {
            loss: 0.3,
            delay_us: 0,
            ..Default::default()
        };
        let mut ch = UdpChannel::new(cfg, 42);
        for i in 0..10_000u64 {
            ch.send(i, b"x");
        }
        let delivered = ch.poll(1_000_000).len();
        assert!(
            (6_300..=7_700).contains(&delivered),
            "delivered {delivered} of 10000 at 30% loss"
        );
        assert_eq!(ch.stats().dropped as usize + delivered, 10_000);
    }

    #[test]
    fn jitter_reorders_but_poll_is_time_ordered() {
        let cfg = LinkConfig {
            delay_us: 1_000,
            jitter_us: 50_000,
            ..Default::default()
        };
        let mut ch = UdpChannel::new(cfg, 7);
        for i in 0..100u8 {
            ch.send(0, &[i]);
        }
        let got = ch.poll(1_000_000);
        assert_eq!(got.len(), 100);
        // With 50 ms of jitter on simultaneous sends, order must differ
        // somewhere from send order.
        let in_order: Vec<u8> = (0..100).collect();
        let received: Vec<u8> = got.iter().map(|p| p[0]).collect();
        assert_ne!(received, in_order, "jitter should reorder");
    }

    #[test]
    fn duplication() {
        let cfg = LinkConfig {
            duplicate: 1.0,
            delay_us: 0,
            jitter_us: 0,
            ..Default::default()
        };
        let mut ch = UdpChannel::new(cfg, 9);
        ch.send(0, b"dup");
        let got = ch.poll(1_000_000);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn mtu_enforced() {
        let cfg = LinkConfig {
            mtu: 100,
            delay_us: 0,
            ..Default::default()
        };
        let mut ch = UdpChannel::new(cfg, 3);
        ch.send(0, &[0u8; 101]);
        ch.send(0, &[0u8; 100]);
        assert_eq!(ch.poll(1_000).len(), 1);
        assert_eq!(ch.stats().dropped, 1);
    }

    #[test]
    fn rate_limit_spaces_deliveries() {
        // 1 Mbit/s: a 1250-byte packet takes 10 ms to serialize.
        let cfg = LinkConfig {
            rate_bps: Some(1_000_000),
            delay_us: 0,
            ..Default::default()
        };
        let mut ch = UdpChannel::new(cfg, 4);
        for _ in 0..5 {
            ch.send(0, &[0u8; 1250]);
        }
        assert_eq!(ch.poll(10_000).len(), 1);
        assert_eq!(ch.poll(30_000).len(), 2);
        assert_eq!(ch.poll(50_000).len(), 2);
    }

    #[test]
    fn rate_limit_queue_overflow_drops() {
        // Tiny rate: the 100 ms queue bound forces tail drops.
        let cfg = LinkConfig {
            rate_bps: Some(8_000),
            delay_us: 0,
            ..Default::default()
        };
        let mut ch = UdpChannel::new(cfg, 5);
        for _ in 0..100 {
            ch.send(0, &[0u8; 125]); // each takes 125ms to serialize
        }
        assert!(
            ch.stats().dropped > 90,
            "most must tail-drop, got {}",
            ch.stats().dropped
        );
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = LinkConfig {
            loss: 0.5,
            jitter_us: 10_000,
            ..Default::default()
        };
        let run = |seed| {
            let mut ch = UdpChannel::new(cfg, seed);
            for i in 0..100u8 {
                ch.send(i as u64 * 10, &[i]);
            }
            ch.poll(10_000_000)
                .iter()
                .map(|p| p[0])
                .collect::<Vec<u8>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn byte_accounting_conserves_after_drain() {
        // Every impairment at once: loss, duplication, jitter, rate limit,
        // MTU violations. After a full drain, every offered byte must be
        // accounted for as delivered, dropped, or duplicated.
        let cfg = LinkConfig {
            loss: 0.2,
            duplicate: 0.1,
            delay_us: 5_000,
            jitter_us: 20_000,
            rate_bps: Some(2_000_000),
            mtu: 1200,
        };
        let mut ch = UdpChannel::new(cfg, 77);
        for i in 0..2_000u64 {
            let len = 100 + (i as usize * 37) % 1400; // some exceed the MTU
            ch.send(i * 200, &vec![0u8; len]);
        }
        let _ = ch.poll(u64::MAX);
        assert_eq!(ch.in_flight(), 0);
        let s = ch.stats();
        assert!(s.dropped > 0 && s.duplicated > 0, "impairments exercised");
        assert_eq!(s.sent + s.duplicated, s.delivered + s.dropped);
        assert_eq!(
            s.bytes_sent + s.bytes_duplicated,
            s.bytes_delivered + s.bytes_dropped
        );
    }

    #[test]
    fn counters_adoptable_into_registry() {
        let mut ch = lossless(0);
        let registry = Registry::new();
        ch.register_metrics(&registry, "udp");
        ch.register_metrics(&registry, "udp"); // idempotent re-adoption
        ch.send(0, b"hello");
        ch.poll(1_000);
        assert_eq!(registry.counter_value("udp.tx_bytes"), Some(5));
        assert_eq!(registry.counter_value("udp.rx_bytes"), Some(5));
        assert_eq!(registry.counter_value("udp.dropped_datagrams"), Some(0));
    }

    #[test]
    fn schedule_steps_apply_in_time_order() {
        // Start at 8 Mb/s, halve to 4 Mb/s at t=1 s, add duplication at
        // t=2 s. Serialisation spacing and stats must reflect each regime.
        let base = LinkConfig {
            rate_bps: Some(8_000_000),
            delay_us: 0,
            ..Default::default()
        };
        let mut ch = UdpChannel::new(base, 6);
        ch.set_schedule(vec![
            // Deliberately unsorted: set_schedule orders by time.
            LinkStep {
                at_us: 2_000_000,
                cfg: LinkConfig {
                    rate_bps: Some(4_000_000),
                    duplicate: 1.0,
                    delay_us: 0,
                    ..Default::default()
                },
            },
            LinkStep {
                at_us: 1_000_000,
                cfg: LinkConfig {
                    rate_bps: Some(4_000_000),
                    delay_us: 0,
                    ..Default::default()
                },
            },
        ]);
        // 1000-byte packet: 1 ms at 8 Mb/s, 2 ms at 4 Mb/s.
        ch.send(0, &[0u8; 1000]);
        assert_eq!(ch.next_delivery_us(), Some(1_000), "full-rate regime");
        ch.send(1_000_000, &[0u8; 1000]);
        assert_eq!(ch.next_delivery_us(), Some(1_000), "in-flight unaffected");
        let _ = ch.poll(1_000_000);
        assert_eq!(ch.next_delivery_us(), Some(1_002_000), "halved regime");
        assert_eq!(ch.stats().duplicated, 0);
        ch.send(2_000_000, &[0u8; 100]);
        assert_eq!(ch.stats().duplicated, 1, "duplicate regime");
        assert!(ch.config().duplicate == 1.0);
    }

    #[test]
    fn drop_next_discards_exactly_n_sends() {
        let mut ch = lossless(0);
        ch.drop_next(2);
        ch.send(0, b"a");
        ch.send(0, b"b");
        ch.send(0, b"c");
        let got = ch.poll(1_000);
        assert_eq!(got, vec![b"c".to_vec()]);
        assert_eq!(ch.stats().dropped, 2);
    }

    #[test]
    fn next_delivery_supports_event_stepping() {
        let mut ch = lossless(5_000);
        assert_eq!(ch.next_delivery_us(), None);
        ch.send(100, b"x");
        assert_eq!(ch.next_delivery_us(), Some(5_100));
        ch.poll(5_100);
        assert_eq!(ch.next_delivery_us(), None);
    }
}
