//! Virtual time: microseconds since simulation start, plus RTP 90 kHz
//! conversions (§5.1.1: "The RTP timestamp is based on a 90-kHz clock").

/// Convert microseconds to 90 kHz RTP ticks. Widens internally so times
/// near `u64::MAX` (arbitrary schedules in property tests) cannot overflow
/// the intermediate multiply.
pub fn us_to_ticks(us: u64) -> u64 {
    // 90_000 ticks per second = 0.09 ticks per µs = 9/100.
    (u128::from(us) * 9 / 100) as u64
}

/// Convert 90 kHz RTP ticks to microseconds, saturating at `u64::MAX`
/// (ticks expand by 100/9, so the top of the tick range has no exact µs
/// representation).
pub fn ticks_to_us(ticks: u64) -> u64 {
    u64::try_from(u128::from(ticks) * 100 / 9).unwrap_or(u64::MAX)
}

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualClock {
    now_us: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Current time in 90 kHz ticks.
    pub fn now_ticks(&self) -> u64 {
        us_to_ticks(self.now_us)
    }

    /// Advance by `dt` microseconds (saturating: the clock parks at
    /// `u64::MAX` rather than wrapping backwards).
    pub fn advance_us(&mut self, dt: u64) {
        self.now_us = self.now_us.saturating_add(dt);
    }

    /// Advance by milliseconds.
    pub fn advance_ms(&mut self, dt: u64) {
        self.now_us = self.now_us.saturating_add(dt.saturating_mul(1000));
    }

    /// Set to an absolute time (must not go backwards).
    pub fn set_us(&mut self, t: u64) {
        debug_assert!(t >= self.now_us, "clock must be monotonic");
        self.now_us = self.now_us.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(us_to_ticks(0), 0);
        assert_eq!(us_to_ticks(1_000_000), 90_000);
        assert_eq!(ticks_to_us(90_000), 1_000_000);
        assert_eq!(us_to_ticks(1_000), 90); // 1 ms = 90 ticks
    }

    #[test]
    fn conversions_survive_extreme_times() {
        // `us * 9` used to overflow u64 above ~2 × 10¹⁸ µs; adversarial
        // schedules may legitimately park the clock there.
        assert_eq!(
            us_to_ticks(u64::MAX),
            (u128::from(u64::MAX) * 9 / 100) as u64
        );
        assert_eq!(ticks_to_us(u64::MAX), u64::MAX);
        let mut c = VirtualClock::new();
        c.advance_us(u64::MAX);
        c.advance_us(u64::MAX);
        assert_eq!(c.now_us(), u64::MAX);
        c.advance_ms(u64::MAX);
        assert_eq!(c.now_us(), u64::MAX);
    }

    #[test]
    fn round_trip_within_quantization() {
        for us in [0u64, 1, 11, 111, 1_111, 123_456, 10_000_000] {
            let back = ticks_to_us(us_to_ticks(us));
            assert!(back <= us && us - back < 12, "{us} -> {back}");
        }
    }

    #[test]
    fn clock_advances() {
        let mut c = VirtualClock::new();
        c.advance_ms(5);
        assert_eq!(c.now_us(), 5_000);
        assert_eq!(c.now_ticks(), 450);
        c.advance_us(100);
        assert_eq!(c.now_us(), 5_100);
        c.set_us(10_000);
        assert_eq!(c.now_us(), 10_000);
    }
}
