//! Simulated unidirectional TCP stream: reliable, ordered bytes over a
//! bandwidth-limited link with a **bounded, observable send buffer** —
//! the mechanism behind the draft's §7 guidance that AHs "should monitor
//! the state of their TCP transmission buffers (through mechanisms such as
//! the select() command) and only send the most recent screen data when
//! there is no backlog".

use adshare_obs::{Counter, Gauge, Registry};

/// TCP link parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Link rate, bits/second.
    pub rate_bps: u64,
    /// One-way propagation delay, µs.
    pub delay_us: u64,
    /// Send-buffer capacity in bytes (SO_SNDBUF).
    pub send_buf: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            rate_bps: 10_000_000,
            delay_us: 20_000,
            send_buf: 64 * 1024,
        }
    }
}

/// Stream statistics (a point-in-time copy of the link's counters).
///
/// The stream is reliable, so once the link is drained every accepted byte
/// is delivered: `bytes_accepted == bytes_delivered`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStats {
    /// Bytes accepted into the send buffer.
    pub bytes_accepted: u64,
    /// Bytes the sender offered but the buffer could not take.
    pub bytes_refused: u64,
    /// Bytes delivered to the receiver.
    pub bytes_delivered: u64,
}

/// Live counter handles behind [`TcpStats`]; adoptable into a [`Registry`].
#[derive(Debug, Clone, Default)]
struct TcpCounters {
    bytes_accepted: Counter,
    bytes_refused: Counter,
    bytes_delivered: Counter,
    /// Current send-buffer occupancy — the §7 backlog signal as a gauge.
    backlog: Gauge,
}

/// A unidirectional reliable byte stream.
#[derive(Debug)]
pub struct TcpLink {
    cfg: TcpConfig,
    /// Bytes waiting in the sender's socket buffer.
    send_buf: std::collections::VecDeque<u8>,
    /// Bytes on the wire: (arrival time, chunk).
    in_flight: std::collections::VecDeque<(u64, Vec<u8>)>,
    /// When the serializer frees up.
    tx_free_at: u64,
    /// Received, not yet read.
    rx_buf: std::collections::VecDeque<u8>,
    counters: TcpCounters,
    last_pump_us: u64,
}

impl TcpLink {
    /// New link.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpLink {
            cfg,
            send_buf: std::collections::VecDeque::new(),
            in_flight: std::collections::VecDeque::new(),
            tx_free_at: 0,
            rx_buf: std::collections::VecDeque::new(),
            counters: TcpCounters::default(),
            last_pump_us: 0,
        }
    }

    /// The link parameters.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Offer bytes at `now_us`. Returns how many were accepted — like a
    /// non-blocking `write(2)`, the rest must be retried (or, per §7,
    /// superseded by fresher data).
    pub fn send(&mut self, now_us: u64, data: &[u8]) -> usize {
        self.pump(now_us);
        if self.send_buf.is_empty() {
            // Serializer was idle: it cannot have started before this data
            // arrived.
            self.tx_free_at = self.tx_free_at.max(now_us);
        }
        let space = self.cfg.send_buf.saturating_sub(self.send_buf.len());
        let take = space.min(data.len());
        self.send_buf.extend(&data[..take]);
        self.counters.bytes_accepted.add(take as u64);
        self.counters.bytes_refused.add((data.len() - take) as u64);
        self.pump(now_us);
        take
    }

    /// Bytes currently queued in the send buffer — the §7 backlog signal.
    pub fn backlog(&mut self, now_us: u64) -> usize {
        self.pump(now_us);
        self.send_buf.len()
    }

    /// Whether `n` bytes would be accepted right now without refusal.
    pub fn can_accept(&mut self, now_us: u64, n: usize) -> bool {
        self.pump(now_us);
        self.cfg.send_buf - self.send_buf.len() >= n
    }

    /// Read everything that has arrived by `now_us`.
    pub fn recv(&mut self, now_us: u64) -> Vec<u8> {
        self.pump(now_us);
        while let Some((arrives, _)) = self.in_flight.front() {
            if *arrives > now_us {
                break;
            }
            let (_, chunk) = self.in_flight.pop_front().expect("peeked");
            self.counters.bytes_delivered.add(chunk.len() as u64);
            self.rx_buf.extend(chunk);
        }
        self.rx_buf.drain(..).collect()
    }

    /// Earliest pending event (serializer free or next arrival), for
    /// event-driven stepping.
    pub fn next_event_us(&self) -> Option<u64> {
        let arrival = self.in_flight.front().map(|(t, _)| *t);
        let tx = if self.send_buf.is_empty() {
            None
        } else {
            Some(self.tx_free_at)
        };
        match (arrival, tx) {
            (Some(a), Some(t)) => Some(a.min(t)),
            (a, t) => a.or(t),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TcpStats {
        let c = &self.counters;
        TcpStats {
            bytes_accepted: c.bytes_accepted.get(),
            bytes_refused: c.bytes_refused.get(),
            bytes_delivered: c.bytes_delivered.get(),
        }
    }

    /// Adopt this link's counters into `registry` under `prefix`
    /// (e.g. `participant.2.tcp` → `participant.2.tcp.tx_bytes`, ...).
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        let c = &self.counters;
        registry.adopt_counter(&format!("{prefix}.tx_bytes"), &c.bytes_accepted);
        registry.adopt_counter(&format!("{prefix}.refused_bytes"), &c.bytes_refused);
        registry.adopt_counter(&format!("{prefix}.rx_bytes"), &c.bytes_delivered);
        registry.adopt_gauge(&format!("{prefix}.backlog_bytes"), &c.backlog);
    }

    /// Drain the send buffer onto the wire as the serializer frees up.
    ///
    /// Invariant: whenever `send_buf` is non-empty, the serializer has been
    /// continuously busy since the data arrived (send() bumps `tx_free_at`
    /// to the arrival time when the buffer was empty), so each segment
    /// starts exactly at `tx_free_at`. Segments whose start time is still
    /// in the future stay in the buffer — that occupancy is the backlog.
    fn pump(&mut self, now_us: u64) {
        debug_assert!(now_us >= self.last_pump_us, "time must be monotonic");
        self.last_pump_us = self.last_pump_us.max(now_us);
        while !self.send_buf.is_empty() && self.tx_free_at <= now_us {
            let begin = self.tx_free_at;
            let seg_len = self.send_buf.len().min(1460);
            let ser_us = (seg_len as u64 * 8).saturating_mul(1_000_000) / self.cfg.rate_bps.max(1);
            let finish = begin + ser_us;
            let chunk: Vec<u8> = self.send_buf.drain(..seg_len).collect();
            self.in_flight
                .push_back((finish + self.cfg.delay_us, chunk));
            self.tx_free_at = finish;
        }
        self.counters.backlog.set(self.send_buf.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_in_order_delivery() {
        let mut link = TcpLink::new(TcpConfig::default());
        assert_eq!(link.send(0, b"hello "), 6);
        assert_eq!(link.send(0, b"world"), 5);
        let got = link.recv(1_000_000);
        assert_eq!(got, b"hello world");
        assert_eq!(link.stats().bytes_delivered, 11);
    }

    #[test]
    fn nothing_before_propagation_delay() {
        let cfg = TcpConfig {
            delay_us: 50_000,
            rate_bps: 1_000_000_000,
            send_buf: 1 << 20,
        };
        let mut link = TcpLink::new(cfg);
        link.send(0, b"x");
        assert!(link.recv(49_000).is_empty());
        assert_eq!(link.recv(51_000), b"x");
    }

    #[test]
    fn bandwidth_limits_throughput() {
        // 1 Mbit/s for 1 second ≈ 125 kB.
        let cfg = TcpConfig {
            delay_us: 0,
            rate_bps: 1_000_000,
            send_buf: 1 << 20,
        };
        let mut link = TcpLink::new(cfg);
        let data = vec![0u8; 1 << 20];
        let mut offered = 0;
        let mut received = 0usize;
        for ms in 0..1000u64 {
            let now = ms * 1000;
            if offered < data.len() {
                offered += link.send(now, &data[offered..]);
            }
            received += link.recv(now).len();
        }
        let total = received + link.recv(1_000_000).len();
        assert!(
            (115_000..=135_000).contains(&total),
            "~125kB over 1s at 1Mbit/s, got {total}"
        );
    }

    #[test]
    fn send_buffer_backpressure_observable() {
        // Slow link, small buffer: writes start being refused and backlog
        // reads non-zero — exactly the §7 signal.
        let cfg = TcpConfig {
            delay_us: 0,
            rate_bps: 100_000,
            send_buf: 10_000,
        };
        let mut link = TcpLink::new(cfg);
        let accepted = link.send(0, &vec![0u8; 50_000]);
        assert!(
            accepted <= 10_000 + 1460,
            "buffer bounds acceptance, got {accepted}"
        );
        assert!(link.backlog(0) > 0);
        assert!(!link.can_accept(0, 50_000));
        assert!(link.stats().bytes_refused > 0);
        // After enough time the backlog drains.
        assert_eq!(link.backlog(10_000_000), 0);
        assert!(link.can_accept(10_000_000, 10_000));
    }

    #[test]
    fn backlog_drains_progressively() {
        let cfg = TcpConfig {
            delay_us: 0,
            rate_bps: 1_000_000,
            send_buf: 100_000,
        };
        let mut link = TcpLink::new(cfg);
        link.send(0, &vec![0u8; 50_000]);
        let b0 = link.backlog(0);
        let b1 = link.backlog(100_000); // 100ms → 12.5kB drained
        let b2 = link.backlog(300_000);
        assert!(b0 > b1 && b1 > b2, "backlog must shrink: {b0} {b1} {b2}");
    }

    #[test]
    fn next_event_supports_event_stepping() {
        let cfg = TcpConfig {
            delay_us: 10_000,
            rate_bps: 1_000_000,
            send_buf: 1 << 20,
        };
        let mut link = TcpLink::new(cfg);
        assert_eq!(link.next_event_us(), None);
        link.send(0, &[0u8; 125]); // 1ms serialize
        let e = link.next_event_us().unwrap();
        assert!(e <= 11_000);
        link.recv(e);
        // After delivery nothing is pending.
        let _ = link.recv(1_000_000);
        assert_eq!(link.next_event_us(), None);
    }

    #[test]
    fn byte_accounting_conserves_after_drain() {
        let cfg = TcpConfig {
            delay_us: 3_000,
            rate_bps: 500_000,
            send_buf: 8_000,
        };
        let mut link = TcpLink::new(cfg);
        let registry = Registry::new();
        link.register_metrics(&registry, "tcp");
        for i in 0..200u64 {
            link.send(i * 1_000, &[0u8; 700]); // overruns the buffer at times
        }
        let _ = link.recv(10_000_000);
        let s = link.stats();
        assert!(s.bytes_refused > 0, "backpressure exercised");
        assert_eq!(s.bytes_accepted + s.bytes_refused, 200 * 700);
        assert_eq!(s.bytes_accepted, s.bytes_delivered, "reliable stream");
        assert_eq!(
            registry.counter_value("tcp.tx_bytes"),
            Some(s.bytes_accepted)
        );
        assert_eq!(
            registry.counter_value("tcp.rx_bytes"),
            Some(s.bytes_delivered)
        );
    }

    #[test]
    fn backlog_gauge_tracks_send_buffer() {
        let cfg = TcpConfig {
            delay_us: 0,
            rate_bps: 100_000,
            send_buf: 50_000,
        };
        let mut link = TcpLink::new(cfg);
        let registry = Registry::new();
        link.register_metrics(&registry, "tcp");
        link.send(0, &[0u8; 40_000]);
        let snap = registry.snapshot();
        let early = match snap.get("tcp.backlog_bytes") {
            Some(adshare_obs::MetricSnapshot::Gauge(v)) => *v,
            other => panic!("expected gauge, got {other:?}"),
        };
        assert!(early > 0, "queued bytes show as backlog, got {early}");
        link.backlog(10_000_000);
        let snap = registry.snapshot();
        let drained = match snap.get("tcp.backlog_bytes") {
            Some(adshare_obs::MetricSnapshot::Gauge(v)) => *v,
            other => panic!("expected gauge, got {other:?}"),
        };
        assert_eq!(drained, 0, "gauge returns to zero after drain");
    }

    #[test]
    fn interleaved_send_recv_preserves_stream_order() {
        let cfg = TcpConfig {
            delay_us: 5_000,
            rate_bps: 10_000_000,
            send_buf: 1 << 16,
        };
        let mut link = TcpLink::new(cfg);
        let mut expected = Vec::new();
        let mut received = Vec::new();
        for i in 0..100u64 {
            let byte = (i % 251) as u8;
            let n = link.send(i * 1_000, &[byte; 100]);
            expected.extend(std::iter::repeat_n(byte, n));
            received.extend(link.recv(i * 1_000));
        }
        received.extend(link.recv(10_000_000));
        assert_eq!(received, expected);
    }
}
