//! Deterministic relay-topology orchestrator: one [`AppHost`], a tree of
//! [`RelayNode`]s (AH→relay→…→relay) and N participants hanging off relay
//! legs, all stepped on one virtual clock. The relay-tier experiments and
//! e2e tests drive this the way [`adshare_session::SimSession`] drives the
//! direct topology.

use adshare_capture::{CaptureConfig, CaptureError, CaptureHandle, CaptureMode};
use adshare_layers::TierStats;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::time::{us_to_ticks, VirtualClock};
use adshare_netsim::udp::{LinkConfig, UdpChannel};
use adshare_obs::{EventKind, Obs, ACTOR_AH};
use adshare_screen::desktop::Desktop;
use adshare_sdp::{build_ah_offer, build_relay_offer, OfferParams, SessionDescription};
use adshare_session::{AhConfig, AppHost, Layout, Participant, ParticipantHandle};

use crate::{RelayConfig, RelayNode};

/// Consecutive stuck sim-steps before a participant abandons a reorder gap.
const GAP_TIMEOUT_TICKS: u32 = 40;

/// Where a relay subscribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upstream {
    /// Directly to the application host.
    Ah,
    /// To another relay (by its index), forming a cascade.
    Relay(usize),
}

struct RelayStage {
    node: RelayNode,
    /// AH-side handle when subscribed to the AH.
    handle: Option<ParticipantHandle>,
    /// `(relay index, leg index)` when subscribed to another relay.
    parent: Option<(usize, usize)>,
    /// Upstream RTCP path.
    upstream: UdpChannel,
    /// The SDP this relay re-offers downstream.
    offer: SessionDescription,
}

struct SimLeg {
    participant: Participant,
    relay: usize,
    leg: usize,
    upstream: UdpChannel,
    stuck_ticks: u32,
    last_held: usize,
    /// `false` once the viewer has left. The slot stays so participant
    /// indices remain stable under churn, mirroring relay leg indices.
    active: bool,
    /// RFC 4571-framed TCP leg: relay output is a byte stream, not
    /// datagrams, so the viewer deframes via `handle_stream`.
    tcp: bool,
}

/// A complete simulated relay-tier session.
pub struct RelaySim {
    /// The application host.
    pub ah: AppHost,
    /// The virtual clock.
    pub clock: VirtualClock,
    relays: Vec<RelayStage>,
    participants: Vec<SimLeg>,
    obs: Obs,
    ah_offer: SessionDescription,
    capture: Option<CaptureHandle>,
}

impl RelaySim {
    /// Create a session around a desktop. `offer` seeds the SDP chain the
    /// relays re-offer downstream.
    pub fn new(desktop: Desktop, cfg: AhConfig, offer: &OfferParams, seed: u64) -> Self {
        let obs = Obs::new();
        let mut ah = AppHost::new(desktop, cfg, seed);
        ah.attach_obs(obs.clone());
        RelaySim {
            ah,
            clock: VirtualClock::new(),
            relays: Vec::new(),
            participants: Vec::new(),
            obs,
            ah_offer: build_ah_offer(offer),
            capture: None,
        }
    }

    /// The session-wide observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Arm a consent-gated capture spanning the AH egress *and* every
    /// relay hop: one handle records the whole tree so a replay can
    /// reconstruct any subtree's wire view. `start_us` is stamped from the
    /// sim clock so capture records and flight-recorder events share one
    /// virtual-time origin. Fails with [`CaptureError::ConsentRequired`]
    /// unless `consent` is set.
    pub fn arm_capture(
        &mut self,
        consent: bool,
        mode: CaptureMode,
        session_id: u64,
    ) -> Result<CaptureHandle, CaptureError> {
        let now = self.clock.now_us();
        let cap = CaptureHandle::arm(CaptureConfig {
            consent,
            mode,
            session_id,
            start_us: now,
        })?;
        cap.attach_obs(self.obs.clone());
        self.ah.attach_capture(cap.clone());
        for stage in &mut self.relays {
            stage.node.attach_capture(cap.clone());
        }
        let (ring, window) = match mode {
            CaptureMode::Ring { window_us } => (1, window_us),
            CaptureMode::Full => (0, 0),
        };
        self.obs
            .event(now, ACTOR_AH, EventKind::CaptureArmed, ring, window);
        self.capture = Some(cap.clone());
        Ok(cap)
    }

    /// The armed capture handle, if any.
    pub fn capture(&self) -> Option<&CaptureHandle> {
        self.capture.as_ref()
    }

    /// Auto-arm a bounded ring capture and hook it into the health engine
    /// the way [`adshare_session::SimSession::enable_auto_capture`] does:
    /// when a CRITICAL black-box dump fires — a relay leg starving, an
    /// estimator pinned at its floor — the ring (with the flight-recorder
    /// snapshot embedded) is written next to the dump and referenced in
    /// the black-box JSON as `capture_path`, so a relay incident is
    /// replayable without anyone having planned for it. `consent` is still
    /// required — auto-arming does not bypass the gate.
    pub fn enable_auto_capture(
        &mut self,
        consent: bool,
        window_us: u64,
        dir: std::path::PathBuf,
        session_id: u64,
    ) -> Result<(), CaptureError> {
        let cap = self.arm_capture(consent, CaptureMode::Ring { window_us }, session_id)?;
        let recorder = self.obs.recorder.clone();
        self.obs
            .health
            .lock()
            .expect("health engine poisoned")
            .set_capture_hook(Box::new(move |at_us| {
                cap.finalize(&recorder.snapshot());
                let path = dir.join(format!("capture-critical-{at_us}.bin"));
                cap.write_to(&path)
                    .ok()
                    .map(|()| path.display().to_string())
            }));
        Ok(())
    }

    /// Add a relay subscribed at `upstream` (a cascaded relay must name a
    /// lower-indexed parent). Returns the relay index.
    pub fn add_relay(
        &mut self,
        upstream: Upstream,
        cfg: RelayConfig,
        down: LinkConfig,
        up: LinkConfig,
        seed: u64,
    ) -> usize {
        let idx = self.relays.len();
        let mut node = RelayNode::new(cfg, idx as u16);
        node.attach_obs(self.obs.clone());
        if let Some(cap) = &self.capture {
            node.attach_capture(cap.clone());
        }
        let now = self.clock.now_us();
        let (handle, parent, parent_offer) = match upstream {
            Upstream::Ah => {
                // The AH sees the relay as one more unicast UDP receiver.
                let user_id = 0x5200 + idx as u16;
                let handle = self.ah.attach_udp(user_id, down, seed, None);
                (Some(handle), None, self.ah_offer.clone())
            }
            Upstream::Relay(parent) => {
                assert!(parent < idx, "cascade parents must be added first");
                let leg = self.relays[parent].node.add_leg_udp(down, seed, None);
                self.register_leg_metrics(parent, leg);
                (None, Some((parent, leg)), self.relays[parent].offer.clone())
            }
        };
        node.subscribe(now);
        let upstream_ch = UdpChannel::new(up, seed ^ 0x7E57);
        upstream_ch.register_metrics(&self.obs.registry, &format!("relay.{idx}.upstream"));
        let offer = build_relay_offer(&parent_offer, &format!("10.82.0.{}", idx + 1));
        self.relays.push(RelayStage {
            node,
            handle,
            parent,
            upstream: upstream_ch,
            offer,
        });
        idx
    }

    fn register_leg_metrics(&self, relay: usize, leg: usize) {
        if let Some(link) = self.relays.get(relay).and_then(|r| r.node.leg_link(leg)) {
            link.register_metrics(&self.obs.registry, &format!("relay.{relay}.leg.{leg}.down"));
        }
    }

    /// Add a participant on a leg of `relay`. Returns the participant index.
    pub fn add_participant(
        &mut self,
        relay: usize,
        layout: Layout,
        down: LinkConfig,
        up: LinkConfig,
        seed: u64,
    ) -> usize {
        self.add_participant_rate(relay, layout, down, up, seed, None)
    }

    /// Add a participant whose relay leg is pacing-capped at `rate_bps` —
    /// the heterogeneous-bandwidth knob: a layered relay's tier controller
    /// meters this cap and drops the leg to the tier it affords.
    pub fn add_participant_rate(
        &mut self,
        relay: usize,
        layout: Layout,
        down: LinkConfig,
        up: LinkConfig,
        seed: u64,
        rate_bps: Option<u64>,
    ) -> usize {
        let leg = self.relays[relay].node.add_leg_udp(down, seed, rate_bps);
        self.register_leg_metrics(relay, leg);
        self.push_participant(relay, leg, layout, up, seed, false)
    }

    /// Add a participant on an RFC 4571-framed TCP leg. The relay frames
    /// its fan-out into the stream and the same tier controller watches
    /// the send-buffer backlog, so a congested TCP subtree downgrades
    /// instead of stalling behind an ever-growing buffer.
    pub fn add_participant_tcp(
        &mut self,
        relay: usize,
        layout: Layout,
        tcp: TcpConfig,
        up: LinkConfig,
        seed: u64,
        rate_bps: Option<u64>,
    ) -> usize {
        let leg = self.relays[relay].node.add_leg_tcp(tcp, rate_bps);
        self.push_participant(relay, leg, layout, up, seed, true)
    }

    fn push_participant(
        &mut self,
        relay: usize,
        leg: usize,
        layout: Layout,
        up: LinkConfig,
        seed: u64,
        tcp: bool,
    ) -> usize {
        let idx = self.participants.len();
        let user_id = idx as u16 + 1;
        let mut participant = Participant::new(user_id, layout, true, seed ^ 0x9e37);
        participant.attach_obs(&self.obs, idx);
        participant.request_refresh();
        let upstream = UdpChannel::new(up, seed ^ 0x1234);
        upstream.register_metrics(&self.obs.registry, &format!("participant.{idx}.upstream"));
        self.participants.push(SimLeg {
            participant,
            relay,
            leg,
            upstream,
            stuck_ticks: 0,
            last_held: 0,
            active: true,
            tcp,
        });
        idx
    }

    /// Remove a participant: its relay leg is closed (no further fan-out,
    /// feedback ignored) and the viewer stops being stepped. The index
    /// stays valid so scenario schedules can keep naming later joiners.
    pub fn remove_participant(&mut self, idx: usize) {
        let Some(sp) = self.participants.get_mut(idx) else {
            return;
        };
        if !sp.active {
            return;
        }
        sp.active = false;
        self.relays[sp.relay].node.close_leg(sp.leg);
    }

    /// Whether a participant is still in the session.
    pub fn is_active(&self, idx: usize) -> bool {
        self.participants.get(idx).is_some_and(|sp| sp.active)
    }

    /// Number of participants.
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// Access a participant.
    pub fn participant(&self, idx: usize) -> &Participant {
        &self.participants[idx].participant
    }

    /// Access a relay node.
    pub fn relay(&self, idx: usize) -> &RelayNode {
        &self.relays[idx].node
    }

    /// Access a relay node mutably (tests use this to inject leg loss).
    pub fn relay_mut(&mut self, idx: usize) -> &mut RelayNode {
        &mut self.relays[idx].node
    }

    /// The `(relay, leg)` a participant hangs off.
    pub fn participant_leg(&self, idx: usize) -> (usize, usize) {
        (self.participants[idx].relay, self.participants[idx].leg)
    }

    /// The SDP a relay re-offers downstream (`adshare-relay-hops` counts
    /// its distance from the AH).
    pub fn relay_offer(&self, idx: usize) -> &SessionDescription {
        &self.relays[idx].offer
    }

    /// Per-leg tier snapshot of a relay at the current sim time.
    pub fn tier_stats(&mut self, relay: usize) -> TierStats {
        let now = self.clock.now_us();
        self.relays[relay].node.tier_stats(now)
    }

    /// Wire bytes the AH has sent to relay subscribers — the AH's total
    /// egress in a pure relay topology, regardless of participant count.
    pub fn ah_egress_bytes(&self) -> u64 {
        self.relays
            .iter()
            .filter_map(|r| r.handle)
            .map(|h| self.ah.participant_bytes_sent(h))
            .sum()
    }

    /// Advance the world by `dt_us`: AH captures and flushes, relays ingest
    /// and fan out (parents before children, so a cascade adds no extra
    /// step latency), participants apply and feed back.
    pub fn step(&mut self, dt_us: u64) {
        self.clock.advance_us(dt_us);
        let now = self.clock.now_us();
        let ticks = us_to_ticks(now);

        self.ah.step(now);

        for i in 0..self.relays.len() {
            // Ingest from the parent hop.
            let datagrams = match self.relays[i].parent {
                None => {
                    let handle = self.relays[i].handle.expect("AH-attached relay");
                    self.ah.poll_udp(handle, now)
                }
                Some((parent, leg)) => self.relays[parent].node.poll_leg(leg, now),
            };
            for dg in datagrams {
                self.relays[i].node.ingest_upstream(&dg, now);
            }
            self.relays[i].node.step(now);
            // Upstream RTCP (NACK escalations, coalesced PLIs, reports).
            if let Some(bytes) = self.relays[i].node.take_upstream_rtcp() {
                self.relays[i].upstream.send(now, &bytes);
            }
            let delivered = self.relays[i].upstream.poll(now);
            for bytes in delivered {
                match self.relays[i].parent {
                    None => {
                        let handle = self.relays[i].handle.expect("AH-attached relay");
                        self.ah.handle_rtcp(handle, &bytes, now);
                    }
                    Some((parent, leg)) => {
                        self.relays[parent].node.handle_leg_rtcp(leg, &bytes, now);
                    }
                }
            }
        }

        for sp in &mut self.participants {
            if !sp.active {
                continue;
            }
            let stage = &mut self.relays[sp.relay];
            for dg in stage.node.poll_leg(sp.leg, now) {
                if sp.tcp {
                    sp.participant.handle_stream(&dg, ticks);
                } else {
                    sp.participant.handle_datagram(&dg, ticks);
                }
            }
            let held = sp.participant.reorder_held();
            if held > 0 && held == sp.last_held {
                sp.stuck_ticks += 1;
                if sp.stuck_ticks >= GAP_TIMEOUT_TICKS {
                    sp.participant.recover_from_gap();
                    sp.stuck_ticks = 0;
                }
            } else {
                sp.stuck_ticks = 0;
            }
            sp.last_held = sp.participant.reorder_held();
            sp.participant.tick(ticks);
            if let Some(bytes) = sp.participant.take_rtcp() {
                sp.upstream.send(now, &bytes);
            }
            for bytes in sp.upstream.poll(now) {
                stage.node.handle_leg_rtcp(sp.leg, &bytes, now);
            }
        }
    }

    /// Step repeatedly until `pred` holds or `max_steps` elapse; returns
    /// whether the predicate held.
    pub fn run_until(
        &mut self,
        dt_us: u64,
        max_steps: usize,
        mut pred: impl FnMut(&RelaySim) -> bool,
    ) -> bool {
        for _ in 0..max_steps {
            self.step(dt_us);
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Whether a participant's view matches the AH pixel for pixel.
    pub fn converged(&self, idx: usize) -> bool {
        let p = &self.participants[idx].participant;
        if !p.synced() {
            return false;
        }
        let records: Vec<_> = self.ah.desktop().wm().shared_records().collect();
        if records.len() != p.z_order().len() {
            return false;
        }
        for rec in records {
            let Some(content) = p.window_content(rec.id.0) else {
                return false;
            };
            let Some(ah_content) = self.ah.desktop().window_content(rec.id) else {
                return false;
            };
            if content != ah_content {
                return false;
            }
        }
        true
    }

    /// Mean per-pixel absolute error between a participant's windows and
    /// the AH's (0.0 = identical).
    pub fn divergence(&self, idx: usize) -> f64 {
        let p = &self.participants[idx].participant;
        let records: Vec<_> = self.ah.desktop().wm().shared_records().collect();
        let mut total = 0.0;
        let mut n = 0usize;
        for rec in records {
            let (Some(local), Some(remote)) = (
                p.window_content(rec.id.0),
                self.ah.desktop().window_content(rec.id),
            ) else {
                return f64::INFINITY;
            };
            if local.width() != remote.width() || local.height() != remote.height() {
                return f64::INFINITY;
            }
            total += local.mean_abs_error(remote);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adshare_codec::image::{Image, Rect};
    use adshare_layers::LayersConfig;
    use adshare_obs::{json, DumpSink, HealthConfig};
    use adshare_rate::QualityTier;

    fn desktop_with_window() -> Desktop {
        let mut desktop = Desktop::new(640, 480);
        let id = desktop.create_window(0, Rect::new(40, 40, 160, 120), [30, 90, 150, 255]);
        let stamp = Image::filled(32, 32, [220, 40, 40, 255]).unwrap();
        desktop.draw(id, 8, 8, &stamp);
        desktop
    }

    fn lossless() -> LinkConfig {
        LinkConfig {
            loss: 0.0,
            ..LinkConfig::default()
        }
    }

    #[test]
    fn fanout_converges_two_participants() {
        let mut sim = RelaySim::new(
            desktop_with_window(),
            AhConfig::default(),
            &OfferParams::default(),
            1,
        );
        let relay = sim.add_relay(
            Upstream::Ah,
            RelayConfig::default(),
            lossless(),
            lossless(),
            2,
        );
        let a = sim.add_participant(relay, Layout::Original, lossless(), lossless(), 3);
        let b = sim.add_participant(relay, Layout::Original, lossless(), lossless(), 4);
        let ok = sim.run_until(5_000, 2_000, |s| s.converged(a) && s.converged(b));
        assert!(
            ok,
            "divergence: {} / {}",
            sim.divergence(a),
            sim.divergence(b)
        );
        assert!(sim.relay(relay).synced());
        assert!(sim.relay(relay).stats().forwarded_packets > 0);
    }

    #[test]
    fn cascade_converges_and_counts_hops() {
        let mut sim = RelaySim::new(
            desktop_with_window(),
            AhConfig::default(),
            &OfferParams::default(),
            5,
        );
        let first = sim.add_relay(
            Upstream::Ah,
            RelayConfig::default(),
            lossless(),
            lossless(),
            6,
        );
        let second = sim.add_relay(
            Upstream::Relay(first),
            RelayConfig::default(),
            lossless(),
            lossless(),
            7,
        );
        let p = sim.add_participant(second, Layout::Original, lossless(), lossless(), 8);
        assert_eq!(sim.relay_offer(first).relay_hops(), 1);
        assert_eq!(sim.relay_offer(second).relay_hops(), 2);
        let ok = sim.run_until(5_000, 3_000, |s| s.converged(p));
        assert!(ok, "divergence: {}", sim.divergence(p));
        // The AH served exactly one leg; the cascade multiplied it.
        assert!(sim.relay(second).stats().forwarded_packets > 0);
    }

    #[test]
    fn tcp_participant_converges_over_framed_stream() {
        let mut sim = RelaySim::new(
            desktop_with_window(),
            AhConfig::default(),
            &OfferParams::default(),
            21,
        );
        let relay = sim.add_relay(
            Upstream::Ah,
            RelayConfig::default(),
            lossless(),
            lossless(),
            22,
        );
        let p = sim.add_participant_tcp(
            relay,
            Layout::Original,
            TcpConfig::default(),
            lossless(),
            23,
            None,
        );
        let ok = sim.run_until(5_000, 3_000, |s| s.converged(p));
        assert!(ok, "divergence: {}", sim.divergence(p));
    }

    #[test]
    fn layered_tree_slow_leg_degrades_without_starving() {
        let mut sim = RelaySim::new(
            desktop_with_window(),
            AhConfig::default(),
            &OfferParams::default(),
            31,
        );
        let cfg = RelayConfig {
            layers: Some(LayersConfig::default()),
            ..RelayConfig::default()
        };
        let relay = sim.add_relay(Upstream::Ah, cfg, lossless(), lossless(), 32);
        let fast = sim.add_participant(relay, Layout::Original, lossless(), lossless(), 33);
        // 1.2 Mb/s sits below `lossless_above` (1.5 Mb/s): the tier
        // controller must drop this leg to Balanced instead of letting it
        // starve behind the pacer.
        let slow = sim.add_participant_rate(
            relay,
            Layout::Original,
            lossless(),
            lossless(),
            34,
            Some(1_200_000),
        );
        // Keep painting so both legs see steady damage traffic.
        for round in 0..40u32 {
            let id = sim.ah.desktop().wm().shared_records().next().unwrap().id;
            sim.ah.desktop_mut().fill(
                id,
                Rect::new(round % 100, 8, 16, 16),
                [round as u8, 80, 200, 255],
            );
            for _ in 0..25 {
                sim.step(5_000);
            }
        }
        let ok = sim.run_until(5_000, 2_000, |s| s.converged(fast));
        assert!(ok, "fast divergence: {}", sim.divergence(fast));
        let (_, fast_leg) = sim.participant_leg(fast);
        let (_, slow_leg) = sim.participant_leg(slow);
        assert_eq!(
            sim.relay(relay).leg_tier(fast_leg),
            Some(QualityTier::Lossless),
            "uncapped leg stays lossless"
        );
        assert_eq!(
            sim.relay(relay).leg_tier(slow_leg),
            Some(QualityTier::Balanced),
            "capped leg rides the tier it affords"
        );
        let stats = sim.tier_stats(relay);
        let slow_stats = &stats.legs[slow_leg];
        assert!(
            slow_stats.synth_msgs > 0,
            "slow leg must receive synthesized renditions: {slow_stats:?}"
        );
        // The degraded subtree keeps rendering: lossy, but never starved.
        let div = sim.divergence(slow);
        assert!(
            div.is_finite() && div < 40.0,
            "slow leg should track the desktop approximately, got {div}"
        );
        assert!(sim.participant(slow).stats().regions_applied > 0);
    }

    /// Forcing a relay CRITICAL with auto-capture enabled must write the
    /// ring next to the black box and reference it as `capture_path` —
    /// the same contract `SimSession::enable_auto_capture` gives direct
    /// sessions.
    #[test]
    fn relay_critical_dump_references_ring_capture() {
        let dir = std::env::temp_dir().join("adshare-relay-autocap");
        std::fs::create_dir_all(&dir).expect("create artifact dir");
        let mut sim = RelaySim::new(
            desktop_with_window(),
            AhConfig::default(),
            &OfferParams::default(),
            41,
        );
        {
            let mut engine = sim.obs().health.lock().unwrap();
            // Pull the loss CRITICAL threshold below what a 5% link produces.
            engine.set_config(HealthConfig {
                loss: (0.005, 0.01),
                ..HealthConfig::default()
            });
            engine.set_sink(DumpSink::Dir(dir.clone()));
        }
        sim.enable_auto_capture(true, 2_000_000, dir.clone(), 41)
            .expect("consent supplied");
        let relay = sim.add_relay(
            Upstream::Ah,
            RelayConfig::default(),
            lossless(),
            lossless(),
            42,
        );
        let lossy = LinkConfig {
            loss: 0.05,
            delay_us: 20_000,
            ..LinkConfig::default()
        };
        let p = sim.add_participant(relay, Layout::Original, lossy, lossless(), 43);
        sim.run_until(5_000, 3_000, |s| s.converged(p));
        for round in 0..60u32 {
            let id = sim.ah.desktop().wm().shared_records().next().unwrap().id;
            sim.ah.desktop_mut().fill(
                id,
                Rect::new(round % 100, 8, 16, 16),
                [9, round as u8, 120, 255],
            );
            for _ in 0..10 {
                sim.step(5_000);
            }
            sim.obs().health_check(sim.clock.now_us());
        }
        let engine = sim.obs().health.lock().unwrap();
        assert!(engine.dumps() >= 1, "tightened SLO under 5% loss must dump");
        let dump = engine.last_dump().expect("dump retained");
        let doc = json::parse(dump).expect("black box is JSON");
        let capture_path = doc
            .get("capture_path")
            .and_then(|v| v.as_str())
            .expect("relay black box must reference the auto-armed capture")
            .to_string();
        assert!(
            std::path::Path::new(&capture_path).exists(),
            "referenced ring capture missing: {capture_path}"
        );
    }

    #[test]
    fn downstream_loss_is_absorbed_by_the_relay() {
        let mut sim = RelaySim::new(
            desktop_with_window(),
            AhConfig::default(),
            &OfferParams::default(),
            9,
        );
        let relay = sim.add_relay(
            Upstream::Ah,
            RelayConfig::default(),
            lossless(),
            lossless(),
            10,
        );
        let lossy = LinkConfig {
            loss: 0.05,
            ..LinkConfig::default()
        };
        let p = sim.add_participant(relay, Layout::Original, lossy, lossless(), 11);
        // Keep painting so there is steady traffic to lose.
        for round in 0..40u32 {
            let id = sim.ah.desktop().wm().shared_records().next().unwrap().id;
            sim.ah.desktop_mut().fill(
                id,
                Rect::new(round % 100, 8, 16, 16),
                [round as u8, 200, 10, 255],
            );
            for _ in 0..25 {
                sim.step(5_000);
            }
        }
        let ok = sim.run_until(5_000, 2_000, |s| s.converged(p));
        assert!(ok, "divergence: {}", sim.divergence(p));
        let stats = sim.relay(relay).stats();
        assert!(
            stats.nacks_absorbed_seqs > 0,
            "relay should repair downstream loss locally: {stats:?}"
        );
        assert_eq!(
            stats.upstream_nacks(),
            0,
            "downstream loss must not leak upstream: {stats:?}"
        );
    }
}
