//! Relay-topology adversarial scenario: the late-join flash crowd.
//!
//! The direct-topology schedules live in `adshare_session::scenario`; this
//! module reuses its [`Expectation`]/[`ScenarioOutcome`] oracle types to
//! score the one schedule that needs a relay tier — a storm of late
//! joiners all arriving inside a single refresh interval, which must be
//! absorbed by the relay's shadow-state catch-up ([`crate::RelayNode`])
//! rather than escalating a PLI-per-joiner to the AH. Optionally half the
//! crowd churns back out mid-run, exercising [`crate::RelayNode::close_leg`]
//! under load.
//!
//! The pass/fail oracle is the same health engine: no report may exceed
//! the expectation ceiling (no false CRITICAL) and windows with a floor
//! must be reached (no missed degradation). Domain invariants — catch-ups
//! served ≥ joiners, upstream PLIs bounded, survivors converged — are
//! asserted by the callers in `tests/scenarios.rs` on the returned
//! [`RelaySim`].

use std::path::PathBuf;

use adshare_codec::image::Rect;
use adshare_netsim::udp::LinkConfig;
use adshare_obs::{DumpSink, HealthConfig, HealthReport, HealthStatus};
use adshare_screen::desktop::Desktop;
use adshare_screen::workload::{Typing, Workload};
use adshare_sdp::OfferParams;
use adshare_session::scenario::{evaluate_expectations, Expectation, ScenarioOutcome};
use adshare_session::{AhConfig, Layout};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sim::{RelaySim, Upstream};
use crate::RelayConfig;

/// Declarative flash-crowd schedule (all times in µs of virtual time).
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Master seed; per-joiner link seeds derive from it.
    pub seed: u64,
    /// Size of the storm.
    pub joiners: usize,
    /// When the first storm joiner arrives. Must leave the relay enough
    /// warm-up to sync its shadow state from the AH.
    pub join_start_us: u64,
    /// The storm is spread uniformly over this window. The default keeps
    /// it inside one catch-up refresh interval (500 ms), so every joiner
    /// hits the shadow-state path while the per-leg throttles are cold.
    pub join_window_us: u64,
    /// When set, the first half of the storm leaves again at this instant.
    pub leave_half_at_us: Option<u64>,
    /// Total simulated run time.
    pub duration_us: u64,
    /// The AH workload stops here; the quiet tail drains repairs so the
    /// final convergence check is meaningful.
    pub workload_until_us: u64,
    /// Step size.
    pub tick_us: u64,
    /// Health-oracle cadence.
    pub check_interval_us: u64,
    /// Health thresholds; `None` keeps the defaults.
    pub health: Option<HealthConfig>,
    /// Oracle windows (same semantics as the direct-topology runner).
    pub expectations: Vec<Expectation>,
    /// Failure artifact directory (outcome JSON, CRITICAL black boxes).
    pub dump_dir: Option<PathBuf>,
}

impl FlashCrowd {
    /// The canonical storm: 100 joiners inside 400 ms (one refresh
    /// interval), arriving after a 2 s warm-up, half leaving at 8 s, with
    /// a whole-run "never worse than DEGRADED" expectation.
    pub fn new(seed: u64) -> Self {
        let duration_us = 14_000_000;
        FlashCrowd {
            seed,
            joiners: 100,
            join_start_us: 2_000_000,
            join_window_us: 400_000,
            leave_half_at_us: Some(8_000_000),
            duration_us,
            workload_until_us: 11_000_000,
            tick_us: 33_333,
            check_interval_us: 500_000,
            health: None,
            expectations: vec![Expectation {
                from_us: 0,
                to_us: duration_us,
                max: HealthStatus::Degraded,
                min: None,
            }],
            dump_dir: None,
        }
    }
}

fn joiner_seed(master: u64, ordinal: usize) -> u64 {
    master ^ (ordinal as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF1A5
}

/// Drive a [`RelaySim`] through the flash crowd and score it with the
/// shared oracle. Returns the outcome plus the final sim so callers can
/// assert relay counters (`catchups_served`, `plis_upstream`) on top.
pub fn run_flash_crowd(fc: &FlashCrowd) -> (ScenarioOutcome, RelaySim) {
    let mut desktop = Desktop::new(640, 480);
    let win = desktop.create_window(1, Rect::new(30, 30, 260, 180), [250, 250, 250, 255]);
    let mut sim = RelaySim::new(
        desktop,
        AhConfig::default(),
        &OfferParams::default(),
        fc.seed,
    );
    {
        let mut engine = sim.obs().health.lock().unwrap();
        if let Some(cfg) = &fc.health {
            engine.set_config(cfg.clone());
        }
        if let Some(dir) = &fc.dump_dir {
            engine.set_sink(DumpSink::Dir(dir.clone()));
        }
    }
    let clean = LinkConfig {
        loss: 0.0,
        delay_us: 10_000,
        ..LinkConfig::default()
    };
    let relay = sim.add_relay(
        Upstream::Ah,
        RelayConfig::default(),
        clean,
        clean,
        fc.seed ^ 0x2E1A,
    );

    let mut workload = Typing::new(win, 2);
    let mut rng = StdRng::seed_from_u64(fc.seed ^ 0x5EED);

    // Join instants, spread uniformly across the window.
    let mut join_at: Vec<u64> = (0..fc.joiners)
        .map(|i| fc.join_start_us + (fc.join_window_us * i as u64) / (fc.joiners.max(1) as u64))
        .collect();
    join_at.reverse(); // pop() yields them in chronological order

    let mut log: Vec<String> = Vec::new();
    let mut reports: Vec<HealthReport> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut last_check_us = 0u64;
    let mut left = false;

    while sim.clock.now_us() < fc.duration_us {
        let now = sim.clock.now_us();
        while join_at.last().is_some_and(|&at| at <= now) {
            join_at.pop();
            let ordinal = sim.participant_count();
            let idx = sim.add_participant(
                relay,
                Layout::Original,
                clean,
                clean,
                joiner_seed(fc.seed, ordinal),
            );
            log.push(format!("{now} join {idx}"));
        }
        if let Some(at) = fc.leave_half_at_us {
            if !left && now >= at {
                left = true;
                for idx in 0..fc.joiners / 2 {
                    sim.remove_participant(idx);
                    log.push(format!("{now} leave {idx}"));
                }
            }
        }
        if now < fc.workload_until_us {
            workload.tick(sim.ah.desktop_mut(), &mut rng);
        }
        sim.step(fc.tick_us);
        if sim.clock.now_us().saturating_sub(last_check_us) >= fc.check_interval_us {
            let r = sim.obs().health_check(sim.clock.now_us());
            log.push(format!("{} health {}", r.at_us, r.overall.as_str()));
            reports.push(r);
            last_check_us = sim.clock.now_us();
        }
    }
    let r = sim.obs().health_check(sim.clock.now_us());
    log.push(format!("{} health {}", r.at_us, r.overall.as_str()));
    reports.push(r);

    violations.extend(evaluate_expectations(&fc.expectations, &reports));
    let worst = reports
        .iter()
        .map(|r| r.overall)
        .max()
        .unwrap_or(HealthStatus::Ok);
    let active: Vec<usize> = (0..sim.participant_count())
        .filter(|&i| sim.is_active(i))
        .collect();
    let converged = active.iter().all(|&i| sim.converged(i));

    let outcome = ScenarioOutcome {
        name: "flash_crowd".to_string(),
        seed: fc.seed,
        passed: violations.is_empty(),
        violations,
        reports,
        log,
        worst,
        converged,
        active_participants: active.len(),
    };
    if let Some(dir) = &fc.dump_dir {
        let _ = outcome.write_artifacts(dir);
    }
    (outcome, sim)
}
