//! Cascadable fan-out relay tier for application/desktop sharing.
//!
//! The draft's AH serves every participant directly; with many viewers the
//! AH's uplink becomes the bottleneck and every downstream loss event rides
//! all the way back to the source. A relay node breaks that coupling:
//!
//! * **Upstream** it subscribes exactly like one more remoting receiver —
//!   to the AH or to another relay, so relays cascade into a tree. The AH
//!   sees one leg regardless of how many participants sit below.
//! * **Downstream** it fans the reassembled remoting stream out to N legs
//!   (UDP, RFC 4571-framed TCP, or raw byte queues for embedding), each
//!   with its own pacer and freshest-frame supersede queue.
//! * **Generic NACKs** (§6 of the draft) terminate at the relay: a shared
//!   byte-budgeted [`RetransmitHistory`] keyed by upstream sequence answers
//!   them locally, a per-sequence suppression window collapses NACK storms
//!   from different legs into a single cache lookup, and only genuine cache
//!   misses escalate upstream (deduplicated within the same window).
//! * **PLIs** coalesce: at most one upstream PLI per refresh interval, and
//!   once the relay's own shadow state is synced a leg's PLI is served
//!   entirely locally as a catch-up burst — WindowManagerInfo plus a full
//!   `RegionUpdate` per window synthesized from the shadow copy — so late
//!   joiners never cost the AH a full refresh.
//!
//! Each leg gets its own contiguous RTP sequence space (rewritten from the
//! upstream numbers) so per-leg supersede drops never look like loss. For a
//! leg attached from the start of the stream the rewrite is the identity
//! and the forwarded RTP bytes are identical to direct delivery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod sim;

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use adshare_capture::{
    fnv1a_fold, CaptureHandle, Direction as CapDirection, StreamKind as CapStreamKind,
    Transport as CapTransport, FNV_OFFSET,
};
use adshare_codec::codec::{default_pt, AnyCodec, CodecKind, CodecRegistry};
use adshare_codec::image::{Image, Rect};
use adshare_codec::Codec;
use adshare_encode::EncodeConfig;
use adshare_layers::{
    LayersConfig, LegTierStats, TierEncoder, TierRequest, TierSelector, TierStats,
};
use adshare_netsim::tcp::{TcpConfig, TcpLink};
use adshare_netsim::udp::{LinkConfig, UdpChannel};
use adshare_obs::{EventKind, Obs, ACTOR_LEG_BASE, ACTOR_RELAY};
use adshare_rate::{FreshQueue, QualityTier, RateController};
use adshare_remoting::fragment::{fragment, FragmentPacket};
use adshare_remoting::packetizer::RemotingDepacketizer;
use adshare_remoting::{
    MousePointerInfo, RegionUpdate, RemotingMessage, WindowId, WindowManagerInfo, WindowRecord,
};
use adshare_rtp::history::RetransmitHistory;
use adshare_rtp::reorder::ReorderBuffer;
use adshare_rtp::rtcp::{
    decode_compound, encode_compound, GenericNack, PictureLossIndication, ReceiverReport,
    RtcpPacket, SourceDescription,
};
use adshare_rtp::session::RtpReceiver;
use adshare_rtp::{framing, RtpHeader, RtpPacket};

/// Schema marker for [`RelayNode::stats_json`].
pub const RELAY_STATS_SCHEMA: &str = "adshare-relay-stats/v1";

/// How many leg-sequence→upstream-sequence mappings each leg retains for
/// NACK translation (matches the default retransmit-cache depth).
const SEQ_MAP_LIMIT: usize = 4096;

/// Relay tuning knobs.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Retransmit-cache packet-count budget.
    pub cache_max_packets: usize,
    /// Retransmit-cache byte budget.
    pub cache_max_bytes: usize,
    /// Suppression window: a sequence retransmitted (or escalated) within
    /// this many µs is served from the recent-retransmit copy / silently
    /// dropped instead of costing another cache lookup or upstream NACK.
    pub suppression_window_us: u64,
    /// Minimum spacing between upstream PLIs (and between catch-up bursts
    /// to the same leg).
    pub pli_min_interval_us: u64,
    /// Max RTP payload size for synthesized catch-up packets.
    pub mtu: usize,
    /// Serve late-joiner PLIs from the shadow state instead of escalating.
    pub catchup_enabled: bool,
    /// Relay-side gap timeout: after this many [`RelayNode::step`] calls
    /// with the reorder buffer stuck on the same hole, skip it and request
    /// an upstream refresh.
    pub gap_timeout_steps: u32,
    /// Layered-quality configuration. `None` (the default) disables tier
    /// selection entirely: every leg forwards verbatim, byte-identical to
    /// the pre-layers relay. `Some` arms a per-leg AIMD tier controller
    /// that re-encodes from the shadow state when a subtree cannot afford
    /// the upstream tier.
    pub layers: Option<LayersConfig>,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            cache_max_packets: 4096,
            cache_max_bytes: 8 << 20,
            suppression_window_us: 100_000,
            pli_min_interval_us: 500_000,
            mtu: 1400,
            catchup_enabled: true,
            gap_timeout_steps: 40,
            layers: None,
        }
    }
}

/// Aggregate relay counters (also exported as `relay.*` metrics and as
/// flight-recorder events when an [`Obs`] is attached).
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayStats {
    /// Remoting messages forwarded downstream (per leg).
    pub forwarded_msgs: u64,
    /// RTP packets forwarded downstream.
    pub forwarded_packets: u64,
    /// Wire bytes forwarded downstream (RTP only).
    pub forwarded_bytes: u64,
    /// Queued messages dropped because fresher content superseded them.
    pub superseded_msgs: u64,
    /// Generic NACK messages received from legs.
    pub nacks_received: u64,
    /// NACKed sequences answered locally (cache, suppression copy, or
    /// catch-up packet).
    pub nacks_absorbed_seqs: u64,
    /// Subset of absorbed sequences served from the suppression-window
    /// copy without touching the cache.
    pub nacks_suppressed_seqs: u64,
    /// Upstream Generic NACK messages sent because of leg cache misses.
    pub nacks_escalated: u64,
    /// Sequences carried by those escalated NACKs.
    pub seqs_escalated: u64,
    /// Upstream NACKs from the relay's own reorder-gap detection.
    pub upstream_gap_nacks: u64,
    /// PLIs received from legs.
    pub plis_received: u64,
    /// PLIs actually sent upstream (join, resync, escalation).
    pub plis_upstream: u64,
    /// Leg PLIs answered without an upstream PLI (coalesced or served from
    /// the shadow state).
    pub plis_coalesced: u64,
    /// Catch-up bursts synthesized for late joiners.
    pub catchups_served: u64,
    /// Wire bytes in those bursts.
    pub catchup_bytes: u64,
}

impl RelayStats {
    /// Total upstream recovery messages (gap NACKs + escalated NACKs).
    /// Zero under purely downstream loss — the property E18 asserts.
    pub fn upstream_nacks(&self) -> u64 {
        self.upstream_gap_nacks + self.nacks_escalated
    }
}

/// One reassembled remoting unit (all RTP packets of one message) or a
/// verbatim upstream RTCP datagram, queued per leg behind one `Rc` so the
/// fan-out never copies payload bytes.
enum Unit {
    /// RTP packets carrying exactly one remoting message.
    Media(Vec<RtpPacket>),
    /// An upstream RTCP compound (sender reports) forwarded byte-for-byte,
    /// queued in-line so downstream sees the same interleaving as direct
    /// delivery.
    Rtcp(Vec<u8>),
    /// A locally re-encoded rendition of one region update for legs whose
    /// active tier is lossier than the upstream stream. Fragments only —
    /// RTP headers are minted per leg at flush time so each leg keeps its
    /// own contiguous sequence space.
    Synth(Vec<FragmentPacket>),
}

/// Downstream transport of one leg.
enum LegTransport {
    /// Simulated UDP link.
    Udp(UdpChannel),
    /// RFC 4571-framed reliable byte stream (simulated TCP). The leg's
    /// tier controller reads the link's send-buffer backlog as its §7
    /// congestion signal, so TCP legs degrade tiers instead of stalling.
    Tcp(TcpLink),
    /// Raw queue for embedding in real I/O loops (the demo binary): the
    /// caller ships the bytes itself.
    Raw(VecDeque<Vec<u8>>),
}

struct Leg {
    transport: LegTransport,
    queue: FreshQueue<Rc<Unit>>,
    rate: RateController,
    /// Next downstream sequence number; `None` until the first forwarded
    /// packet pins it to that packet's upstream sequence (identity rewrite).
    next_seq: Option<u16>,
    /// leg seq → upstream seq, for translating leg NACKs.
    seq_map: HashMap<u16, u16>,
    seq_log: VecDeque<u16>,
    /// Synthesized catch-up packets by leg seq (for repairing burst loss).
    catchup: HashMap<u16, RtpPacket>,
    last_catchup_us: Option<u64>,
    /// A departed viewer (churn): the leg stops participating in fan-out
    /// and feedback but keeps its slot so other legs' indices stay stable.
    closed: bool,
    /// Layered-quality state; `None` when the relay runs without layers.
    tier: Option<LegTier>,
    /// Running FNV-1a digest of every datagram sent on this leg, folded at
    /// the transport boundary. E20's parity gate compares a lossless leg's
    /// digest against the no-layers baseline.
    digest: u64,
}

/// Per-leg layered-quality state: an adaptive AIMD estimator fed by the
/// leg's own RTCP (RRs, NACKs) or TCP backlog, and the dwell-gated tier
/// selector it drives. Lives beside — never instead of — the leg's fixed
/// pacer: while the active tier is lossless the leg flushes on the fixed
/// budget and forwards verbatim, so the wire is bit-identical to a relay
/// without layers.
struct LegTier {
    rate: RateController,
    selector: TierSelector,
    verbatim_msgs: u64,
    synth_msgs: u64,
    synth_bytes: u64,
}

impl Leg {
    fn alloc_seq(&mut self, upstream_seq: u16) -> u16 {
        let seq = self.next_seq.unwrap_or(upstream_seq);
        self.next_seq = Some(seq.wrapping_add(1));
        seq
    }

    /// Ship one datagram on the leg's transport, folding the wire digest.
    /// TCP legs frame per RFC 4571 and drop (digest untouched) when the
    /// send buffer cannot take the whole frame — the backlog signal has
    /// already told the tier controller to slow down.
    fn send(&mut self, bytes: &[u8], now_us: u64) {
        match &mut self.transport {
            LegTransport::Udp(ch) => {
                self.digest = fnv1a_fold(self.digest, bytes);
                ch.send(now_us, bytes);
            }
            LegTransport::Tcp(link) => {
                let Ok(framed) = framing::frame(bytes) else {
                    return;
                };
                if link.can_accept(now_us, framed.len()) {
                    self.digest = fnv1a_fold(self.digest, bytes);
                    link.send(now_us, &framed);
                }
            }
            LegTransport::Raw(q) => {
                self.digest = fnv1a_fold(self.digest, bytes);
                q.push_back(bytes.to_vec());
            }
        }
    }

    /// Record a synthesized packet so leg NACKs for it are answered from
    /// the local copy (it has no upstream sequence to escalate to).
    fn note_synth_seq(&mut self, leg_seq: u16, pkt: RtpPacket) {
        self.seq_map.remove(&leg_seq);
        self.catchup.insert(leg_seq, pkt);
        self.seq_log.push_back(leg_seq);
        while self.seq_log.len() > SEQ_MAP_LIMIT {
            if let Some(old) = self.seq_log.pop_front() {
                self.seq_map.remove(&old);
                self.catchup.remove(&old);
            }
        }
    }

    fn map_seq(&mut self, leg_seq: u16, upstream_seq: u16) {
        // The 16-bit leg sequence space wraps: if a live stream reuses a
        // number an old catch-up burst once occupied, the stale synthesized
        // packet must not shadow the fresh mapping (a NACK for the reused
        // seq would replay stale pixels).
        self.catchup.remove(&leg_seq);
        self.seq_map.insert(leg_seq, upstream_seq);
        self.seq_log.push_back(leg_seq);
        while self.seq_log.len() > SEQ_MAP_LIMIT {
            if let Some(old) = self.seq_log.pop_front() {
                self.seq_map.remove(&old);
                self.catchup.remove(&old);
            }
        }
    }
}

/// A window in the relay's shadow of the shared desktop, mirrored from the
/// upstream remoting stream with exactly the participant's apply semantics.
struct ShadowWindow {
    ah_rect: Rect,
    group: u8,
    content: Image,
}

/// What one completed remoting unit means for the per-leg queues.
#[derive(Clone, Copy)]
enum UnitClass {
    /// A region update: supersedable under `(window, epoch)`.
    Region { window: u16, rect: Rect },
    /// Everything else: ordering barrier, never superseded.
    Barrier,
}

/// The relay node: one upstream subscription, N downstream legs.
pub struct RelayNode {
    cfg: RelayConfig,
    /// The relay's own RTCP identity.
    ssrc: u32,
    id: u16,
    // Upstream receive path.
    receiver: RtpReceiver,
    reorder: ReorderBuffer,
    depacketizer: RemotingDepacketizer,
    cache: RetransmitHistory,
    unit_pkts: Vec<RtpPacket>,
    media_ssrc: u32,
    media_pt: u8,
    last_media_ts: u32,
    // Shadow desktop state.
    codecs: CodecRegistry,
    windows: HashMap<u16, ShadowWindow>,
    z_order: Vec<u16>,
    pointer: Option<MousePointerInfo>,
    synced: bool,
    /// Bumped on every barrier unit; scopes supersede keys so a queue
    /// never drops a region update across a WMI/Move boundary.
    epoch: u64,
    unit_counter: u64,
    // Downstream.
    legs: Vec<Leg>,
    // Layered quality.
    /// Shadow-state re-encoder, present when `cfg.layers` is set. Tiles
    /// are cached per `(content_hash, dims, tier)` so a static region
    /// costs one encode per tier regardless of leg count.
    tier_encoder: Option<TierEncoder>,
    /// Tier currently requested from (and assumed served by) upstream.
    upstream_tier: QualityTier,
    /// Pending upstream downgrade and when it was first wanted (dwell).
    upstream_desired_since: Option<(QualityTier, u64)>,
    tier_requests_sent: u64,
    // Upstream feedback.
    rtcp_out: Vec<RtcpPacket>,
    last_pli_ticks: u64,
    last_rr_ticks: u64,
    last_upstream_pli_us: Option<u64>,
    sent_join_pli: bool,
    // Suppression state.
    recent_retx: HashMap<u16, (u64, RtpPacket)>,
    recent_escalated: HashMap<u16, u64>,
    // Gap timeout.
    stuck_steps: u32,
    last_held: usize,
    // Observability.
    obs: Option<Obs>,
    stats: RelayStats,
    /// Consent-gated wire capture: upstream ingress is recorded as `Rx`
    /// (actor [`ACTOR_RELAY`]), leg egress as `Tx` (per-leg actor).
    capture: Option<CaptureHandle>,
}

fn is_rtcp(datagram: &[u8]) -> bool {
    datagram.len() >= 2 && (200..=206).contains(&datagram[1])
}

fn ticks_of(now_us: u64) -> u64 {
    now_us * 9 / 100
}

impl RelayNode {
    /// A fresh relay. `id` distinguishes cascaded relays in CNAMEs, SSRCs
    /// and metric prefixes.
    pub fn new(cfg: RelayConfig, id: u16) -> Self {
        let cache = RetransmitHistory::new(cfg.cache_max_packets, cfg.cache_max_bytes);
        let tier_encoder = cfg.layers.as_ref().map(|_| {
            TierEncoder::new(
                EncodeConfig {
                    workers: 1,
                    ..EncodeConfig::default()
                },
                default_pt::PNG,
                default_pt::DCT,
            )
        });
        RelayNode {
            cfg,
            ssrc: 0x5245_0000 | u32::from(id),
            id,
            receiver: RtpReceiver::new(),
            reorder: ReorderBuffer::new(256),
            depacketizer: RemotingDepacketizer::new(),
            cache,
            unit_pkts: Vec::new(),
            media_ssrc: 0,
            media_pt: 0,
            last_media_ts: 0,
            codecs: CodecRegistry::default(),
            windows: HashMap::new(),
            z_order: Vec::new(),
            pointer: None,
            synced: false,
            epoch: 0,
            unit_counter: 0,
            legs: Vec::new(),
            tier_encoder,
            upstream_tier: QualityTier::Lossless,
            upstream_desired_since: None,
            tier_requests_sent: 0,
            rtcp_out: Vec::new(),
            last_pli_ticks: 0,
            last_rr_ticks: 0,
            last_upstream_pli_us: None,
            sent_join_pli: false,
            recent_retx: HashMap::new(),
            recent_escalated: HashMap::new(),
            stuck_steps: 0,
            last_held: 0,
            obs: None,
            stats: RelayStats::default(),
            capture: None,
        }
    }

    /// Attach an armed capture sink; the relay tap points write through it
    /// with the caller-supplied `now_us` virtual clock.
    pub fn attach_capture(&mut self, capture: CaptureHandle) {
        self.capture = Some(capture);
    }

    /// Attach observability: flight-recorder events plus `relay.{id}.*`
    /// cache metrics and a leg-count gauge.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.cache
            .register_metrics(&obs.registry, &format!("relay.{}.retx_cache", self.id));
        obs.registry
            .gauge(&format!("relay.{}.legs", self.id))
            .set(self.active_leg_count() as i64);
        self.obs = Some(obs);
        for leg_idx in 0..self.legs.len() {
            self.register_leg_tier_metrics(leg_idx);
        }
    }

    fn rec(&self, now_us: u64, actor: u16, kind: EventKind, a: u64, b: u64) {
        if let Some(obs) = &self.obs {
            obs.event(now_us, actor, kind, a, b);
        }
    }

    fn leg_actor(leg: usize) -> u16 {
        ACTOR_LEG_BASE | leg as u16
    }

    /// The relay's RTCP SSRC.
    pub fn ssrc(&self) -> u32 {
        self.ssrc
    }

    /// Whether the shadow state has seen a WindowManagerInfo.
    pub fn synced(&self) -> bool {
        self.synced
    }

    /// Number of downstream legs.
    pub fn leg_count(&self) -> usize {
        self.legs.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// Retransmit-cache (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Queue the join PLI, exactly as a participant's `request_refresh`.
    pub fn subscribe(&mut self, now_us: u64) {
        self.push_upstream_pli(now_us);
        self.sent_join_pli = true;
    }

    fn push_upstream_pli(&mut self, now_us: u64) {
        self.rtcp_out.push(RtcpPacket::Pli(PictureLossIndication {
            sender_ssrc: self.ssrc,
            media_ssrc: self.media_ssrc,
        }));
        self.last_upstream_pli_us = Some(now_us);
        self.stats.plis_upstream += 1;
        self.rec(
            now_us,
            ACTOR_RELAY,
            EventKind::PliSent,
            self.stats.plis_upstream,
            0,
        );
    }

    /// Add a downstream leg over a simulated UDP link. Returns the leg id.
    pub fn add_leg_udp(&mut self, link: LinkConfig, seed: u64, rate_bps: Option<u64>) -> usize {
        self.add_leg(LegTransport::Udp(UdpChannel::new(link, seed)), rate_bps)
    }

    /// Add a raw-queue leg: forwarded datagrams pile up for the caller to
    /// ship (the demo binary's real sockets). Returns the leg id.
    pub fn add_leg_raw(&mut self, rate_bps: Option<u64>) -> usize {
        self.add_leg(LegTransport::Raw(VecDeque::new()), rate_bps)
    }

    /// Add an RFC 4571-framed TCP leg over a simulated reliable stream.
    /// The same tier controller drives it, fed by send-buffer backlog
    /// instead of RTCP loss. Returns the leg id.
    pub fn add_leg_tcp(&mut self, tcp: TcpConfig, rate_bps: Option<u64>) -> usize {
        self.add_leg(LegTransport::Tcp(TcpLink::new(tcp)), rate_bps)
    }

    fn add_leg(&mut self, transport: LegTransport, rate_bps: Option<u64>) -> usize {
        let tier = self.cfg.layers.as_ref().map(|l| LegTier {
            // The adaptive controller only *observes* (it meters the leg's
            // affordable rate and picks a tier); the fixed `rate` below
            // stays the flush budget while the tier is lossless, keeping
            // the verbatim path byte-identical to a relay without layers.
            rate: RateController::new_adaptive(l.rate, rate_bps, self.cfg.mtu),
            selector: TierSelector::new(l.selector),
            verbatim_msgs: 0,
            synth_msgs: 0,
            synth_bytes: 0,
        });
        self.legs.push(Leg {
            transport,
            queue: FreshQueue::new(),
            rate: RateController::new_fixed(rate_bps, self.cfg.mtu),
            next_seq: None,
            seq_map: HashMap::new(),
            seq_log: VecDeque::new(),
            catchup: HashMap::new(),
            last_catchup_us: None,
            closed: false,
            tier,
            digest: FNV_OFFSET,
        });
        self.update_leg_gauge();
        let leg_idx = self.legs.len() - 1;
        if self.obs.is_some() {
            self.register_leg_tier_metrics(leg_idx);
        }
        leg_idx
    }

    /// Export the leg's tier-controller gauges as `relay.{id}.leg.{n}.*`;
    /// the `.tier` gauge feeds the health engine's tier rule.
    fn register_leg_tier_metrics(&mut self, leg_idx: usize) {
        let Some(obs) = &self.obs else {
            return;
        };
        if let Some(t) = self.legs[leg_idx].tier.as_mut() {
            t.rate
                .register_metrics(&obs.registry, &format!("relay.{}.leg.{}", self.id, leg_idx));
        }
    }

    fn update_leg_gauge(&self) {
        if let Some(obs) = &self.obs {
            obs.registry
                .gauge(&format!("relay.{}.legs", self.id))
                .set(self.active_leg_count() as i64);
        }
    }

    /// Close a leg when its viewer leaves: drop its queue, repair state and
    /// seq maps, and stop including it in fan-out and feedback. The slot
    /// stays so other legs keep their indices; closing twice is a no-op.
    pub fn close_leg(&mut self, leg: usize) {
        let Some(l) = self.legs.get_mut(leg) else {
            return;
        };
        if l.closed {
            return;
        }
        l.closed = true;
        l.queue = FreshQueue::new();
        l.seq_map.clear();
        l.seq_log.clear();
        l.catchup.clear();
        self.update_leg_gauge();
    }

    /// Whether a leg has been closed.
    pub fn leg_closed(&self, leg: usize) -> bool {
        self.legs.get(leg).is_some_and(|l| l.closed)
    }

    /// Number of open (not closed) legs.
    pub fn active_leg_count(&self) -> usize {
        self.legs.iter().filter(|l| !l.closed).count()
    }

    /// The UDP channel behind a leg, when it has one (tests use this to
    /// inject deterministic loss and read link stats).
    pub fn leg_link_mut(&mut self, leg: usize) -> Option<&mut UdpChannel> {
        match self.legs.get_mut(leg)?.transport {
            LegTransport::Udp(ref mut ch) => Some(ch),
            _ => None,
        }
    }

    /// Immutable view of a leg's UDP channel.
    pub fn leg_link(&self, leg: usize) -> Option<&UdpChannel> {
        match self.legs.get(leg)?.transport {
            LegTransport::Udp(ref ch) => Some(ch),
            _ => None,
        }
    }

    /// The TCP link behind a leg, when it has one.
    pub fn leg_tcp_mut(&mut self, leg: usize) -> Option<&mut TcpLink> {
        match self.legs.get_mut(leg)?.transport {
            LegTransport::Tcp(ref mut link) => Some(link),
            _ => None,
        }
    }

    /// Running FNV-1a digest of every datagram shipped on a leg. A
    /// lossless leg's digest matches a no-layers relay's bit-exactly.
    pub fn leg_wire_digest(&self, leg: usize) -> u64 {
        self.legs.get(leg).map_or(FNV_OFFSET, |l| l.digest)
    }

    /// The leg's active quality tier (`None` when layers are disabled).
    pub fn leg_tier(&self, leg: usize) -> Option<QualityTier> {
        self.legs
            .get(leg)?
            .tier
            .as_ref()
            .map(|t| t.selector.active())
    }

    /// Tier currently requested from upstream.
    pub fn upstream_tier(&self) -> QualityTier {
        self.upstream_tier
    }

    /// Ingest one upstream datagram (RTP or rtcp-muxed RTCP).
    pub fn ingest_upstream(&mut self, datagram: &[u8], now_us: u64) {
        if let Some(cap) = &self.capture {
            let kind = if is_rtcp(datagram) {
                CapStreamKind::Rtcp
            } else {
                CapStreamKind::Rtp
            };
            cap.record(
                CapDirection::Rx,
                kind,
                CapTransport::Udp,
                ACTOR_RELAY,
                now_us,
                datagram,
            );
        }
        if is_rtcp(datagram) {
            // Sender reports anchor downstream playout clocks; forward the
            // compound byte-for-byte, in stream order through the queues.
            let unit = Rc::new(Unit::Rtcp(datagram.to_vec()));
            let bytes = datagram.len() as u64;
            self.unit_counter += 1;
            let key = (1u64 << 63) | self.unit_counter;
            for leg in self.legs.iter_mut().filter(|l| !l.closed) {
                leg.queue
                    .push(key, Rect::new(0, 0, 0, 0), now_us, bytes, unit.clone());
            }
            return;
        }
        let Ok(pkt) = RtpPacket::decode(datagram) else {
            return;
        };
        self.media_ssrc = pkt.header.ssrc;
        self.media_pt = pkt.header.payload_type;
        self.last_media_ts = pkt.header.timestamp;
        self.receiver.on_packet(&pkt, ticks_of(now_us));
        self.reorder.ingest(pkt);
        self.drain_ready(now_us);
        let missing = self.reorder.take_missing();
        if !missing.is_empty() {
            self.stats.upstream_gap_nacks += 1;
            self.rec(
                now_us,
                ACTOR_RELAY,
                EventKind::NackSent,
                missing.len() as u64,
                u64::from(missing[0]),
            );
            self.rtcp_out.push(RtcpPacket::Nack(GenericNack::from_seqs(
                self.ssrc,
                self.media_ssrc,
                &missing,
            )));
        }
    }

    fn drain_ready(&mut self, now_us: u64) {
        while let Some(pkt) = self.reorder.pop_ready() {
            // Record at pop time: pop order is sequence-monotonic, which
            // the history's binary search requires (arrival order is not).
            self.cache.record(pkt.clone());
            self.unit_pkts.push(pkt.clone());
            match self.depacketizer.feed(&pkt) {
                Ok(Some(msg)) => {
                    let pkts = std::mem::take(&mut self.unit_pkts);
                    self.complete_unit(msg, pkts, now_us);
                }
                Ok(None) => {}
                Err(_) => {
                    self.depacketizer.reset();
                    self.unit_pkts.clear();
                }
            }
        }
    }

    /// Mirror one remoting message into the shadow state and classify it
    /// for the supersede queues.
    fn apply_shadow(&mut self, msg: &RemotingMessage) -> UnitClass {
        match msg {
            RemotingMessage::WindowManagerInfo(wmi) => {
                self.synced = true;
                let ids: Vec<u16> = wmi.windows.iter().map(|w| w.window_id.0).collect();
                self.windows.retain(|id, _| ids.contains(id));
                self.z_order = ids;
                for w in &wmi.windows {
                    let rect = Rect::new(w.left, w.top, w.width.max(1), w.height.max(1));
                    match self.windows.get_mut(&w.window_id.0) {
                        Some(existing) => {
                            existing.ah_rect = rect;
                            existing.group = w.group_id;
                            if existing.content.width() != rect.width
                                || existing.content.height() != rect.height
                            {
                                let mut grown =
                                    Image::filled(rect.width, rect.height, [0, 0, 0, 255])
                                        .expect("window dims bounded");
                                grown.blit(&existing.content, 0, 0);
                                existing.content = grown;
                            }
                        }
                        None => {
                            self.windows.insert(
                                w.window_id.0,
                                ShadowWindow {
                                    ah_rect: rect,
                                    group: w.group_id,
                                    content: Image::filled(rect.width, rect.height, [0, 0, 0, 255])
                                        .expect("window dims bounded"),
                                },
                            );
                        }
                    }
                }
                self.epoch += 1;
                UnitClass::Barrier
            }
            RemotingMessage::RegionUpdate(ru) => {
                let decoded = self
                    .codecs
                    .get(ru.payload_type)
                    .and_then(|c| c.decode(&ru.payload).ok());
                let (Some(img), Some(win)) = (decoded, self.windows.get_mut(&ru.window_id.0))
                else {
                    // Unknown window or undecodable payload: forward it, but
                    // give it barrier semantics so it is never superseded.
                    return UnitClass::Barrier;
                };
                let lx = ru.left.saturating_sub(win.ah_rect.left);
                let ly = ru.top.saturating_sub(win.ah_rect.top);
                win.content.blit(&img, lx, ly);
                UnitClass::Region {
                    window: ru.window_id.0,
                    rect: Rect::new(ru.left, ru.top, img.width(), img.height()),
                }
            }
            RemotingMessage::MoveRectangle(mv) => {
                if let Some(win) = self.windows.get_mut(&mv.window_id.0) {
                    let src = Rect::new(
                        mv.src_left.saturating_sub(win.ah_rect.left),
                        mv.src_top.saturating_sub(win.ah_rect.top),
                        mv.width,
                        mv.height,
                    );
                    let dst_left = mv.dst_left.saturating_sub(win.ah_rect.left);
                    let dst_top = mv.dst_top.saturating_sub(win.ah_rect.top);
                    win.content.move_rect(src, dst_left, dst_top);
                }
                // A move reads content written by earlier region updates, so
                // nothing queued before it may be superseded away after it.
                self.epoch += 1;
                UnitClass::Barrier
            }
            RemotingMessage::MousePointerInfo(mp) => {
                // Keep the last pointer message (resolving "keep previous
                // icon" against the stored one) for catch-up replay.
                let replay = match (&mp.image, &self.pointer) {
                    (None, Some(prev)) => MousePointerInfo {
                        image: prev.image.clone(),
                        payload_type: prev.payload_type,
                        ..mp.clone()
                    },
                    _ => mp.clone(),
                };
                self.pointer = Some(replay);
                UnitClass::Barrier
            }
        }
    }

    fn complete_unit(&mut self, msg: RemotingMessage, pkts: Vec<RtpPacket>, now_us: u64) {
        let class = self.apply_shadow(&msg);
        let bytes: u64 = pkts.iter().map(|p| p.wire_len() as u64).sum();
        let unit = Rc::new(Unit::Media(pkts));
        self.unit_counter += 1;
        let barrier_key = (1u64 << 63) | self.unit_counter;
        // Re-encode once per tier any open lossy leg needs — never per leg;
        // legs at the same tier share one Rc'd synth unit, and the tile
        // cache means a repeated region costs zero further encodes.
        let mut synth: Vec<(QualityTier, Rc<Unit>, u64)> = Vec::new();
        if let (UnitClass::Region { window, rect }, true) = (class, self.tier_encoder.is_some()) {
            let mut tiers: Vec<QualityTier> = self
                .legs
                .iter()
                .filter(|l| !l.closed)
                .filter_map(|l| l.tier.as_ref().map(|t| t.selector.active()))
                .filter(|t| t.is_lossy() && *t > self.upstream_tier)
                .collect();
            tiers.sort();
            tiers.dedup();
            for tier in tiers {
                if let Some((u, b)) = self.synth_unit(window, rect, tier) {
                    synth.push((tier, u, b));
                }
            }
        }
        let upstream_tier = self.upstream_tier;
        for leg in self.legs.iter_mut().filter(|l| !l.closed) {
            match class {
                UnitClass::Region { window, rect } => {
                    // Epoch-scoped key: supersede only reaches back to the
                    // last barrier, never across a WMI/Move.
                    let key = (u64::from(window) << 40) | (self.epoch & 0xFF_FFFF_FFFF);
                    let dropped = leg.queue.supersede(key, rect, now_us);
                    if dropped > 0 {
                        self.stats.superseded_msgs += dropped as u64;
                        leg.rate.note_superseded(dropped);
                    }
                    let chosen = leg
                        .tier
                        .as_ref()
                        .map(|t| t.selector.active())
                        .filter(|t| t.is_lossy() && *t > upstream_tier)
                        .and_then(|t| synth.iter().find(|(st, _, _)| *st == t))
                        .map(|(_, u, b)| (u.clone(), *b));
                    match chosen {
                        Some((u, b)) => leg.queue.push(key, rect, now_us, b, u),
                        None => leg.queue.push(key, rect, now_us, bytes, unit.clone()),
                    }
                }
                UnitClass::Barrier => {
                    leg.queue.push(
                        barrier_key,
                        Rect::new(0, 0, 0, 0),
                        now_us,
                        bytes,
                        unit.clone(),
                    );
                }
            }
        }
    }

    /// Build the lossier rendition of one region from the shadow window:
    /// tile-cached re-encode, one `RegionUpdate` per tile, fragmented to
    /// the relay MTU. Returns `None` when the window vanished or nothing
    /// intersects it (the caller then forwards verbatim).
    fn synth_unit(
        &mut self,
        window: u16,
        rect: Rect,
        tier: QualityTier,
    ) -> Option<(Rc<Unit>, u64)> {
        let enc = self.tier_encoder.as_mut()?;
        let win = self.windows.get(&window)?;
        let local = Rect::new(
            rect.left.saturating_sub(win.ah_rect.left),
            rect.top.saturating_sub(win.ah_rect.top),
            rect.width,
            rect.height,
        );
        let mut frags: Vec<FragmentPacket> = Vec::new();
        let mut bytes = 0u64;
        for (pt, trect, payload) in enc.encode_region(&win.content, local, tier) {
            let msg = RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(window),
                payload_type: pt,
                left: win.ah_rect.left + trect.left,
                top: win.ah_rect.top + trect.top,
                payload,
            });
            let Ok(f) = fragment(&msg, self.cfg.mtu) else {
                continue;
            };
            for frag in f {
                bytes += frag.payload.len() as u64 + 12;
                frags.push(frag);
            }
        }
        if frags.is_empty() {
            return None;
        }
        Some((Rc::new(Unit::Synth(frags)), bytes))
    }

    /// Periodic work: relay-side gap timeout, leg flushes, upstream RTCP
    /// cadence, suppression-window pruning.
    pub fn step(&mut self, now_us: u64) {
        let held = self.reorder.held_len();
        if held > 0 && held == self.last_held {
            self.stuck_steps += 1;
            if self.stuck_steps >= self.cfg.gap_timeout_steps {
                if self.reorder.skip_gap() {
                    // The unit spanning the hole is unrecoverable; resync
                    // the depacketizer and ask upstream for a refresh.
                    self.depacketizer.reset();
                    self.unit_pkts.clear();
                    self.drain_ready(now_us);
                    self.maybe_upstream_pli(now_us, usize::MAX);
                }
                self.stuck_steps = 0;
            }
        } else {
            self.stuck_steps = 0;
        }
        self.last_held = self.reorder.held_len();

        if let Some(enc) = self.tier_encoder.as_mut() {
            enc.begin_frame();
        }
        for leg in 0..self.legs.len() {
            self.tick_leg_tier(leg, now_us);
            self.flush_leg(leg, now_us);
        }
        self.tick_upstream_tier(now_us);
        self.tick_feedback(now_us);

        let window = self.cfg.suppression_window_us;
        self.recent_retx
            .retain(|_, (at, _)| now_us.saturating_sub(*at) <= window);
        self.recent_escalated
            .retain(|_, at| now_us.saturating_sub(*at) <= window);
    }

    /// Advance one leg's tier controller: refresh the AIMD estimate (TCP
    /// legs also fold in send-buffer backlog), clamp the wanted tier to the
    /// published set, and commit dwell-gated switches. An upgrade back to
    /// lossless triggers a catch-up burst — the lossless-repair step that
    /// converges the leg to pixel-identical state after a lossy spell.
    fn tick_leg_tier(&mut self, leg_idx: usize, now_us: u64) {
        let Some(layers) = self.cfg.layers.as_ref() else {
            return;
        };
        let tiers = layers.tiers.clone();
        let leg = &mut self.legs[leg_idx];
        if leg.closed {
            return;
        }
        let Some(t) = leg.tier.as_mut() else {
            return;
        };
        if let LegTransport::Tcp(link) = &mut leg.transport {
            let capacity = link.config().send_buf;
            t.rate.on_backlog(link.backlog(now_us), capacity, now_us);
        }
        t.rate.flush_budget(now_us);
        let want = tiers.clamp(t.rate.tier());
        let Some(sw) = t.selector.observe(want, now_us) else {
            return;
        };
        let (from, to) = (sw.from, sw.to);
        self.rec(
            now_us,
            Self::leg_actor(leg_idx),
            EventKind::TierSwitch,
            to.as_gauge() as u64,
            from.as_gauge() as u64,
        );
        if to == QualityTier::Lossless && self.synced && self.cfg.catchup_enabled {
            self.serve_catchup(leg_idx, now_us);
        }
    }

    /// Aggregate the least-lossy tier any open leg needs and, when
    /// `subscribe_upstream` is on, ask upstream to publish exactly that:
    /// upgrades (a leg recovered) go out immediately, downgrades dwell so
    /// one flappy leg does not degrade the whole subtree's source.
    fn tick_upstream_tier(&mut self, now_us: u64) {
        let Some(layers) = self.cfg.layers.as_ref() else {
            return;
        };
        if !layers.subscribe_upstream || !self.synced {
            return;
        }
        let desired = self
            .legs
            .iter()
            .filter(|l| !l.closed)
            .filter_map(|l| l.tier.as_ref().map(|t| t.selector.active()))
            .min()
            .unwrap_or(QualityTier::Lossless);
        let desired = layers.tiers.clamp(desired);
        if desired == self.upstream_tier {
            self.upstream_desired_since = None;
            return;
        }
        if desired < self.upstream_tier {
            self.send_tier_request(desired, now_us);
            return;
        }
        let dwell = layers.selector.min_dwell_us;
        match self.upstream_desired_since {
            Some((d, since)) if d == desired => {
                if now_us.saturating_sub(since) >= dwell {
                    self.send_tier_request(desired, now_us);
                }
            }
            _ => self.upstream_desired_since = Some((desired, now_us)),
        }
    }

    fn send_tier_request(&mut self, tier: QualityTier, now_us: u64) {
        self.upstream_tier = tier;
        self.upstream_desired_since = None;
        self.tier_requests_sent += 1;
        self.rtcp_out.push(
            TierRequest {
                ssrc: self.ssrc,
                tier,
            }
            .to_rtcp(),
        );
        self.rec(
            now_us,
            ACTOR_RELAY,
            EventKind::TierRequest,
            tier.as_gauge() as u64,
            1,
        );
    }

    fn flush_leg(&mut self, leg_idx: usize, now_us: u64) {
        let media_pt = self.media_pt;
        let media_ts = self.last_media_ts;
        let media_ssrc = self.media_ssrc;
        let leg = &mut self.legs[leg_idx];
        if leg.closed {
            return;
        }
        // While the active tier is lossless the fixed pacer is the budget
        // (verbatim, baseline-identical wire). A lossy tier hands the
        // flush budget to the adaptive controller, so the leg gets pacing
        // and freshest-frame supersede matched to what it can afford.
        let budget = match leg.tier.as_mut() {
            Some(t) if t.selector.active().is_lossy() => t.rate.flush_budget(now_us),
            _ => leg.rate.flush_budget(now_us),
        };
        let units = leg.queue.pop_budget(budget);
        leg.rate.note_queue(leg.queue.len(), leg.queue.bytes());
        if let Some(t) = leg.tier.as_mut() {
            t.rate.note_queue(leg.queue.len(), leg.queue.bytes());
        }
        if units.is_empty() {
            return;
        }
        let cap_transport = match leg.transport {
            LegTransport::Udp(_) => CapTransport::Udp,
            LegTransport::Tcp(_) => CapTransport::Tcp,
            LegTransport::Raw(_) => CapTransport::None,
        };
        let mut events = Vec::new();
        for q in units {
            match &*q.payload {
                Unit::Rtcp(bytes) => {
                    let out = bytes.clone();
                    leg.rate.consume(out.len() as u64);
                    if let Some(cap) = &self.capture {
                        cap.record(
                            CapDirection::Tx,
                            CapStreamKind::Rtcp,
                            cap_transport,
                            Self::leg_actor(leg_idx),
                            now_us,
                            &out,
                        );
                    }
                    leg.send(&out, now_us);
                }
                Unit::Media(pkts) => {
                    let mut msg_bytes = 0u64;
                    let mut last_up = 0u16;
                    let mut last_leg_seq = 0u16;
                    for pkt in pkts {
                        let leg_seq = leg.alloc_seq(pkt.header.sequence);
                        leg.map_seq(leg_seq, pkt.header.sequence);
                        let mut out = pkt.clone();
                        out.header.sequence = leg_seq;
                        let encoded = out.encode();
                        msg_bytes += encoded.len() as u64;
                        if let Some(cap) = &self.capture {
                            cap.record(
                                CapDirection::Tx,
                                CapStreamKind::Rtp,
                                cap_transport,
                                Self::leg_actor(leg_idx),
                                now_us,
                                &encoded,
                            );
                        }
                        leg.send(&encoded, now_us);
                        last_up = pkt.header.sequence;
                        last_leg_seq = leg_seq;
                    }
                    leg.rate.consume(msg_bytes);
                    if let Some(t) = leg.tier.as_mut() {
                        t.rate.consume(msg_bytes);
                        t.verbatim_msgs += 1;
                    }
                    self.stats.forwarded_msgs += 1;
                    self.stats.forwarded_packets += pkts.len() as u64;
                    self.stats.forwarded_bytes += msg_bytes;
                    let pkts_and_bytes = ((pkts.len() as u64) << 32) | (msg_bytes & 0xFFFF_FFFF);
                    events.push((EventKind::RelayForward, u64::from(last_up), pkts_and_bytes));
                    // Also record a generic RtpTx so existing health rules
                    // (loss denominator) see relay egress.
                    events.push((EventKind::RtpTx, u64::from(last_leg_seq), pkts_and_bytes));
                }
                Unit::Synth(frags) => {
                    // Mint this leg's RTP headers here so its sequence
                    // space stays contiguous across verbatim and synth
                    // units; the packets land in the leg's catch-up map so
                    // NACKs repair locally (there is no upstream sequence).
                    let mut msg_bytes = 0u64;
                    let mut last_leg_seq = 0u16;
                    for frag in frags {
                        let seq = leg.alloc_seq(0);
                        let mut header = RtpHeader::new(media_pt, seq, media_ts, media_ssrc);
                        header.marker = frag.marker;
                        let pkt = RtpPacket::new(header, frag.payload.clone());
                        let encoded = pkt.encode();
                        msg_bytes += encoded.len() as u64;
                        leg.note_synth_seq(seq, pkt);
                        if let Some(cap) = &self.capture {
                            cap.record(
                                CapDirection::Tx,
                                CapStreamKind::Rtp,
                                cap_transport,
                                Self::leg_actor(leg_idx),
                                now_us,
                                &encoded,
                            );
                        }
                        leg.send(&encoded, now_us);
                        last_leg_seq = seq;
                    }
                    leg.rate.consume(msg_bytes);
                    if let Some(t) = leg.tier.as_mut() {
                        t.rate.consume(msg_bytes);
                        t.synth_msgs += 1;
                        t.synth_bytes += msg_bytes;
                    }
                    self.stats.forwarded_msgs += 1;
                    self.stats.forwarded_packets += frags.len() as u64;
                    self.stats.forwarded_bytes += msg_bytes;
                    let pkts_and_bytes = ((frags.len() as u64) << 32) | (msg_bytes & 0xFFFF_FFFF);
                    events.push((
                        EventKind::RelayForward,
                        u64::from(last_leg_seq),
                        pkts_and_bytes,
                    ));
                    events.push((EventKind::RtpTx, u64::from(last_leg_seq), pkts_and_bytes));
                }
            }
        }
        for (kind, a, b) in events {
            self.rec(now_us, Self::leg_actor(leg_idx), kind, a, b);
        }
    }

    /// Drain datagrams delivered to one leg (UDP: link-delayed; TCP: the
    /// next in-order stream chunk, RFC 4571 framed; raw: all forwarded
    /// bytes).
    pub fn poll_leg(&mut self, leg: usize, now_us: u64) -> Vec<Vec<u8>> {
        match &mut self.legs[leg].transport {
            LegTransport::Udp(ch) => ch.poll(now_us),
            LegTransport::Tcp(link) => {
                let chunk = link.recv(now_us);
                if chunk.is_empty() {
                    Vec::new()
                } else {
                    vec![chunk]
                }
            }
            LegTransport::Raw(q) => q.drain(..).collect(),
        }
    }

    /// Feed RTCP from a downstream leg (NACK/PLI; reports are informational).
    pub fn handle_leg_rtcp(&mut self, leg: usize, bytes: &[u8], now_us: u64) {
        if self.legs.get(leg).map_or(true, |l| l.closed) {
            // Straggler feedback from a departed viewer must not trigger
            // repairs or upstream escalation.
            return;
        }
        let Ok(packets) = decode_compound(bytes) else {
            return;
        };
        for pkt in packets {
            match pkt {
                RtcpPacket::Nack(nack) => {
                    let seqs = nack.lost_seqs();
                    self.handle_leg_nack(leg, &seqs, now_us);
                }
                RtcpPacket::Pli(_) => self.handle_leg_pli(leg, now_us),
                RtcpPacket::ReceiverReport(rr) => {
                    // The leg's loss reports drive its tier estimator, the
                    // same §7 signal the AH's own controller consumes.
                    if let Some(t) = self.legs[leg].tier.as_mut() {
                        if let Some(block) = rr.reports.first() {
                            t.rate.on_report(block.fraction_lost, now_us);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn handle_leg_nack(&mut self, leg_idx: usize, lost: &[u16], now_us: u64) {
        self.stats.nacks_received += 1;
        if let Some(t) = self.legs[leg_idx].tier.as_mut() {
            t.rate.on_nack(lost.len(), now_us);
        }
        self.rec(
            now_us,
            Self::leg_actor(leg_idx),
            EventKind::NackReceived,
            lost.len() as u64,
            lost.first().copied().map_or(0, u64::from),
        );
        let mut absorbed = 0u64;
        let mut first_absorbed = None;
        let mut escalate: Vec<u16> = Vec::new();
        let mut needs_catchup = false;
        for &leg_seq in lost {
            // Catch-up packets live outside the shared cache.
            let catchup_bytes = self.legs[leg_idx]
                .catchup
                .get(&leg_seq)
                .map(|pkt| pkt.encode());
            if let Some(encoded) = catchup_bytes {
                self.legs[leg_idx].send(&encoded, now_us);
                absorbed += 1;
                first_absorbed.get_or_insert(leg_seq);
                continue;
            }
            let Some(&up_seq) = self.legs[leg_idx].seq_map.get(&leg_seq) else {
                // Mapping pruned: too old to repair packet-by-packet.
                needs_catchup = true;
                continue;
            };
            // Suppression window: another leg just NACKed this sequence —
            // serve the retained copy without a second cache lookup.
            if let Some((at, pkt)) = self.recent_retx.get(&up_seq) {
                if now_us.saturating_sub(*at) <= self.cfg.suppression_window_us {
                    let mut out = pkt.clone();
                    out.header.sequence = leg_seq;
                    self.legs[leg_idx].send(&out.encode(), now_us);
                    self.stats.nacks_suppressed_seqs += 1;
                    absorbed += 1;
                    first_absorbed.get_or_insert(leg_seq);
                    continue;
                }
            }
            if let Some(pkt) = self.cache.lookup(up_seq) {
                let pkt = pkt.clone();
                self.rec(
                    now_us,
                    Self::leg_actor(leg_idx),
                    EventKind::RelayCacheHit,
                    u64::from(up_seq),
                    pkt.wire_len() as u64,
                );
                self.recent_retx.insert(up_seq, (now_us, pkt.clone()));
                let mut out = pkt;
                out.header.sequence = leg_seq;
                self.legs[leg_idx].send(&out.encode(), now_us);
                absorbed += 1;
                first_absorbed.get_or_insert(leg_seq);
            } else {
                self.rec(
                    now_us,
                    Self::leg_actor(leg_idx),
                    EventKind::RelayCacheMiss,
                    u64::from(up_seq),
                    0,
                );
                escalate.push(up_seq);
            }
        }
        if absorbed > 0 {
            self.stats.nacks_absorbed_seqs += absorbed;
            self.rec(
                now_us,
                Self::leg_actor(leg_idx),
                EventKind::RelayNackAbsorbed,
                absorbed,
                first_absorbed.map_or(0, u64::from),
            );
        }
        escalate.retain(|s| !self.recent_escalated.contains_key(s));
        if !escalate.is_empty() {
            for &s in &escalate {
                self.recent_escalated.insert(s, now_us);
            }
            self.stats.nacks_escalated += 1;
            self.stats.seqs_escalated += escalate.len() as u64;
            self.rec(
                now_us,
                Self::leg_actor(leg_idx),
                EventKind::RelayNackEscalated,
                escalate.len() as u64,
                u64::from(escalate[0]),
            );
            self.rtcp_out.push(RtcpPacket::Nack(GenericNack::from_seqs(
                self.ssrc,
                self.media_ssrc,
                &escalate,
            )));
        }
        if needs_catchup {
            self.handle_leg_pli(leg_idx, now_us);
        }
    }

    fn handle_leg_pli(&mut self, leg_idx: usize, now_us: u64) {
        self.stats.plis_received += 1;
        self.rec(
            now_us,
            Self::leg_actor(leg_idx),
            EventKind::PliReceived,
            self.stats.plis_received,
            0,
        );
        if self.synced && self.cfg.catchup_enabled {
            let due = self.legs[leg_idx].last_catchup_us.map_or(true, |at| {
                now_us.saturating_sub(at) >= self.cfg.pli_min_interval_us
            });
            if due {
                self.serve_catchup(leg_idx, now_us);
            }
            self.stats.plis_coalesced += 1;
            self.rec(
                now_us,
                ACTOR_RELAY,
                EventKind::RelayPliCoalesced,
                0,
                leg_idx as u64,
            );
        } else {
            self.maybe_upstream_pli(now_us, leg_idx);
        }
    }

    /// Send an upstream PLI unless one went out within the refresh
    /// interval; record whether it was coalesced.
    fn maybe_upstream_pli(&mut self, now_us: u64, leg_idx: usize) {
        let due = self.last_upstream_pli_us.map_or(true, |at| {
            now_us.saturating_sub(at) >= self.cfg.pli_min_interval_us
        });
        if due {
            self.push_upstream_pli(now_us);
            self.rec(
                now_us,
                ACTOR_RELAY,
                EventKind::RelayPliCoalesced,
                1,
                leg_idx as u64,
            );
        } else {
            self.stats.plis_coalesced += 1;
            self.rec(
                now_us,
                ACTOR_RELAY,
                EventKind::RelayPliCoalesced,
                0,
                leg_idx as u64,
            );
        }
    }

    /// Synthesize a full catch-up burst for one leg from the shadow state:
    /// WindowManagerInfo, one full-window RegionUpdate per window in
    /// z-order, and the last pointer message. The upstream is not involved.
    fn serve_catchup(&mut self, leg_idx: usize, now_us: u64) {
        let mut msgs: Vec<RemotingMessage> = Vec::with_capacity(self.z_order.len() + 2);
        msgs.push(RemotingMessage::WindowManagerInfo(WindowManagerInfo {
            windows: self
                .z_order
                .iter()
                .filter_map(|id| {
                    self.windows.get(id).map(|w| WindowRecord {
                        window_id: WindowId(*id),
                        group_id: w.group,
                        left: w.ah_rect.left,
                        top: w.ah_rect.top,
                        width: w.ah_rect.width,
                        height: w.ah_rect.height,
                    })
                })
                .collect(),
        }));
        let png = AnyCodec::new(CodecKind::Png);
        for id in &self.z_order {
            let Some(w) = self.windows.get(id) else {
                continue;
            };
            msgs.push(RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(*id),
                payload_type: default_pt::PNG,
                left: w.ah_rect.left,
                top: w.ah_rect.top,
                payload: png.encode(&w.content).into(),
            }));
        }
        if let Some(mp) = &self.pointer {
            msgs.push(RemotingMessage::MousePointerInfo(mp.clone()));
        }

        let leg = &mut self.legs[leg_idx];
        // Everything still queued is already reflected in the snapshot;
        // delivering it after the burst would double-apply moves.
        leg.queue = FreshQueue::new();
        // A fresh burst obsoletes any previous one.
        leg.catchup.clear();
        let mut burst_pkts = 0u64;
        let mut burst_bytes = 0u64;
        for msg in &msgs {
            let Ok(frags) = fragment(msg, self.cfg.mtu) else {
                continue;
            };
            for frag in frags {
                let seq = leg.alloc_seq(0);
                let mut header =
                    RtpHeader::new(self.media_pt, seq, self.last_media_ts, self.media_ssrc);
                header.marker = frag.marker;
                let pkt = RtpPacket::new(header, frag.payload);
                let encoded = pkt.encode();
                burst_pkts += 1;
                burst_bytes += encoded.len() as u64;
                leg.catchup.insert(seq, pkt);
                // The burst IS the refresh: bypass the pacer.
                leg.send(&encoded, now_us);
            }
        }
        leg.last_catchup_us = Some(now_us);
        self.stats.catchups_served += 1;
        self.stats.catchup_bytes += burst_bytes;
        self.rec(
            now_us,
            Self::leg_actor(leg_idx),
            EventKind::RelayCatchupServed,
            burst_pkts,
            burst_bytes,
        );
    }

    /// Upstream feedback cadence, mirroring a participant's: re-PLI every
    /// second while unsynced, RR+SDES every ~2 s once media flows.
    fn tick_feedback(&mut self, now_us: u64) {
        let ticks = ticks_of(now_us);
        const RESYNC_INTERVAL_TICKS: u64 = 90_000;
        if !self.synced
            && self.sent_join_pli
            && ticks.saturating_sub(self.last_pli_ticks) >= RESYNC_INTERVAL_TICKS
        {
            self.push_upstream_pli(now_us);
            self.last_pli_ticks = ticks;
        }
        const RR_INTERVAL_TICKS: u64 = 90_000 * 2;
        if self.receiver.received() > 0
            && ticks.saturating_sub(self.last_rr_ticks) >= RR_INTERVAL_TICKS
        {
            let block = self.receiver.report_block(self.media_ssrc);
            self.rtcp_out
                .push(RtcpPacket::ReceiverReport(ReceiverReport {
                    ssrc: self.ssrc,
                    reports: vec![block],
                }));
            self.rtcp_out
                .push(RtcpPacket::Sdes(SourceDescription::cname(
                    self.ssrc,
                    &format!("relay-{}@adshare", self.id),
                )));
            self.last_rr_ticks = ticks;
        }
    }

    /// Take outbound upstream RTCP compound bytes.
    pub fn take_upstream_rtcp(&mut self) -> Option<Vec<u8>> {
        if self.rtcp_out.is_empty() {
            return None;
        }
        let packets = std::mem::take(&mut self.rtcp_out);
        Some(encode_compound(&packets))
    }

    /// RFC 4571 framing of a forwarded datagram, for TCP legs managed by
    /// the caller (the demo binary).
    pub fn frame_for_tcp(bytes: &[u8]) -> Option<Vec<u8>> {
        framing::frame(bytes).ok()
    }

    /// Layered-quality snapshot (`adshare-relay-tier-stats/v1`); legs is
    /// empty when layers are disabled.
    pub fn tier_stats(&mut self, now_us: u64) -> TierStats {
        TierStats {
            relay_id: self.id as usize,
            upstream_tier: self.upstream_tier.as_gauge() as u8,
            tier_requests: self.tier_requests_sent,
            legs: self
                .legs
                .iter_mut()
                .enumerate()
                .filter_map(|(i, leg)| {
                    leg.tier.as_mut().map(|t| LegTierStats {
                        leg: i,
                        tier: t.selector.active().as_gauge() as u8,
                        switches: t.selector.switches(),
                        downgrades: t.selector.downgrades(),
                        verbatim_msgs: t.verbatim_msgs,
                        synth_msgs: t.synth_msgs,
                        synth_bytes: t.synth_bytes,
                        est_rate_bps: t.rate.rate_bps(now_us).unwrap_or(0),
                    })
                })
                .collect(),
        }
    }

    /// Relay stats as a `adshare-relay-stats/v1` JSON document.
    pub fn stats_json(&self) -> String {
        let s = &self.stats;
        let (hits, misses) = self.cache.stats();
        format!(
            concat!(
                "{{\"schema\":\"{schema}\",\"legs\":{legs},\"synced\":{synced},",
                "\"forwarded\":{{\"msgs\":{fmsgs},\"packets\":{fpkts},\"bytes\":{fbytes},",
                "\"superseded\":{sup}}},",
                "\"cache\":{{\"hits\":{hits},\"misses\":{misses},\"packets\":{cpkts},",
                "\"bytes\":{cbytes}}},",
                "\"nack\":{{\"received\":{nrecv},\"absorbed_seqs\":{nabs},",
                "\"suppressed_seqs\":{nsup},\"escalated_msgs\":{nesc},",
                "\"escalated_seqs\":{sesc},\"upstream_gap_nacks\":{ngap}}},",
                "\"pli\":{{\"received\":{precv},\"upstream\":{pup},\"coalesced\":{pco}}},",
                "\"catchup\":{{\"served\":{cserved},\"bytes\":{csbytes}}}}}"
            ),
            schema = RELAY_STATS_SCHEMA,
            legs = self.legs.len(),
            synced = self.synced,
            fmsgs = s.forwarded_msgs,
            fpkts = s.forwarded_packets,
            fbytes = s.forwarded_bytes,
            sup = s.superseded_msgs,
            hits = hits,
            misses = misses,
            cpkts = self.cache.len(),
            cbytes = self.cache.bytes(),
            nrecv = s.nacks_received,
            nabs = s.nacks_absorbed_seqs,
            nsup = s.nacks_suppressed_seqs,
            nesc = s.nacks_escalated,
            sesc = s.seqs_escalated,
            ngap = s.upstream_gap_nacks,
            precv = s.plis_received,
            pup = s.plis_upstream,
            pco = s.plis_coalesced,
            cserved = s.catchups_served,
            csbytes = s.catchup_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adshare_remoting::packetizer::RemotingPacketizer;
    use adshare_rtp::session::RtpSender;
    use adshare_session::{Layout, Participant};
    use bytes::Bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window_msgs(fill: [u8; 4]) -> Vec<RemotingMessage> {
        let img = Image::filled(64, 48, fill).unwrap();
        let png = AnyCodec::new(CodecKind::Png);
        vec![
            RemotingMessage::WindowManagerInfo(WindowManagerInfo {
                windows: vec![WindowRecord {
                    window_id: WindowId(1),
                    group_id: 0,
                    left: 10,
                    top: 20,
                    width: 64,
                    height: 48,
                }],
            }),
            RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(1),
                payload_type: default_pt::PNG,
                left: 10,
                top: 20,
                payload: Bytes::from(png.encode(&img)),
            }),
        ]
    }

    fn feed_msgs(relay: &mut RelayNode, pktzr: &mut RemotingPacketizer, msgs: &[RemotingMessage]) {
        for msg in msgs {
            for pkt in pktzr.packetize(msg, 0).unwrap() {
                relay.ingest_upstream(&pkt.encode(), 0);
            }
        }
    }

    fn packetizer() -> RemotingPacketizer {
        let mut rng = StdRng::seed_from_u64(7);
        RemotingPacketizer::new(RtpSender::new(0xAAAA, 99, &mut rng), 1200)
    }

    #[test]
    fn lossless_leg_forwards_byte_identical_rtp() {
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        let leg = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        let mut sent: Vec<Vec<u8>> = Vec::new();
        for msg in window_msgs([10, 20, 30, 255]) {
            for pkt in pktzr.packetize(&msg, 0).unwrap() {
                let bytes = pkt.encode();
                relay.ingest_upstream(&bytes, 0);
                sent.push(bytes);
            }
        }
        relay.step(0);
        let forwarded = relay.poll_leg(leg, 0);
        assert_eq!(
            forwarded, sent,
            "identity seq rewrite must be bytewise lossless"
        );
        assert!(relay.synced());
    }

    #[test]
    fn rtcp_forwarded_in_stream_order() {
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        let leg = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        let msgs = window_msgs([1, 2, 3, 255]);
        let mut sent = Vec::new();
        for pkt in pktzr.packetize(&msgs[0], 0).unwrap() {
            let b = pkt.encode();
            relay.ingest_upstream(&b, 0);
            sent.push(b);
        }
        // A sender report lands between the two messages.
        let sr = encode_compound(&[RtcpPacket::ReceiverReport(ReceiverReport {
            ssrc: 1,
            reports: vec![],
        })]);
        relay.ingest_upstream(&sr, 0);
        sent.push(sr);
        for pkt in pktzr.packetize(&msgs[1], 0).unwrap() {
            let b = pkt.encode();
            relay.ingest_upstream(&b, 0);
            sent.push(b);
        }
        relay.step(0);
        assert_eq!(relay.poll_leg(leg, 0), sent, "RTCP keeps its interleaving");
    }

    #[test]
    fn nack_absorbed_from_cache_and_suppressed_for_second_leg() {
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        let leg_a = relay.add_leg_raw(None);
        let leg_b = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([9, 9, 9, 255]));
        relay.step(0);
        let out_a = relay.poll_leg(leg_a, 0);
        relay.poll_leg(leg_b, 0);
        assert!(out_a.len() >= 2);
        // Both legs lost the same (identity-rewritten) sequence.
        let lost = RtpPacket::decode(&out_a[1]).unwrap().header.sequence;
        let nack = encode_compound(&[RtcpPacket::Nack(GenericNack::from_seqs(1, 2, &[lost]))]);
        relay.handle_leg_rtcp(leg_a, &nack, 1_000);
        relay.handle_leg_rtcp(leg_b, &nack, 2_000);
        assert_eq!(relay.cache_stats(), (1, 0), "one lookup serves both legs");
        let s = relay.stats();
        assert_eq!(s.nacks_absorbed_seqs, 2);
        assert_eq!(s.nacks_suppressed_seqs, 1);
        assert_eq!(s.upstream_nacks(), 0);
        let repaired_a = relay.poll_leg(leg_a, 2_000);
        assert_eq!(repaired_a.len(), 1);
        assert_eq!(
            repaired_a[0], out_a[1],
            "retransmission is the original packet"
        );
        assert_eq!(relay.poll_leg(leg_b, 2_000).len(), 1);
    }

    #[test]
    fn cache_miss_escalates_upstream_once() {
        let mut relay = RelayNode::new(
            RelayConfig {
                cache_max_packets: 1,
                ..RelayConfig::default()
            },
            0,
        );
        let leg = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([4, 4, 4, 255]));
        relay.step(0);
        let out = relay.poll_leg(leg, 0);
        let evicted = RtpPacket::decode(&out[0]).unwrap().header.sequence;
        let nack = encode_compound(&[RtcpPacket::Nack(GenericNack::from_seqs(1, 2, &[evicted]))]);
        relay.handle_leg_rtcp(leg, &nack, 1_000);
        relay.handle_leg_rtcp(leg, &nack, 2_000); // deduped within the window
        let s = relay.stats();
        assert_eq!(s.nacks_escalated, 1, "second escalation suppressed");
        assert_eq!(s.seqs_escalated, 1);
        let upstream = relay.take_upstream_rtcp().expect("escalated NACK pending");
        let pkts = decode_compound(&upstream).unwrap();
        assert!(pkts
            .iter()
            .any(|p| matches!(p, RtcpPacket::Nack(n) if n.lost_seqs() == vec![evicted])));
    }

    #[test]
    fn late_joiner_catches_up_from_shadow_without_upstream_pli() {
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        relay.subscribe(0);
        relay.take_upstream_rtcp(); // drain the join PLI
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([50, 60, 70, 255]));
        relay.step(0);
        let plis_before = relay.stats().plis_upstream;

        let leg = relay.add_leg_raw(None);
        let pli = encode_compound(&[RtcpPacket::Pli(PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        })]);
        relay.handle_leg_rtcp(leg, &pli, 10_000);
        assert_eq!(relay.stats().plis_upstream, plis_before, "served locally");
        assert_eq!(relay.stats().catchups_served, 1);

        let mut joiner = Participant::new(7, Layout::Original, true, 3);
        for dg in relay.poll_leg(leg, 10_000) {
            joiner.handle_datagram(&dg, 0);
        }
        assert!(joiner.synced());
        let content = joiner.window_content(1).expect("window replicated");
        assert_eq!(content.width(), 64);
        let expected = Image::filled(64, 48, [50, 60, 70, 255]).unwrap();
        assert_eq!(content, &expected, "pixel-identical from the shadow");
    }

    #[test]
    fn second_pli_within_interval_is_coalesced_upstream() {
        let mut relay = RelayNode::new(
            RelayConfig {
                catchup_enabled: false,
                ..RelayConfig::default()
            },
            0,
        );
        let leg = relay.add_leg_raw(None);
        relay.subscribe(0);
        let pli = encode_compound(&[RtcpPacket::Pli(PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        })]);
        relay.handle_leg_rtcp(leg, &pli, 1_000);
        relay.handle_leg_rtcp(leg, &pli, 2_000);
        let s = relay.stats();
        assert_eq!(s.plis_received, 2);
        assert_eq!(s.plis_upstream, 1, "join PLI covers the interval");
        assert_eq!(s.plis_coalesced, 2);
    }

    #[test]
    fn supersede_never_crosses_a_move_barrier() {
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        // Throttled leg so units stay queued across several messages.
        let leg = relay.add_leg_raw(Some(8_000));
        let mut pktzr = packetizer();
        let png = AnyCodec::new(CodecKind::Png);
        let region = |fill: u8| {
            RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(1),
                payload_type: default_pt::PNG,
                left: 10,
                top: 20,
                payload: Bytes::from(
                    png.encode(&Image::filled(64, 48, [fill, 1, 1, 255]).unwrap()),
                ),
            })
        };
        let mut msgs = window_msgs([1, 1, 1, 255]);
        msgs.push(RemotingMessage::MoveRectangle(
            adshare_remoting::MoveRectangle {
                window_id: WindowId(1),
                src_left: 10,
                src_top: 20,
                width: 8,
                height: 8,
                dst_left: 30,
                dst_top: 30,
            },
        ));
        msgs.push(region(2));
        msgs.push(region(3));
        // Spread arrivals over time: supersede only drops strictly older
        // entries.
        for (i, msg) in msgs.iter().enumerate() {
            let now = i as u64 * 1_000;
            for pkt in pktzr.packetize(msg, 0).unwrap() {
                relay.ingest_upstream(&pkt.encode(), now);
            }
        }
        // region(3) supersedes region(2) (same window, same epoch) but must
        // not reach back past the MoveRectangle to the original update.
        assert_eq!(relay.stats().superseded_msgs, 1);
        // WMI + original region + move + region(3) remain queued.
        assert_eq!(relay.legs[leg].queue.len(), 4);
        assert_eq!(relay.legs[leg].queue.superseded(), 1);
    }

    #[test]
    fn seq_reuse_after_wrap_does_not_replay_stale_catchup() {
        // Regression: catch-up packets are kept per leg seq outside the
        // shared cache. When the 16-bit leg sequence space wraps around to
        // a number an old burst once used, a NACK for that seq used to be
        // answered with the stale synthesized packet instead of the live
        // stream's — replaying old pixels over fresh ones.
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        relay.subscribe(0);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([10, 20, 30, 255]));
        relay.step(0);
        let leg = relay.add_leg_raw(None);
        let pli = encode_compound(&[RtcpPacket::Pli(PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        })]);
        relay.handle_leg_rtcp(leg, &pli, 1_000);
        assert_eq!(relay.stats().catchups_served, 1);
        relay.poll_leg(leg, 1_000);
        let reused = *relay.legs[leg]
            .catchup
            .keys()
            .min()
            .expect("burst retained for repair");

        // Simulate the wrap: the live stream's next packet lands on a seq
        // the catch-up burst occupied.
        relay.legs[leg].next_seq = Some(reused);
        let png = AnyCodec::new(CodecKind::Png);
        let fresh_img = Image::filled(64, 48, [200, 10, 10, 255]).unwrap();
        feed_msgs(
            &mut relay,
            &mut pktzr,
            &[RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(1),
                payload_type: default_pt::PNG,
                left: 10,
                top: 20,
                payload: Bytes::from(png.encode(&fresh_img)),
            })],
        );
        relay.step(2_000);
        let flushed = relay.poll_leg(leg, 2_000);
        let fresh_wire = flushed
            .iter()
            .find(|dg| RtpPacket::decode(dg).ok().map(|p| p.header.sequence) == Some(reused))
            .expect("live stream reuses the seq")
            .clone();

        let nack = encode_compound(&[RtcpPacket::Nack(GenericNack::from_seqs(1, 2, &[reused]))]);
        relay.handle_leg_rtcp(leg, &nack, 3_000);
        let repaired = relay.poll_leg(leg, 3_000);
        assert_eq!(repaired.len(), 1);
        assert_eq!(
            repaired[0], fresh_wire,
            "NACK must be answered with the live packet, not the stale catch-up"
        );
    }

    #[test]
    fn closed_leg_stops_fanout_and_ignores_feedback() {
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        let keep = relay.add_leg_raw(None);
        let gone = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([3, 3, 3, 255]));
        relay.step(0);
        let before = relay.poll_leg(gone, 0);
        assert!(!before.is_empty(), "open leg received the fan-out");
        let lost = RtpPacket::decode(&before[0]).unwrap().header.sequence;

        relay.close_leg(gone);
        assert!(relay.leg_closed(gone));
        assert_eq!(relay.active_leg_count(), 1);
        relay.close_leg(gone); // idempotent

        // New traffic reaches only the surviving leg.
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([4, 4, 4, 255]));
        relay.step(1_000);
        assert!(relay.poll_leg(gone, 1_000).is_empty());
        assert!(!relay.poll_leg(keep, 1_000).is_empty());

        // Straggler feedback from the departed viewer is inert: no repair,
        // no escalation, no catch-up.
        let stats_before = relay.stats();
        let nack = encode_compound(&[RtcpPacket::Nack(GenericNack::from_seqs(1, 2, &[lost]))]);
        relay.handle_leg_rtcp(gone, &nack, 2_000);
        let pli = encode_compound(&[RtcpPacket::Pli(PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        })]);
        relay.handle_leg_rtcp(gone, &pli, 2_000);
        let stats_after = relay.stats();
        assert_eq!(stats_after.nacks_received, stats_before.nacks_received);
        assert_eq!(stats_after.plis_received, stats_before.plis_received);
        assert_eq!(stats_after.catchups_served, stats_before.catchups_served);
        assert!(relay.poll_leg(gone, 3_000).is_empty());
    }

    #[test]
    fn relay_stats_json_has_schema_marker() {
        let relay = RelayNode::new(RelayConfig::default(), 3);
        let json = relay.stats_json();
        assert!(json.starts_with("{\"schema\":\"adshare-relay-stats/v1\""));
        let parsed = adshare_obs::json::parse(&json).expect("valid JSON");
        let obj = parsed.as_object().unwrap();
        assert!(obj.contains_key("cache"));
        assert!(obj.contains_key("nack"));
        assert!(obj.contains_key("catchup"));
    }

    // ---- layered quality ----

    use adshare_layers::LayersConfig;
    use adshare_rate::RateConfig;

    /// Layers config whose estimator starts below the lossless threshold:
    /// the first tier tick commits a downgrade to Balanced.
    fn low_rate_layers() -> LayersConfig {
        let base = LayersConfig::default();
        LayersConfig {
            rate: RateConfig {
                initial_bps: 600_000,
                ..base.rate
            },
            ..base
        }
    }

    fn layered_cfg(layers: LayersConfig) -> RelayConfig {
        RelayConfig {
            layers: Some(layers),
            ..RelayConfig::default()
        }
    }

    #[test]
    fn lossless_layered_leg_digest_matches_no_layers_baseline() {
        let mut baseline = RelayNode::new(RelayConfig::default(), 0);
        // Default layers estimator starts at 8 Mb/s: the leg stays
        // lossless, so the wire must be bit-identical to layers-off.
        let mut layered = RelayNode::new(layered_cfg(LayersConfig::default()), 0);
        let bl = baseline.add_leg_raw(None);
        let ll = layered.add_leg_raw(None);
        for step in 0u64..4 {
            let mut pktzr_a = packetizer();
            let mut pktzr_b = packetizer();
            let msgs = window_msgs([step as u8, 20, 30, 255]);
            feed_msgs(&mut baseline, &mut pktzr_a, &msgs);
            feed_msgs(&mut layered, &mut pktzr_b, &msgs);
            let now = step * 10_000;
            baseline.step(now);
            layered.step(now);
        }
        assert_eq!(layered.leg_tier(ll), Some(QualityTier::Lossless));
        assert_eq!(
            baseline.leg_wire_digest(bl),
            layered.leg_wire_digest(ll),
            "lossless layered leg must be byte-identical to baseline"
        );
        let b = baseline.poll_leg(bl, 40_000);
        let l = layered.poll_leg(ll, 40_000);
        assert_eq!(b, l);
    }

    #[test]
    fn starved_leg_downgrades_and_receives_synth_rendition() {
        let mut relay = RelayNode::new(layered_cfg(low_rate_layers()), 0);
        let leg = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([10, 20, 30, 255]));
        relay.step(0);
        assert_eq!(relay.leg_tier(leg), Some(QualityTier::Balanced));
        // A fresh region after the downgrade must arrive re-encoded.
        let img = Image::filled(64, 48, [200, 40, 90, 255]).unwrap();
        let png = AnyCodec::new(CodecKind::Png);
        feed_msgs(
            &mut relay,
            &mut pktzr,
            &[RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(1),
                payload_type: default_pt::PNG,
                left: 10,
                top: 20,
                payload: Bytes::from(png.encode(&img)),
            })],
        );
        let mut depkt = RemotingDepacketizer::new();
        let mut got_dct = false;
        for step in 1u64..200 {
            let now = step * 10_000;
            relay.step(now);
            for dg in relay.poll_leg(leg, now) {
                let Ok(pkt) = RtpPacket::decode(&dg) else {
                    continue;
                };
                if let Ok(Some(RemotingMessage::RegionUpdate(ru))) = depkt.feed(&pkt) {
                    if ru.payload_type == default_pt::DCT {
                        got_dct = true;
                    }
                }
            }
        }
        assert!(got_dct, "starved leg should receive a DCT re-encode");
        let stats = relay.tier_stats(2_000_000);
        assert_eq!(stats.legs.len(), 1);
        assert!(stats.legs[0].synth_msgs >= 1);
        assert!(stats.legs[0].downgrades >= 1);
    }

    #[test]
    fn subtree_degradation_requests_lower_upstream_tier() {
        let mut layers = low_rate_layers();
        layers.subscribe_upstream = true;
        let mut relay = RelayNode::new(layered_cfg(layers), 0);
        relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([1, 2, 3, 255]));
        let mut requested = None;
        for step in 0u64..120 {
            let now = step * 10_000;
            relay.step(now);
            if let Some(bytes) = relay.take_upstream_rtcp() {
                for pkt in decode_compound(&bytes).unwrap() {
                    if let Some(req) = TierRequest::from_rtcp(&pkt) {
                        requested = Some(req.tier);
                    }
                }
            }
        }
        assert_eq!(requested, Some(QualityTier::Balanced));
        assert_eq!(relay.upstream_tier(), QualityTier::Balanced);
        assert!(relay.tier_stats(0).tier_requests >= 1);
    }

    #[test]
    fn recovery_upgrades_to_lossless_and_serves_catchup() {
        let mut relay = RelayNode::new(layered_cfg(low_rate_layers()), 0);
        let leg = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([9, 9, 9, 255]));
        relay.step(0);
        assert_eq!(relay.leg_tier(leg), Some(QualityTier::Balanced));
        let before = relay.stats().catchups_served;
        // Loss-free time accrues additive increase; eventually the
        // estimate re-crosses the lossless threshold (with hysteresis)
        // and the upgrade converges the leg with a catch-up burst.
        let mut now = 0;
        for step in 1u64..1200 {
            now = step * 10_000;
            relay.step(now);
            relay.poll_leg(leg, now);
        }
        assert_eq!(relay.leg_tier(leg), Some(QualityTier::Lossless));
        assert!(
            relay.stats().catchups_served > before,
            "upgrade to lossless must serve a repair burst"
        );
        let stats = relay.tier_stats(now);
        assert!(stats.legs[0].switches >= 2);
    }

    #[test]
    fn tcp_leg_forwards_framed_stream() {
        let mut relay = RelayNode::new(RelayConfig::default(), 0);
        let leg = relay.add_leg_tcp(
            adshare_netsim::tcp::TcpConfig {
                rate_bps: 10_000_000,
                delay_us: 1_000,
                send_buf: 256 * 1024,
            },
            None,
        );
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([5, 6, 7, 255]));
        relay.step(0);
        let mut stream = Vec::new();
        for step in 1u64..200 {
            for chunk in relay.poll_leg(leg, step * 10_000) {
                stream.extend_from_slice(&chunk);
            }
        }
        assert!(!stream.is_empty());
        let mut deframer = framing::Deframer::new(65_535);
        deframer.push(&stream);
        let mut frames = 0;
        while let Ok(Some(frame)) = deframer.pop() {
            assert!(RtpPacket::decode(&frame).is_ok() || is_rtcp(&frame));
            frames += 1;
        }
        assert!(frames >= 2, "expected framed RTP on the TCP leg");
    }

    #[test]
    fn nack_for_synth_seq_is_repaired_locally() {
        let mut relay = RelayNode::new(layered_cfg(low_rate_layers()), 0);
        let leg = relay.add_leg_raw(None);
        let mut pktzr = packetizer();
        feed_msgs(&mut relay, &mut pktzr, &window_msgs([10, 20, 30, 255]));
        relay.step(0);
        let img = Image::filled(64, 48, [1, 2, 3, 255]).unwrap();
        let png = AnyCodec::new(CodecKind::Png);
        feed_msgs(
            &mut relay,
            &mut pktzr,
            &[RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(1),
                payload_type: default_pt::PNG,
                left: 10,
                top: 20,
                payload: Bytes::from(png.encode(&img)),
            })],
        );
        let mut synth_seqs = Vec::new();
        for step in 1u64..200 {
            let now = step * 10_000;
            relay.step(now);
            for dg in relay.poll_leg(leg, now) {
                if let Ok(pkt) = RtpPacket::decode(&dg) {
                    synth_seqs.push(pkt.header.sequence);
                }
            }
        }
        let seq = *synth_seqs.last().expect("leg saw packets");
        let before = relay.stats();
        let nack = encode_compound(&[RtcpPacket::Nack(GenericNack::from_seqs(
            0x1111,
            0x2222,
            &[seq],
        ))]);
        relay.handle_leg_rtcp(leg, &nack, 2_100_000);
        let after = relay.stats();
        assert!(after.nacks_absorbed_seqs > before.nacks_absorbed_seqs);
        assert_eq!(after.nacks_escalated, before.nacks_escalated);
        assert!(!relay.poll_leg(leg, 2_100_000).is_empty());
    }
}
