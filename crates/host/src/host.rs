//! The [`MultiHost`] readiness event loop and its scheduling policy.
//!
//! Scheduling is a binary heap of `(due_us, seq, session)` entries with
//! lazy invalidation: each slot remembers the due time it is currently
//! armed for, and stale heap entries (superseded by an earlier re-arm) are
//! skipped on pop. `seq` breaks ties FIFO so equal-due sessions are
//! serviced in arming order — the fairness property `tests/host_scale.rs`
//! proptests under skewed damage.
//!
//! The per-session policy itself lives in `Cadence`, shared verbatim
//! between the hosted loop and [`run_standalone`]: due times are a pure
//! function of the session's own state (its clock, its in-flight I/O, its
//! unflushed work), never of its neighbours. That is the whole parity
//! argument — a hosted session and a standalone session see identical
//! step instants, so they emit identical bytes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use adshare_capture::{decode_entries, encode_entries, CaptureError, WarmEntry};
use adshare_encode::{EncodePipeline, SharedEncodeCache, WorkerPool};
use adshare_obs::{Counter, Registry};
use adshare_screen::desktop::Desktop;
use adshare_session::{AhConfig, SessionDriver, SimSession};

use crate::stats::HostStats;

/// Namespace bit reserved for non-sharing tenants: bit 63 set means the
/// namespace is private to one session, and [`shared_namespace`] always
/// clears it, so the two key populations can never collide.
const PRIVATE_BIT: u64 = 1 << 63;

/// Host-level tunables.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Capture cadence for every hosted session (µs between desktop
    /// capture ticks while a session is active).
    pub capture_interval_us: u64,
    /// Byte budget of the process-wide shared encode cache.
    pub cache_budget_bytes: usize,
    /// Shard count for the shared cache (rounded up to a power of two).
    pub cache_shards: usize,
    /// Global encode worker budget; 0 = one per available core, capped
    /// at 8 (same resolution rule as `EncodeConfig::workers`).
    pub pool_workers: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            capture_interval_us: 16_000,
            cache_budget_bytes: 64 << 20,
            cache_shards: 16,
            pool_workers: 0,
        }
    }
}

/// Whether a session participates in the cross-session encode cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSharing {
    /// Share encoded tiles with every same-config session in the process.
    Shared,
    /// Consent-gated tenant: its cache entries live under a namespace no
    /// other session can ever look up.
    Private,
}

/// The cache namespace for sessions that opt into cross-session sharing.
///
/// Two sessions may share encoded bytes only if a cache hit in one is
/// byte-identical to the encode the other would have produced — i.e. only
/// if every configuration knob the encode closure depends on matches. The
/// namespace is a hash of exactly those knobs (codec choice and the
/// adaptive-codec classifier), so differently-configured sessions land in
/// disjoint namespaces automatically. Bit 63 is cleared; private sessions
/// set it, guaranteeing zero overlap between the populations.
pub fn shared_namespace(cfg: &AhConfig) -> u64 {
    let tag = format!("{:?}|{}", cfg.codec, cfg.adaptive_codec);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in tag.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h & !PRIVATE_BIT
}

/// A per-session application workload, invoked at each capture tick with
/// the session and the current virtual time. Return `false` when finished:
/// the host drops the workload and lets the session drain and park.
pub type Workload = Box<dyn FnMut(&mut SimSession, u64) -> bool + Send>;

/// The per-session scheduling policy — when is this session next due, and
/// what does servicing it at that instant mean. Shared verbatim between
/// [`MultiHost`] and [`run_standalone`] so hosted and standalone runs step
/// each session at identical virtual instants (the wire-parity invariant).
struct Cadence {
    interval_us: u64,
    next_capture_us: u64,
    /// Last serviced due time: the floor for the next one. Guarantees the
    /// loop makes progress even if a service leaves the session clock
    /// unmoved.
    last_due_us: u64,
}

impl Cadence {
    fn starting_at(now_us: u64, interval_us: u64) -> Self {
        Cadence {
            interval_us,
            next_capture_us: now_us + interval_us,
            last_due_us: now_us,
        }
    }

    /// The next instant this session needs service, or `None` to park.
    ///
    /// Active sessions (live workload, or unflushed damage/pacer/repair
    /// work) are due at their next capture tick; anything in flight on a
    /// link is due when it becomes deliverable — whichever is sooner. Due
    /// times are strictly increasing.
    fn next_due(&self, sess: &SimSession, workload_live: bool) -> Option<u64> {
        let now = sess.clock.now_us().max(self.last_due_us);
        let busy = workload_live || sess.ah.has_pending();
        let capture = busy.then(|| self.next_capture_us.max(now + 1));
        let io = sess.next_due_us().map(|d| d.max(now + 1));
        match (capture, io) {
            (Some(c), Some(i)) => Some(c.min(i)),
            (c, i) => c.or(i),
        }
    }

    /// Service the session at `due_us`: run the workload if this lands on
    /// a capture tick (so its damage is captured by the very step that
    /// follows), then advance the session's world to `due_us`.
    fn service(&mut self, sess: &mut SimSession, due_us: u64, workload: &mut Option<Workload>) {
        if due_us >= self.next_capture_us {
            if let Some(wl) = workload.as_mut() {
                if !wl(sess, due_us) {
                    *workload = None;
                }
            }
            while self.next_capture_us <= due_us {
                self.next_capture_us += self.interval_us;
            }
        }
        sess.drive_to(due_us);
        self.last_due_us = due_us;
    }
}

/// Run one session standalone under the exact scheduling policy
/// [`MultiHost`] applies — the comparator for wire-byte parity tests.
///
/// Virtual time starts at the session's current clock and runs until no
/// due instant at or before `t_end_us` remains.
pub fn run_standalone(
    sess: &mut SimSession,
    capture_interval_us: u64,
    t_end_us: u64,
    mut workload: Option<Workload>,
) {
    let mut cadence = Cadence::starting_at(sess.clock.now_us(), capture_interval_us);
    while let Some(due) = cadence.next_due(sess, workload.is_some()) {
        if due > t_end_us {
            break;
        }
        cadence.service(sess, due, &mut workload);
    }
}

struct Slot {
    sess: SimSession,
    cadence: Cadence,
    workload: Option<Workload>,
    /// The due time this slot is currently armed for in the heap; heap
    /// entries carrying any other due are stale and skipped on pop.
    armed_due: Option<u64>,
    steps: Counter,
    cpu_us: Counter,
}

/// A multi-tenant session host: N independent sharing sessions behind one
/// shared encode cache, one bounded worker pool, and one readiness-driven
/// event loop.
pub struct MultiHost {
    cfg: HostConfig,
    cache: Arc<SharedEncodeCache>,
    pool: WorkerPool,
    registry: Registry,
    slots: Vec<Slot>,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    now_us: u64,
    services: Counter,
    wall_us: Counter,
}

impl MultiHost {
    /// Create an empty host: the shared cache and worker pool exist from
    /// the start, sessions attach to them as they are added.
    pub fn new(cfg: HostConfig) -> Self {
        let workers = if cfg.pool_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            cfg.pool_workers
        };
        let cache = Arc::new(SharedEncodeCache::new(
            cfg.cache_budget_bytes,
            cfg.cache_shards,
        ));
        let registry = Registry::new();
        let services = registry.counter("host.services");
        let wall_us = registry.counter("host.wall_us");
        MultiHost {
            cache,
            pool: WorkerPool::new(workers),
            registry,
            slots: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now_us: 0,
            services,
            wall_us,
            cfg,
        }
    }

    /// Host-level tunables this host was built with.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The process-wide shared encode cache.
    pub fn cache(&self) -> &Arc<SharedEncodeCache> {
        &self.cache
    }

    /// The global bounded worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Host-level metrics registry (`host.*` counters and gauges).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Latest virtual instant the host has serviced.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of hosted sessions.
    pub fn session_count(&self) -> usize {
        self.slots.len()
    }

    /// Add a session. Its encode pipeline is rebuilt around the host's
    /// shared cache (under the namespace `sharing` dictates) and global
    /// worker pool; everything else about the session is untouched. The
    /// session is armed for its first capture tick one interval from the
    /// host's current time.
    pub fn add_session(
        &mut self,
        desktop: Desktop,
        cfg: AhConfig,
        seed: u64,
        sharing: CacheSharing,
    ) -> usize {
        let idx = self.slots.len();
        let namespace = match sharing {
            CacheSharing::Shared => shared_namespace(&cfg),
            CacheSharing::Private => PRIVATE_BIT | idx as u64,
        };
        let pipeline = EncodePipeline::with_shared(
            cfg.encode,
            namespace,
            Arc::clone(&self.cache),
            self.pool.clone(),
        );
        let sess = SimSession::new_with_pipeline(desktop, cfg, seed, pipeline);
        let steps = self.registry.counter(&format!("host.session.{idx}.steps"));
        let cpu_us = self.registry.counter(&format!("host.session.{idx}.cpu_us"));
        self.slots.push(Slot {
            sess,
            cadence: Cadence::starting_at(self.now_us, self.cfg.capture_interval_us),
            workload: None,
            armed_due: None,
            steps,
            cpu_us,
        });
        self.arm(idx, self.now_us + self.cfg.capture_interval_us);
        idx
    }

    /// Serialize the hottest `max` shared-cache entries of `namespace` as
    /// an `adshare-cachewarm/v1` warm file — what the host persists when a
    /// sharing session ends so a re-share of the same surface starts warm.
    /// Tenant-scoped: entries of other namespaces are never exported. The
    /// `capture.warm_exported_entries` / `capture.warm_exported_bytes`
    /// gauges report what was written.
    pub fn export_warm(&self, namespace: u64, max: usize) -> Vec<u8> {
        let entries: Vec<WarmEntry> = self
            .cache
            .export_namespace(namespace, max)
            .into_iter()
            .map(|(key, payload_type, payload)| WarmEntry {
                key,
                payload_type,
                payload,
            })
            .collect();
        let bytes = encode_entries(&entries);
        self.registry
            .gauge("capture.warm_exported_entries")
            .set(entries.len() as i64);
        self.registry
            .gauge("capture.warm_exported_bytes")
            .set(bytes.len() as i64);
        bytes
    }

    /// Pre-warm the shared cache from a warm file before a re-share under
    /// `namespace`. Entries carrying any other namespace are rejected by
    /// the cache (a warm file is tenant-scoped), and a corrupt file is an
    /// error, not a partial load. Returns how many entries were accepted;
    /// the `capture.prewarm_entries` gauge reports the same number.
    pub fn prewarm(&self, namespace: u64, warm_file: &[u8]) -> Result<usize, CaptureError> {
        let entries = decode_entries(warm_file)?;
        let triples: Vec<_> = entries
            .into_iter()
            .map(|e| (e.key, e.payload_type, e.payload))
            .collect();
        let loaded = self.cache.preload(namespace, &triples);
        self.registry
            .gauge("capture.prewarm_entries")
            .set(loaded as i64);
        Ok(loaded)
    }

    /// Install (or replace) a session's workload and wake it.
    pub fn set_workload<F>(&mut self, idx: usize, workload: F)
    where
        F: FnMut(&mut SimSession, u64) -> bool + Send + 'static,
    {
        self.slots[idx].workload = Some(Box::new(workload));
        self.wake(idx);
    }

    /// Shared access to a hosted session.
    pub fn session(&self, idx: usize) -> &SimSession {
        &self.slots[idx].sess
    }

    /// Mutable access to a hosted session (e.g. to add participants or
    /// mutate its desktop directly). Call [`wake`](MultiHost::wake)
    /// afterwards if the mutation created work for a parked session.
    pub fn session_mut(&mut self, idx: usize) -> &mut SimSession {
        &mut self.slots[idx].sess
    }

    /// Re-evaluate a session's due time and (re-)arm it. Idempotent; a
    /// no-op for sessions that are genuinely idle.
    pub fn wake(&mut self, idx: usize) {
        let slot = &self.slots[idx];
        if let Some(due) = slot.cadence.next_due(&slot.sess, slot.workload.is_some()) {
            self.arm(idx, due);
        }
    }

    /// Total services (event-loop steps) a session has received.
    pub fn session_steps(&self, idx: usize) -> u64 {
        self.slots[idx].steps.get()
    }

    /// Accumulated host CPU spent servicing a session (µs, wall-measured).
    pub fn session_cpu_us(&self, idx: usize) -> u64 {
        self.slots[idx].cpu_us.get()
    }

    /// Sessions currently armed in the event loop (not parked).
    pub fn active_sessions(&self) -> usize {
        self.slots.iter().filter(|s| s.armed_due.is_some()).count()
    }

    fn arm(&mut self, idx: usize, due: u64) {
        let slot = &mut self.slots[idx];
        if slot.armed_due.is_some_and(|d| d <= due) {
            return; // already armed at least as early
        }
        slot.armed_due = Some(due);
        self.seq += 1;
        self.queue.push(Reverse((due, self.seq, idx)));
    }

    /// Drive every hosted session's virtual world forward to `t_end_us`,
    /// servicing sessions strictly in due-time order (FIFO among ties).
    /// Sessions with nothing due — no workload, no unflushed work, nothing
    /// in flight — cost nothing.
    pub fn run_until(&mut self, t_end_us: u64) {
        let wall = Instant::now();
        while let Some(&Reverse((due, _seq, idx))) = self.queue.peek() {
            if due > t_end_us {
                break;
            }
            self.queue.pop();
            let slot = &mut self.slots[idx];
            if slot.armed_due != Some(due) {
                continue; // stale entry superseded by a re-arm
            }
            slot.armed_due = None;
            let t0 = Instant::now();
            slot.cadence
                .service(&mut slot.sess, due, &mut slot.workload);
            slot.cpu_us.add(t0.elapsed().as_micros() as u64);
            slot.steps.inc();
            self.services.inc();
            self.now_us = self.now_us.max(due);
            let next = slot.cadence.next_due(&slot.sess, slot.workload.is_some());
            if let Some(next) = next {
                self.arm(idx, next);
            }
        }
        self.now_us = self.now_us.max(t_end_us);
        self.wall_us.add(wall.elapsed().as_micros() as u64);
    }

    /// Snapshot host-level statistics (also refreshes the `host.sessions`
    /// and `host.active_sessions` gauges in the registry).
    pub fn stats(&self) -> HostStats {
        self.registry
            .gauge("host.sessions")
            .set(self.slots.len() as i64);
        self.registry
            .gauge("host.active_sessions")
            .set(self.active_sessions() as i64);
        let (mut steps_min, mut steps_max) = (u64::MAX, 0);
        let mut cpu_total = 0;
        let mut codec_cpu_us = [0u64; 4];
        let mut codec_encodes = [0u64; 4];
        for slot in &self.slots {
            let s = slot.steps.get();
            steps_min = steps_min.min(s);
            steps_max = steps_max.max(s);
            cpu_total += slot.cpu_us.get();
            // Roll the per-session codec split (emitted by the encode path
            // into each session's own registry) up to host level.
            let reg = &slot.sess.obs().registry;
            for (i, name) in crate::stats::CODEC_NAMES.iter().enumerate() {
                codec_cpu_us[i] += reg
                    .counter_value(&format!("codec.{name}.cpu_us_total"))
                    .unwrap_or(0);
                codec_encodes[i] += reg
                    .counter_value(&format!("codec.{name}.encodes"))
                    .unwrap_or(0);
            }
        }
        if self.slots.is_empty() {
            steps_min = 0;
        }
        HostStats {
            sessions: self.slots.len() as u64,
            active_sessions: self.active_sessions() as u64,
            services: self.services.get(),
            wall_us: self.wall_us.get(),
            cpu_us: cpu_total,
            steps_min,
            steps_max,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_insertions: self.cache.insertions(),
            cache_evictions: self.cache.evictions(),
            cache_entries: self.cache.len() as u64,
            cache_bytes: self.cache.bytes() as u64,
            cache_shards: self.cache.shard_count() as u64,
            cache_hit_rate_pct: self.cache.hit_rate_pct().round() as u64,
            pool_max_workers: self.pool.max_workers() as u64,
            pool_inline_fallbacks: self.pool.inline_fallbacks(),
            codec_cpu_us,
            codec_encodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adshare_codec::Rect;
    use adshare_netsim::udp::LinkConfig;
    use adshare_session::Layout;

    fn desktop_with_window() -> (Desktop, adshare_screen::wm::WindowId) {
        let mut d = Desktop::new(640, 480);
        let id = d.create_window(1, Rect::new(40, 40, 320, 240), [30, 60, 90, 255]);
        (d, id)
    }

    fn quick_link() -> LinkConfig {
        LinkConfig {
            delay_us: 2_000,
            ..LinkConfig::default()
        }
    }

    #[test]
    fn namespaces_partition_shared_and_private() {
        let cfg = AhConfig::default();
        let shared = shared_namespace(&cfg);
        assert_eq!(shared & PRIVATE_BIT, 0, "shared namespaces clear bit 63");
        let mut other = cfg.clone();
        other.adaptive_codec = true;
        assert_ne!(
            shared,
            shared_namespace(&other),
            "different encode config => different namespace"
        );
        assert_ne!(shared, PRIVATE_BIT, "private never collides with shared");
    }

    #[test]
    fn idle_sessions_park_and_cost_nothing() {
        let mut host = MultiHost::new(HostConfig::default());
        let (d, _) = desktop_with_window();
        let idx = host.add_session(d, AhConfig::default(), 7, CacheSharing::Shared);
        // No participants, no workload: after the initial capture ticks the
        // session drains and parks.
        host.run_until(2_000_000);
        assert_eq!(host.active_sessions(), 0, "idle session should park");
        let steps = host.session_steps(idx);
        host.run_until(4_000_000);
        assert_eq!(
            host.session_steps(idx),
            steps,
            "parked session must receive no further service"
        );
    }

    #[test]
    fn workload_drives_convergence_and_parks_when_done() {
        let mut host = MultiHost::new(HostConfig {
            pool_workers: 2,
            ..HostConfig::default()
        });
        let (d, win) = desktop_with_window();
        let idx = host.add_session(d, AhConfig::default(), 11, CacheSharing::Shared);
        host.session_mut(idx).add_udp_participant(
            Layout::Original,
            quick_link(),
            quick_link(),
            None,
            3,
        );
        let mut ticks = 0u32;
        host.set_workload(idx, move |sess, _now| {
            ticks += 1;
            if ticks.is_multiple_of(4) {
                let c = 40 + (ticks % 160) as u8;
                sess.ah
                    .desktop_mut()
                    .fill(win, Rect::new(0, 0, 64, 64), [c, c, 20, 255]);
            }
            ticks < 40
        });
        host.run_until(4_000_000);
        assert!(
            host.session(idx).converged(0),
            "participant should converge"
        );
        assert!(
            host.session_steps(idx) > 40,
            "active session must be serviced at capture cadence"
        );
        assert_eq!(host.active_sessions(), 0, "finished session parks");
    }

    #[test]
    fn stats_snapshot_is_coherent() {
        let mut host = MultiHost::new(HostConfig::default());
        for i in 0..3 {
            let (d, win) = desktop_with_window();
            let idx = host.add_session(d, AhConfig::default(), i, CacheSharing::Shared);
            host.session_mut(idx).add_udp_participant(
                Layout::Original,
                quick_link(),
                quick_link(),
                None,
                i,
            );
            let mut n = 0u32;
            host.set_workload(idx, move |sess, _| {
                n += 1;
                sess.ah
                    .desktop_mut()
                    .fill(win, Rect::new(0, 0, 32, 32), [n as u8, 0, 0, 255]);
                n < 10
            });
        }
        host.run_until(2_000_000);
        let st = host.stats();
        assert_eq!(st.sessions, 3);
        assert!(st.services >= st.steps_min * 3);
        assert!(st.cache_insertions > 0, "misses must populate the cache");
        assert!(
            st.cache_hits > 0,
            "three identical sessions must share encoded tiles"
        );
        let snap = host.registry().snapshot();
        assert_eq!(snap.gauge("host.sessions"), Some(3));
        assert_eq!(
            snap.sum_counters_with("host.session.", ".steps"),
            st.services,
            "per-session steps roll up to total services"
        );
    }
}
