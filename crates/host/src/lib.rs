//! Multi-tenant session host: thousands of concurrent sharing sessions in
//! one process.
//!
//! The paper's architecture is one Application Host per shared desktop,
//! and every crate below this one mirrors that: one `AppHost`, one encode
//! pipeline, one thread-set per session. A server consolidating thousands
//! of tenants — the SFU model applied to application sharing — cannot
//! afford any of those per-session multipliers. This crate removes all
//! three:
//!
//! * **One sharded encode cache** ([`adshare_encode::SharedEncodeCache`]):
//!   every session's pipeline looks up and inserts into the same
//!   process-wide content-addressed LRU, so the identical app tiles that
//!   thousands of same-app sessions produce encode **once per process**.
//!   Tenant namespaces in the cache key keep private (consent-gated)
//!   sessions fully isolated — same shards, zero key overlap.
//! * **One bounded worker pool** ([`adshare_encode::WorkerPool`]): encode
//!   batches draw spawn permits from a global budget instead of spawning
//!   per-session workers; an exhausted budget degrades a batch to inline
//!   encoding on its caller thread, never blocking.
//! * **One readiness-driven event loop** ([`MultiHost`]): sessions are
//!   scheduled on a due-time heap (the generalization of netsim's
//!   `wait_readable`) and stepped only when they have pending I/O, damage,
//!   or timers. An idle session is parked at zero cost — no per-session
//!   busy threads, no guaranteed tick.
//!
//! Determinism survives hosting: the scheduling policy is a pure function
//! of each session's own state, shared-cache hits are byte-identical to
//! the fresh encode they replace (sessions share a namespace only when
//! their encode-relevant config matches), and the worker pool only changes
//! thread counts, which the encode pipeline's output ordering is already
//! independent of. `tests/host_scale.rs` pins this down: a 64-session
//! hosted run is wire-byte-identical, per session, to 64 standalone runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod stats;

pub use host::{run_standalone, shared_namespace, CacheSharing, HostConfig, MultiHost, Workload};
pub use stats::{HostStats, HOST_STATS_SCHEMA};
