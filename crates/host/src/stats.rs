//! Host-level statistics snapshot and its JSON export.

/// Schema marker for [`HostStats::to_json`] output; `obs_schema_check`
/// dispatches on it to `schemas/host_stats.schema.json`.
pub const HOST_STATS_SCHEMA: &str = "adshare-host-stats/v1";

/// Wire names of the codecs the per-codec CPU split is indexed by, in the
/// order of `CodecKind::ALL` (a test pins the two in sync — `adshare-codec`
/// is a dev-dependency only).
pub const CODEC_NAMES: [&str; 4] = ["raw", "png", "dct", "rle"];

/// A point-in-time roll-up of a [`crate::MultiHost`]: scheduling totals,
/// shared-cache effectiveness, and worker-pool pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostStats {
    /// Hosted sessions.
    pub sessions: u64,
    /// Sessions currently armed in the event loop (not parked).
    pub active_sessions: u64,
    /// Total event-loop services across all sessions.
    pub services: u64,
    /// Wall time spent inside `run_until` (µs).
    pub wall_us: u64,
    /// Sum of per-session service CPU (µs).
    pub cpu_us: u64,
    /// Fewest services any one session has received.
    pub steps_min: u64,
    /// Most services any one session has received.
    pub steps_max: u64,
    /// Shared-cache lookup hits (process-wide).
    pub cache_hits: u64,
    /// Shared-cache lookup misses.
    pub cache_misses: u64,
    /// Entries inserted into the shared cache.
    pub cache_insertions: u64,
    /// Entries evicted by the byte budget.
    pub cache_evictions: u64,
    /// Live entries across all shards.
    pub cache_entries: u64,
    /// Encoded bytes held across all shards.
    pub cache_bytes: u64,
    /// Shard count (power of two).
    pub cache_shards: u64,
    /// Hit rate as a rounded integer percentage.
    pub cache_hit_rate_pct: u64,
    /// Worker-pool spawn-permit budget.
    pub pool_max_workers: u64,
    /// Batches that found the budget empty and encoded inline.
    pub pool_inline_fallbacks: u64,
    /// Encode CPU (µs) spent in each codec across all hosted sessions,
    /// indexed by [`CODEC_NAMES`]. Aggregated from the per-session
    /// `codec.<name>.cpu_us_total` counters; cache hits cost no encode CPU
    /// and so never appear here.
    pub codec_cpu_us: [u64; 4],
    /// Cache-miss encodes performed per codec, same indexing.
    pub codec_encodes: [u64; 4],
}

impl HostStats {
    /// Single-line JSON document carrying the [`HOST_STATS_SCHEMA`] marker.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{schema}\",",
                "\"sessions\":{sessions},",
                "\"active_sessions\":{active},",
                "\"services\":{services},",
                "\"wall_us\":{wall},",
                "\"cpu_us\":{cpu},",
                "\"steps_min\":{smin},",
                "\"steps_max\":{smax},",
                "\"cache\":{{\"hits\":{hits},\"misses\":{misses},",
                "\"insertions\":{ins},\"evictions\":{evict},",
                "\"entries\":{entries},\"bytes\":{bytes},",
                "\"shards\":{shards},\"hit_rate_pct\":{rate}}},",
                "\"pool\":{{\"max_workers\":{workers},",
                "\"inline_fallbacks\":{fallbacks}}},",
                "\"codec\":{codec}}}"
            ),
            schema = HOST_STATS_SCHEMA,
            sessions = self.sessions,
            active = self.active_sessions,
            services = self.services,
            wall = self.wall_us,
            cpu = self.cpu_us,
            smin = self.steps_min,
            smax = self.steps_max,
            hits = self.cache_hits,
            misses = self.cache_misses,
            ins = self.cache_insertions,
            evict = self.cache_evictions,
            entries = self.cache_entries,
            bytes = self.cache_bytes,
            shards = self.cache_shards,
            rate = self.cache_hit_rate_pct,
            workers = self.pool_max_workers,
            fallbacks = self.pool_inline_fallbacks,
            codec = self.codec_json(),
        )
    }

    /// The `"codec"` sub-object: one entry per [`CODEC_NAMES`] codec.
    fn codec_json(&self) -> String {
        let entries: Vec<String> = CODEC_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                format!(
                    "\"{name}\":{{\"cpu_us\":{},\"encodes\":{}}}",
                    self.codec_cpu_us[i], self.codec_encodes[i]
                )
            })
            .collect();
        format!("{{{}}}", entries.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HostStats {
        HostStats {
            sessions: 64,
            active_sessions: 12,
            services: 4096,
            wall_us: 125_000,
            cpu_us: 118_000,
            steps_min: 60,
            steps_max: 68,
            cache_hits: 9_000,
            cache_misses: 1_000,
            cache_insertions: 1_000,
            cache_evictions: 3,
            cache_entries: 997,
            cache_bytes: 5 << 20,
            cache_shards: 16,
            cache_hit_rate_pct: 90,
            pool_max_workers: 8,
            pool_inline_fallbacks: 2,
            codec_cpu_us: [0, 90_000, 28_000, 0],
            codec_encodes: [0, 800, 200, 0],
        }
    }

    #[test]
    fn json_is_parseable_and_carries_the_marker() {
        let json = sample().to_json();
        let doc = adshare_obs::json::parse(&json).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(HOST_STATS_SCHEMA)
        );
        assert_eq!(doc.get("sessions").and_then(|v| v.as_u64()), Some(64));
        let cache = doc.get("cache").expect("cache object");
        assert_eq!(cache.get("hit_rate_pct").and_then(|v| v.as_u64()), Some(90));
        assert_eq!(cache.get("shards").and_then(|v| v.as_u64()), Some(16));
        let pool = doc.get("pool").expect("pool object");
        assert_eq!(pool.get("max_workers").and_then(|v| v.as_u64()), Some(8));
        let codec = doc.get("codec").expect("codec object");
        let png = codec.get("png").expect("png entry");
        assert_eq!(png.get("cpu_us").and_then(|v| v.as_u64()), Some(90_000));
        assert_eq!(png.get("encodes").and_then(|v| v.as_u64()), Some(800));
        for name in CODEC_NAMES {
            assert!(codec.get(name).is_some(), "codec entry {name}");
        }
    }

    #[test]
    fn codec_names_match_codec_kind_order() {
        let kinds: Vec<&str> = adshare_codec::CodecKind::ALL
            .iter()
            .map(|k| k.encoding_name())
            .collect();
        assert_eq!(
            kinds, CODEC_NAMES,
            "CODEC_NAMES drifted from CodecKind::ALL"
        );
    }
}
