//! BFCP wire format (RFC 4582 §5): 12-byte common header plus attribute
//! TLVs padded to 32-bit boundaries.
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! | Ver |Reserved |  Primitive    |        Payload Length         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                         Conference ID                         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |         Transaction ID        |            User ID            |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```

use crate::{Error, Result};

/// BFCP protocol version.
pub const VERSION: u8 = 1;
/// Common header size in bytes.
pub const COMMON_HEADER_LEN: usize = 12;

/// Primitive: FloorRequest (RFC 4582 value 1).
pub const PRIM_FLOOR_REQUEST: u8 = 1;
/// Primitive: FloorRelease (value 2).
pub const PRIM_FLOOR_RELEASE: u8 = 2;
/// Primitive: FloorRequestStatus (value 4) — carries Granted / Released /
/// Pending status.
pub const PRIM_FLOOR_REQUEST_STATUS: u8 = 4;

/// Attribute type: FLOOR-ID (value 2).
pub const ATTR_FLOOR_ID: u8 = 2;
/// Attribute type: FLOOR-REQUEST-ID (value 3).
pub const ATTR_FLOOR_REQUEST_ID: u8 = 3;
/// Attribute type: REQUEST-STATUS (value 5).
pub const ATTR_REQUEST_STATUS: u8 = 5;
/// Attribute type: STATUS-INFO (value 7) — carries the draft's 16-bit HID
/// status.
pub const ATTR_STATUS_INFO: u8 = 7;

/// Decoded common header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonHeader {
    /// The operation (PRIM_*).
    pub primitive: u8,
    /// Conference this message belongs to.
    pub conference_id: u32,
    /// Client-chosen transaction identifier.
    pub transaction_id: u16,
    /// The sending (or target) user.
    pub user_id: u16,
}

impl CommonHeader {
    /// Serialize with the given attribute payload (already encoded,
    /// 4-byte aligned).
    pub fn encode_with_payload(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(payload.len() % 4, 0);
        let mut out = Vec::with_capacity(COMMON_HEADER_LEN + payload.len());
        out.push(VERSION << 5);
        out.push(self.primitive);
        out.extend_from_slice(&((payload.len() / 4) as u16).to_be_bytes());
        out.extend_from_slice(&self.conference_id.to_be_bytes());
        out.extend_from_slice(&self.transaction_id.to_be_bytes());
        out.extend_from_slice(&self.user_id.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Parse the header; returns (header, attribute payload bytes).
    pub fn decode(buf: &[u8]) -> Result<(Self, &[u8])> {
        if buf.len() < COMMON_HEADER_LEN {
            return Err(Error::Truncated("BFCP common header"));
        }
        let ver = buf[0] >> 5;
        if ver != VERSION {
            return Err(Error::BadVersion(ver));
        }
        let primitive = buf[1];
        let payload_words = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        let total = COMMON_HEADER_LEN + payload_words * 4;
        if buf.len() < total {
            return Err(Error::Truncated("BFCP payload"));
        }
        Ok((
            CommonHeader {
                primitive,
                conference_id: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                transaction_id: u16::from_be_bytes([buf[8], buf[9]]),
                user_id: u16::from_be_bytes([buf[10], buf[11]]),
            },
            &buf[COMMON_HEADER_LEN..total],
        ))
    }
}

/// One attribute TLV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute type (7 bits).
    pub kind: u8,
    /// Mandatory bit: receiver must understand this attribute.
    pub mandatory: bool,
    /// Contents (without header or padding).
    pub value: Vec<u8>,
}

impl Attribute {
    /// Build a mandatory attribute.
    pub fn mandatory(kind: u8, value: Vec<u8>) -> Self {
        Attribute {
            kind,
            mandatory: true,
            value,
        }
    }

    /// Append TLV bytes (with 4-byte padding).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        // RFC 4582: Length is the attribute length in bytes *including* the
        // 2-byte header, excluding padding.
        let len = 2 + self.value.len();
        out.push((self.kind << 1) | u8::from(self.mandatory));
        out.push(len.min(255) as u8);
        out.extend_from_slice(&self.value);
        while !out.len().is_multiple_of(4) {
            out.push(0);
        }
    }

    /// Parse all attributes from a payload.
    pub fn decode_all(mut buf: &[u8]) -> Result<Vec<Attribute>> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            if buf.len() < 2 {
                return Err(Error::Truncated("BFCP attribute header"));
            }
            let kind = buf[0] >> 1;
            let mandatory = buf[0] & 1 != 0;
            let len = buf[1] as usize;
            if len < 2 {
                return Err(Error::Invalid("BFCP attribute length < 2"));
            }
            let vlen = len - 2;
            if buf.len() < 2 + vlen {
                return Err(Error::Truncated("BFCP attribute value"));
            }
            let value = buf[2..2 + vlen].to_vec();
            out.push(Attribute {
                kind,
                mandatory,
                value,
            });
            // Skip value + padding.
            let padded = (len + 3) & !3;
            if buf.len() < padded {
                return Err(Error::Truncated("BFCP attribute padding"));
            }
            buf = &buf[padded..];
        }
        Ok(out)
    }

    /// Find the first attribute of a kind.
    pub fn find(attrs: &[Attribute], kind: u8) -> Option<&Attribute> {
        attrs.iter().find(|a| a.kind == kind)
    }

    /// Interpret the value as a big-endian u16.
    pub fn as_u16(&self) -> Result<u16> {
        if self.value.len() < 2 {
            return Err(Error::Invalid("attribute too short for u16"));
        }
        Ok(u16::from_be_bytes([self.value[0], self.value[1]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = CommonHeader {
            primitive: PRIM_FLOOR_REQUEST,
            conference_id: 0xC0FFEE,
            transaction_id: 42,
            user_id: 7,
        };
        let mut payload = Vec::new();
        Attribute::mandatory(ATTR_FLOOR_ID, vec![0, 1]).encode_into(&mut payload);
        let wire = h.encode_with_payload(&payload);
        assert_eq!(wire[0], 0x20, "version 1 in top 3 bits");
        let (back, attrs_buf) = CommonHeader::decode(&wire).unwrap();
        assert_eq!(back, h);
        let attrs = Attribute::decode_all(attrs_buf).unwrap();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].kind, ATTR_FLOOR_ID);
        assert!(attrs[0].mandatory);
        assert_eq!(attrs[0].as_u16().unwrap(), 1);
    }

    #[test]
    fn multiple_attributes_with_padding() {
        let mut payload = Vec::new();
        Attribute::mandatory(ATTR_FLOOR_ID, vec![0, 9]).encode_into(&mut payload);
        Attribute::mandatory(ATTR_STATUS_INFO, vec![0, 3]).encode_into(&mut payload);
        Attribute::mandatory(ATTR_REQUEST_STATUS, vec![3, 0]).encode_into(&mut payload);
        assert_eq!(payload.len() % 4, 0);
        let attrs = Attribute::decode_all(&payload).unwrap();
        assert_eq!(attrs.len(), 3);
        assert_eq!(
            Attribute::find(&attrs, ATTR_STATUS_INFO)
                .unwrap()
                .as_u16()
                .unwrap(),
            3
        );
    }

    #[test]
    fn odd_length_value_padded() {
        let mut payload = Vec::new();
        Attribute::mandatory(ATTR_STATUS_INFO, vec![1, 2, 3]).encode_into(&mut payload);
        assert_eq!(payload.len(), 8, "2 header + 3 value + 3 pad");
        let attrs = Attribute::decode_all(&payload).unwrap();
        assert_eq!(attrs[0].value, vec![1, 2, 3]);
    }

    #[test]
    fn bad_version_rejected() {
        let h = CommonHeader {
            primitive: 1,
            conference_id: 0,
            transaction_id: 0,
            user_id: 0,
        };
        let mut wire = h.encode_with_payload(&[]);
        wire[0] = 2 << 5;
        assert_eq!(CommonHeader::decode(&wire), Err(Error::BadVersion(2)));
    }

    #[test]
    fn truncated_rejected() {
        let h = CommonHeader {
            primitive: 1,
            conference_id: 0,
            transaction_id: 0,
            user_id: 0,
        };
        let mut payload = Vec::new();
        Attribute::mandatory(ATTR_FLOOR_ID, vec![0, 1]).encode_into(&mut payload);
        let wire = h.encode_with_payload(&payload);
        for cut in 0..wire.len() {
            assert!(CommonHeader::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0x0f0f0f0fu32;
        for len in 0..96 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            if let Ok((_, attrs)) = CommonHeader::decode(&buf) {
                let _ = Attribute::decode_all(attrs);
            }
        }
    }
}
