//! The AH-side floor chair: grants the HID floor to one participant at a
//! time, queueing the rest FIFO (draft §4.2).

use std::collections::VecDeque;

use crate::hid_status::HidStatus;
use crate::message::{BfcpMessage, RequestStatus};

/// A pending floor request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    user_id: u16,
    floor_request_id: u16,
    transaction_id: u16,
}

/// The floor chair. Time is the caller's virtual clock (any monotonically
/// increasing u64, e.g. 90 kHz ticks).
#[derive(Debug)]
pub struct FloorChair {
    conference_id: u32,
    floor_id: u16,
    holder: Option<Pending>,
    queue: VecDeque<Pending>,
    next_request_id: u16,
    hid_status: HidStatus,
    /// Maximum hold time; `None` = until released.
    grant_duration: Option<u64>,
    grant_deadline: Option<u64>,
    grants: u64,
    revocations: u64,
}

impl FloorChair {
    /// A chair for one floor in one conference. `grant_duration` bounds how
    /// long a participant may hold the floor ("grants the floor to the
    /// appropriate participant for a period of time", §4.2).
    pub fn new(conference_id: u32, floor_id: u16, grant_duration: Option<u64>) -> Self {
        FloorChair {
            conference_id,
            floor_id,
            holder: None,
            queue: VecDeque::new(),
            next_request_id: 1,
            hid_status: HidStatus::AllAllowed,
            grant_duration,
            grant_deadline: None,
            grants: 0,
            revocations: 0,
        }
    }

    /// The current floor holder's user id.
    pub fn holder(&self) -> Option<u16> {
        self.holder.map(|h| h.user_id)
    }

    /// Queue length (excluding the holder).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// (grants, revocations) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.grants, self.revocations)
    }

    /// Whether `user` currently may send keyboard events.
    pub fn keyboard_allowed(&self, user: u16) -> bool {
        self.holder() == Some(user) && self.hid_status.keyboard_allowed()
    }

    /// Whether `user` currently may send mouse events.
    pub fn mouse_allowed(&self, user: u16) -> bool {
        self.holder() == Some(user) && self.hid_status.mouse_allowed()
    }

    /// Change the HID status (e.g. the shared app lost focus). Returns a
    /// Floor Granted message re-informing the holder, if there is one.
    pub fn set_hid_status(&mut self, status: HidStatus) -> Option<BfcpMessage> {
        self.hid_status = status;
        self.holder.map(|h| self.granted_msg(h))
    }

    /// Current HID status.
    pub fn hid_status(&self) -> HidStatus {
        self.hid_status
    }

    /// Process an incoming participant message at virtual time `now`.
    /// Returns the messages the chair sends back (to the users named in
    /// their `user_id` fields).
    pub fn handle(&mut self, msg: &BfcpMessage, now: u64) -> Vec<BfcpMessage> {
        match msg {
            BfcpMessage::FloorRequest {
                conference_id,
                transaction_id,
                user_id,
                floor_id,
            } => {
                if *conference_id != self.conference_id || *floor_id != self.floor_id {
                    return vec![];
                }
                // A duplicate request from the current holder or an
                // already-queued user (retransmission, client restart after
                // a lost status) must be idempotent: re-state the existing
                // request instead of minting a second Pending. A second
                // entry would double-grant the same user later and wedge the
                // floor, because the client side tracks only one
                // floor_request_id.
                if let Some(h) = self.holder {
                    if h.user_id == *user_id {
                        let refreshed = Pending {
                            transaction_id: *transaction_id,
                            ..h
                        };
                        self.holder = Some(refreshed);
                        return vec![self.granted_msg(refreshed)];
                    }
                }
                if let Some(pos) = self.queue.iter().position(|p| p.user_id == *user_id) {
                    let refreshed = Pending {
                        transaction_id: *transaction_id,
                        ..self.queue[pos]
                    };
                    self.queue[pos] = refreshed;
                    return vec![self.queued_msg(refreshed, (pos + 1) as u8)];
                }
                let pending = Pending {
                    user_id: *user_id,
                    floor_request_id: self.alloc_request_id(),
                    transaction_id: *transaction_id,
                };
                if self.holder.is_none() {
                    self.grant(pending, now);
                    vec![self.granted_msg(pending)]
                } else {
                    self.queue.push_back(pending);
                    vec![self.queued_msg(pending, self.queue.len() as u8)]
                }
            }
            BfcpMessage::FloorRelease {
                conference_id,
                user_id,
                floor_request_id,
                ..
            } => {
                if *conference_id != self.conference_id {
                    return vec![];
                }
                let mut out = Vec::new();
                if let Some(h) = self.holder {
                    if h.user_id == *user_id && h.floor_request_id == *floor_request_id {
                        self.holder = None;
                        self.grant_deadline = None;
                        out.push(self.released_msg(h));
                        out.extend(self.grant_next(now));
                        return out;
                    }
                }
                // Releasing a queued request cancels it.
                if let Some(pos) = self
                    .queue
                    .iter()
                    .position(|p| p.user_id == *user_id && p.floor_request_id == *floor_request_id)
                {
                    let p = self.queue.remove(pos).expect("position valid");
                    out.push(self.status_msg(p, RequestStatus::Cancelled, 0, None));
                }
                out
            }
            BfcpMessage::FloorRequestStatus { .. } => vec![], // chair never receives these
        }
    }

    /// Advance the clock: revoke an expired grant and promote the next in
    /// queue. Returns notifications to send.
    pub fn tick(&mut self, now: u64) -> Vec<BfcpMessage> {
        let mut out = Vec::new();
        if let (Some(h), Some(deadline)) = (self.holder, self.grant_deadline) {
            if now >= deadline && !self.queue.is_empty() {
                // Only revoke when someone is waiting; an uncontended floor
                // stays granted.
                self.holder = None;
                self.grant_deadline = None;
                self.revocations += 1;
                out.push(self.status_msg(h, RequestStatus::Revoked, 0, None));
                out.extend(self.grant_next(now));
            }
        }
        out
    }

    fn grant_next(&mut self, now: u64) -> Vec<BfcpMessage> {
        let mut out = Vec::new();
        if let Some(next) = self.queue.pop_front() {
            self.grant(next, now);
            out.push(self.granted_msg(next));
            // Re-inform the remaining queue of their new positions.
            let snapshot: Vec<Pending> = self.queue.iter().copied().collect();
            for (i, p) in snapshot.into_iter().enumerate() {
                out.push(self.queued_msg(p, (i + 1) as u8));
            }
        }
        out
    }

    fn grant(&mut self, p: Pending, now: u64) {
        self.holder = Some(p);
        self.grants += 1;
        self.grant_deadline = self.grant_duration.map(|d| now + d);
    }

    fn alloc_request_id(&mut self) -> u16 {
        let id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        id
    }

    fn granted_msg(&self, p: Pending) -> BfcpMessage {
        self.status_msg(p, RequestStatus::Granted, 0, Some(self.hid_status))
    }

    fn queued_msg(&self, p: Pending, pos: u8) -> BfcpMessage {
        self.status_msg(p, RequestStatus::Pending, pos, None)
    }

    fn released_msg(&self, p: Pending) -> BfcpMessage {
        self.status_msg(p, RequestStatus::Released, 0, None)
    }

    fn status_msg(
        &self,
        p: Pending,
        status: RequestStatus,
        queue_position: u8,
        hid_status: Option<HidStatus>,
    ) -> BfcpMessage {
        BfcpMessage::FloorRequestStatus {
            conference_id: self.conference_id,
            transaction_id: p.transaction_id,
            user_id: p.user_id,
            floor_request_id: p.floor_request_id,
            status,
            queue_position,
            hid_status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(user: u16, tx: u16) -> BfcpMessage {
        BfcpMessage::FloorRequest {
            conference_id: 1,
            transaction_id: tx,
            user_id: user,
            floor_id: 0,
        }
    }

    fn grant_of(msgs: &[BfcpMessage]) -> Option<(u16, u16)> {
        msgs.iter().find_map(|m| match m {
            BfcpMessage::FloorRequestStatus {
                user_id,
                floor_request_id,
                status: RequestStatus::Granted,
                ..
            } => Some((*user_id, *floor_request_id)),
            _ => None,
        })
    }

    #[test]
    fn first_request_granted_immediately() {
        let mut chair = FloorChair::new(1, 0, None);
        let out = chair.handle(&request(5, 1), 0);
        assert_eq!(grant_of(&out), Some((5, 1)));
        assert_eq!(chair.holder(), Some(5));
        assert!(chair.keyboard_allowed(5));
        assert!(!chair.keyboard_allowed(6));
    }

    #[test]
    fn second_request_queued_fifo() {
        let mut chair = FloorChair::new(1, 0, None);
        chair.handle(&request(5, 1), 0);
        let out = chair.handle(&request(6, 1), 0);
        match &out[0] {
            BfcpMessage::FloorRequestStatus {
                status,
                queue_position,
                user_id,
                ..
            } => {
                assert_eq!(*status, RequestStatus::Pending);
                assert_eq!(*queue_position, 1);
                assert_eq!(*user_id, 6);
            }
            other => panic!("unexpected {other:?}"),
        }
        let out = chair.handle(&request(7, 1), 0);
        match &out[0] {
            BfcpMessage::FloorRequestStatus { queue_position, .. } => {
                assert_eq!(*queue_position, 2)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn release_promotes_next_in_fifo_order() {
        let mut chair = FloorChair::new(1, 0, None);
        let g = chair.handle(&request(5, 1), 0);
        let (_, req5) = grant_of(&g).unwrap();
        chair.handle(&request(6, 1), 0);
        chair.handle(&request(7, 1), 0);
        let out = chair.handle(
            &BfcpMessage::FloorRelease {
                conference_id: 1,
                transaction_id: 2,
                user_id: 5,
                floor_request_id: req5,
            },
            10,
        );
        // Released to 5, granted to 6, queue update for 7.
        assert!(out.iter().any(|m| matches!(
            m,
            BfcpMessage::FloorRequestStatus {
                user_id: 5,
                status: RequestStatus::Released,
                ..
            }
        )));
        assert_eq!(grant_of(&out), Some((6, 2)));
        assert_eq!(chair.holder(), Some(6));
        assert!(out.iter().any(|m| matches!(
            m,
            BfcpMessage::FloorRequestStatus {
                user_id: 7,
                status: RequestStatus::Pending,
                queue_position: 1,
                ..
            }
        )));
    }

    #[test]
    fn expiry_revokes_only_under_contention() {
        let mut chair = FloorChair::new(1, 0, Some(100));
        chair.handle(&request(5, 1), 0);
        // No contention: deadline passes, holder keeps the floor.
        assert!(chair.tick(200).is_empty());
        assert_eq!(chair.holder(), Some(5));
        // Contention arrives; next tick revokes and promotes.
        chair.handle(&request(6, 1), 210);
        let out = chair.tick(220);
        assert!(out.iter().any(|m| matches!(
            m,
            BfcpMessage::FloorRequestStatus {
                user_id: 5,
                status: RequestStatus::Revoked,
                ..
            }
        )));
        assert_eq!(chair.holder(), Some(6));
        assert_eq!(chair.stats().1, 1);
    }

    #[test]
    fn queued_request_can_be_cancelled() {
        let mut chair = FloorChair::new(1, 0, None);
        chair.handle(&request(5, 1), 0);
        let out = chair.handle(&request(6, 1), 0);
        let req6 = match &out[0] {
            BfcpMessage::FloorRequestStatus {
                floor_request_id, ..
            } => *floor_request_id,
            other => panic!("unexpected {other:?}"),
        };
        let out = chair.handle(
            &BfcpMessage::FloorRelease {
                conference_id: 1,
                transaction_id: 2,
                user_id: 6,
                floor_request_id: req6,
            },
            5,
        );
        assert!(matches!(
            out[0],
            BfcpMessage::FloorRequestStatus {
                status: RequestStatus::Cancelled,
                ..
            }
        ));
        assert_eq!(chair.queue_len(), 0);
        assert_eq!(chair.holder(), Some(5), "holder unaffected");
    }

    #[test]
    fn hid_status_gates_events_and_notifies_holder() {
        let mut chair = FloorChair::new(1, 0, None);
        chair.handle(&request(5, 1), 0);
        assert!(chair.keyboard_allowed(5) && chair.mouse_allowed(5));
        let notify = chair.set_hid_status(HidStatus::MouseAllowed).unwrap();
        match notify {
            BfcpMessage::FloorRequestStatus {
                user_id,
                status,
                hid_status,
                ..
            } => {
                assert_eq!(user_id, 5);
                assert_eq!(status, RequestStatus::Granted);
                assert_eq!(hid_status, Some(HidStatus::MouseAllowed));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!chair.keyboard_allowed(5));
        assert!(chair.mouse_allowed(5));
        // Without a holder, no notification.
        let mut empty_chair = FloorChair::new(1, 0, None);
        assert!(empty_chair.set_hid_status(HidStatus::NotAllowed).is_none());
    }

    #[test]
    fn wrong_conference_or_floor_ignored() {
        let mut chair = FloorChair::new(1, 0, None);
        let out = chair.handle(
            &BfcpMessage::FloorRequest {
                conference_id: 2,
                transaction_id: 1,
                user_id: 5,
                floor_id: 0,
            },
            0,
        );
        assert!(out.is_empty());
        let out = chair.handle(
            &BfcpMessage::FloorRequest {
                conference_id: 1,
                transaction_id: 1,
                user_id: 5,
                floor_id: 9,
            },
            0,
        );
        assert!(out.is_empty());
        assert_eq!(chair.holder(), None);
    }

    #[test]
    fn duplicate_request_from_holder_is_idempotent() {
        // Regression: a retransmitted FloorRequest from the current holder
        // used to enqueue a second Pending, so the holder's own release
        // promoted *itself* — a double grant the client (which tracks one
        // floor_request_id) could never release: a stuck floor.
        let mut chair = FloorChair::new(1, 0, None);
        let g = chair.handle(&request(5, 1), 0);
        let (_, req5) = grant_of(&g).unwrap();
        let out = chair.handle(&request(5, 2), 1);
        assert_eq!(
            grant_of(&out),
            Some((5, req5)),
            "duplicate must re-grant the same request id"
        );
        assert_eq!(chair.queue_len(), 0, "duplicate must not enqueue");
        assert_eq!(chair.stats().0, 1, "re-grant is not a new grant");
        chair.handle(&request(6, 1), 2);
        let out = chair.handle(
            &BfcpMessage::FloorRelease {
                conference_id: 1,
                transaction_id: 3,
                user_id: 5,
                floor_request_id: req5,
            },
            3,
        );
        assert_eq!(grant_of(&out), Some((6, 2)), "floor moves on, not stuck");
        assert_eq!(chair.holder(), Some(6));
    }

    #[test]
    fn duplicate_request_from_queued_user_keeps_one_entry() {
        let mut chair = FloorChair::new(1, 0, None);
        chair.handle(&request(5, 1), 0);
        let out = chair.handle(&request(6, 1), 0);
        let req6 = match &out[0] {
            BfcpMessage::FloorRequestStatus {
                floor_request_id, ..
            } => *floor_request_id,
            other => panic!("unexpected {other:?}"),
        };
        let out = chair.handle(&request(6, 2), 1);
        match &out[0] {
            BfcpMessage::FloorRequestStatus {
                floor_request_id,
                status,
                queue_position,
                ..
            } => {
                assert_eq!(*floor_request_id, req6, "same request restated");
                assert_eq!(*status, RequestStatus::Pending);
                assert_eq!(*queue_position, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(chair.queue_len(), 1, "no duplicate queue entry");
        // Release the holder: user 6 is granted exactly once and the queue
        // drains to empty (a duplicate entry would leave a ghost grant).
        let rel = chair.handle(
            &BfcpMessage::FloorRelease {
                conference_id: 1,
                transaction_id: 3,
                user_id: 5,
                floor_request_id: 1,
            },
            2,
        );
        assert_eq!(grant_of(&rel), Some((6, req6)));
        assert_eq!(chair.queue_len(), 0);
    }

    #[test]
    fn grant_order_is_strict_fifo_over_many_users() {
        let mut chair = FloorChair::new(1, 0, None);
        let g = chair.handle(&request(0, 1), 0);
        let mut req_ids = vec![grant_of(&g).unwrap().1];
        for u in 1..10u16 {
            let out = chair.handle(&request(u, 1), 0);
            match &out[0] {
                BfcpMessage::FloorRequestStatus {
                    floor_request_id, ..
                } => req_ids.push(*floor_request_id),
                other => panic!("unexpected {other:?}"),
            }
        }
        let mut grant_sequence = vec![chair.holder().unwrap()];
        for u in 0..9u16 {
            let out = chair.handle(
                &BfcpMessage::FloorRelease {
                    conference_id: 1,
                    transaction_id: 99,
                    user_id: u,
                    floor_request_id: req_ids[u as usize],
                },
                0,
            );
            grant_sequence.push(grant_of(&out).unwrap().0);
        }
        assert_eq!(grant_sequence, (0..10u16).collect::<Vec<_>>());
    }
}
