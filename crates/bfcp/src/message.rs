//! Typed BFCP messages: the subset Appendix A requires.

use crate::hid_status::HidStatus;
use crate::wire::{
    Attribute, CommonHeader, ATTR_FLOOR_ID, ATTR_FLOOR_REQUEST_ID, ATTR_REQUEST_STATUS,
    ATTR_STATUS_INFO, PRIM_FLOOR_RELEASE, PRIM_FLOOR_REQUEST, PRIM_FLOOR_REQUEST_STATUS,
};
use crate::{Error, Result};

/// Request status values from RFC 4582 §5.2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Pending (1) — the draft's "Floor Request Queued".
    Pending,
    /// Accepted (2).
    Accepted,
    /// Granted (3) — the draft's "Floor Granted".
    Granted,
    /// Denied (4).
    Denied,
    /// Cancelled (5).
    Cancelled,
    /// Released (6) — the draft's "Floor Released".
    Released,
    /// Revoked (7).
    Revoked,
}

impl RequestStatus {
    /// Wire value.
    pub fn value(self) -> u8 {
        match self {
            RequestStatus::Pending => 1,
            RequestStatus::Accepted => 2,
            RequestStatus::Granted => 3,
            RequestStatus::Denied => 4,
            RequestStatus::Cancelled => 5,
            RequestStatus::Released => 6,
            RequestStatus::Revoked => 7,
        }
    }

    /// Parse a wire value.
    pub fn from_value(v: u8) -> Option<Self> {
        Some(match v {
            1 => RequestStatus::Pending,
            2 => RequestStatus::Accepted,
            3 => RequestStatus::Granted,
            4 => RequestStatus::Denied,
            5 => RequestStatus::Cancelled,
            6 => RequestStatus::Released,
            7 => RequestStatus::Revoked,
            _ => return None,
        })
    }
}

/// A BFCP message in the Appendix A subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BfcpMessage {
    /// Participant asks for the floor (the AH's HIDs).
    FloorRequest {
        /// Conference.
        conference_id: u32,
        /// Transaction chosen by the requester.
        transaction_id: u16,
        /// Requesting user.
        user_id: u16,
        /// The floor being requested.
        floor_id: u16,
    },
    /// Participant gives the floor back.
    FloorRelease {
        /// Conference.
        conference_id: u32,
        /// Transaction.
        transaction_id: u16,
        /// Releasing user.
        user_id: u16,
        /// The request being released.
        floor_request_id: u16,
    },
    /// Chair informs a participant about their request: Granted / Pending
    /// (queued) / Released / Revoked, with queue position and the draft's
    /// HID status on grants.
    FloorRequestStatus {
        /// Conference.
        conference_id: u32,
        /// Transaction (echoes the request's, or server-initiated).
        transaction_id: u16,
        /// Target user.
        user_id: u16,
        /// The request this status describes.
        floor_request_id: u16,
        /// Status.
        status: RequestStatus,
        /// Position in the FIFO queue (0 when not queued).
        queue_position: u8,
        /// HID status (STATUS-INFO), present on grants.
        hid_status: Option<HidStatus>,
    },
}

impl BfcpMessage {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            BfcpMessage::FloorRequest {
                conference_id,
                transaction_id,
                user_id,
                floor_id,
            } => {
                let mut payload = Vec::new();
                Attribute::mandatory(ATTR_FLOOR_ID, floor_id.to_be_bytes().to_vec())
                    .encode_into(&mut payload);
                CommonHeader {
                    primitive: PRIM_FLOOR_REQUEST,
                    conference_id: *conference_id,
                    transaction_id: *transaction_id,
                    user_id: *user_id,
                }
                .encode_with_payload(&payload)
            }
            BfcpMessage::FloorRelease {
                conference_id,
                transaction_id,
                user_id,
                floor_request_id,
            } => {
                let mut payload = Vec::new();
                Attribute::mandatory(
                    ATTR_FLOOR_REQUEST_ID,
                    floor_request_id.to_be_bytes().to_vec(),
                )
                .encode_into(&mut payload);
                CommonHeader {
                    primitive: PRIM_FLOOR_RELEASE,
                    conference_id: *conference_id,
                    transaction_id: *transaction_id,
                    user_id: *user_id,
                }
                .encode_with_payload(&payload)
            }
            BfcpMessage::FloorRequestStatus {
                conference_id,
                transaction_id,
                user_id,
                floor_request_id,
                status,
                queue_position,
                hid_status,
            } => {
                let mut payload = Vec::new();
                Attribute::mandatory(
                    ATTR_FLOOR_REQUEST_ID,
                    floor_request_id.to_be_bytes().to_vec(),
                )
                .encode_into(&mut payload);
                Attribute::mandatory(ATTR_REQUEST_STATUS, vec![status.value(), *queue_position])
                    .encode_into(&mut payload);
                if let Some(hid) = hid_status {
                    Attribute::mandatory(ATTR_STATUS_INFO, hid.value().to_be_bytes().to_vec())
                        .encode_into(&mut payload);
                }
                CommonHeader {
                    primitive: PRIM_FLOOR_REQUEST_STATUS,
                    conference_id: *conference_id,
                    transaction_id: *transaction_id,
                    user_id: *user_id,
                }
                .encode_with_payload(&payload)
            }
        }
    }

    /// Parse.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let (header, payload) = CommonHeader::decode(buf)?;
        let attrs = Attribute::decode_all(payload)?;
        match header.primitive {
            PRIM_FLOOR_REQUEST => {
                let floor_id = Attribute::find(&attrs, ATTR_FLOOR_ID)
                    .ok_or(Error::Invalid("FloorRequest without FLOOR-ID"))?
                    .as_u16()?;
                Ok(BfcpMessage::FloorRequest {
                    conference_id: header.conference_id,
                    transaction_id: header.transaction_id,
                    user_id: header.user_id,
                    floor_id,
                })
            }
            PRIM_FLOOR_RELEASE => {
                let floor_request_id = Attribute::find(&attrs, ATTR_FLOOR_REQUEST_ID)
                    .ok_or(Error::Invalid("FloorRelease without FLOOR-REQUEST-ID"))?
                    .as_u16()?;
                Ok(BfcpMessage::FloorRelease {
                    conference_id: header.conference_id,
                    transaction_id: header.transaction_id,
                    user_id: header.user_id,
                    floor_request_id,
                })
            }
            PRIM_FLOOR_REQUEST_STATUS => {
                let floor_request_id = Attribute::find(&attrs, ATTR_FLOOR_REQUEST_ID)
                    .ok_or(Error::Invalid(
                        "FloorRequestStatus without FLOOR-REQUEST-ID",
                    ))?
                    .as_u16()?;
                let rs = Attribute::find(&attrs, ATTR_REQUEST_STATUS)
                    .ok_or(Error::Invalid("FloorRequestStatus without REQUEST-STATUS"))?;
                if rs.value.len() < 2 {
                    return Err(Error::Invalid("REQUEST-STATUS too short"));
                }
                let status = RequestStatus::from_value(rs.value[0])
                    .ok_or(Error::Invalid("unknown request status"))?;
                let hid_status = match Attribute::find(&attrs, ATTR_STATUS_INFO) {
                    Some(a) => Some(
                        HidStatus::from_value(a.as_u16()?)
                            .ok_or(Error::Invalid("unknown HID status"))?,
                    ),
                    None => None,
                };
                Ok(BfcpMessage::FloorRequestStatus {
                    conference_id: header.conference_id,
                    transaction_id: header.transaction_id,
                    user_id: header.user_id,
                    floor_request_id,
                    status,
                    queue_position: rs.value[1],
                    hid_status,
                })
            }
            other => Err(Error::UnknownPrimitive(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_request_round_trip() {
        let m = BfcpMessage::FloorRequest {
            conference_id: 10,
            transaction_id: 1,
            user_id: 5,
            floor_id: 0,
        };
        assert_eq!(BfcpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn floor_release_round_trip() {
        let m = BfcpMessage::FloorRelease {
            conference_id: 10,
            transaction_id: 2,
            user_id: 5,
            floor_request_id: 77,
        };
        assert_eq!(BfcpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn granted_with_hid_status_round_trip() {
        let m = BfcpMessage::FloorRequestStatus {
            conference_id: 10,
            transaction_id: 3,
            user_id: 5,
            floor_request_id: 77,
            status: RequestStatus::Granted,
            queue_position: 0,
            hid_status: Some(HidStatus::MouseAllowed),
        };
        assert_eq!(BfcpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn queued_without_hid_status() {
        let m = BfcpMessage::FloorRequestStatus {
            conference_id: 10,
            transaction_id: 4,
            user_id: 6,
            floor_request_id: 78,
            status: RequestStatus::Pending,
            queue_position: 2,
            hid_status: None,
        };
        assert_eq!(BfcpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn all_status_values_round_trip() {
        for s in [
            RequestStatus::Pending,
            RequestStatus::Accepted,
            RequestStatus::Granted,
            RequestStatus::Denied,
            RequestStatus::Cancelled,
            RequestStatus::Released,
            RequestStatus::Revoked,
        ] {
            assert_eq!(RequestStatus::from_value(s.value()), Some(s));
        }
        assert_eq!(RequestStatus::from_value(0), None);
        assert_eq!(RequestStatus::from_value(8), None);
    }

    #[test]
    fn missing_mandatory_attribute_rejected() {
        // FloorRequest with no attributes.
        let h = CommonHeader {
            primitive: PRIM_FLOOR_REQUEST,
            conference_id: 1,
            transaction_id: 1,
            user_id: 1,
        };
        let wire = h.encode_with_payload(&[]);
        assert!(matches!(BfcpMessage::decode(&wire), Err(Error::Invalid(_))));
    }

    #[test]
    fn unknown_primitive_rejected() {
        let h = CommonHeader {
            primitive: 99,
            conference_id: 1,
            transaction_id: 1,
            user_id: 1,
        };
        let wire = h.encode_with_payload(&[]);
        assert_eq!(BfcpMessage::decode(&wire), Err(Error::UnknownPrimitive(99)));
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0x77777777u32;
        for len in 0..96 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = BfcpMessage::decode(&buf);
            if len >= 12 {
                buf[0] = 0x20; // valid version
                buf[1] = 4; // FloorRequestStatus
                let _ = BfcpMessage::decode(&buf);
            }
        }
    }
}
