//! HID Status values (draft Appendix A, Figure 20).
//!
//! "It is possible that the AH MAY temporarily block HID events without
//! revoking the floor control. ... The AH informs the current floor holder
//! about the status of HIDs via STATUS-INFO attribute of 'Floor Granted'
//! messages."

/// The 16-bit HID status carried in STATUS-INFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HidStatus {
    /// STATE_NOT_ALLOWED (0): all HID events blocked.
    NotAllowed,
    /// STATE_KEYBOARD_ALLOWED (1).
    KeyboardAllowed,
    /// STATE_MOUSE_ALLOWED (2).
    MouseAllowed,
    /// STATE_ALL_ALLOWED (3).
    AllAllowed,
}

impl HidStatus {
    /// Wire value (Figure 20).
    pub fn value(self) -> u16 {
        match self {
            HidStatus::NotAllowed => 0,
            HidStatus::KeyboardAllowed => 1,
            HidStatus::MouseAllowed => 2,
            HidStatus::AllAllowed => 3,
        }
    }

    /// Parse a wire value.
    pub fn from_value(v: u16) -> Option<Self> {
        match v {
            0 => Some(HidStatus::NotAllowed),
            1 => Some(HidStatus::KeyboardAllowed),
            2 => Some(HidStatus::MouseAllowed),
            3 => Some(HidStatus::AllAllowed),
            _ => None,
        }
    }

    /// Whether keyboard events may flow.
    pub fn keyboard_allowed(self) -> bool {
        matches!(self, HidStatus::KeyboardAllowed | HidStatus::AllAllowed)
    }

    /// Whether mouse events may flow.
    pub fn mouse_allowed(self) -> bool {
        matches!(self, HidStatus::MouseAllowed | HidStatus::AllAllowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_20_values() {
        assert_eq!(HidStatus::NotAllowed.value(), 0);
        assert_eq!(HidStatus::KeyboardAllowed.value(), 1);
        assert_eq!(HidStatus::MouseAllowed.value(), 2);
        assert_eq!(HidStatus::AllAllowed.value(), 3);
    }

    #[test]
    fn round_trip_and_unknown() {
        for v in 0..4u16 {
            assert_eq!(HidStatus::from_value(v).unwrap().value(), v);
        }
        assert_eq!(HidStatus::from_value(4), None);
        assert_eq!(HidStatus::from_value(u16::MAX), None);
    }

    #[test]
    fn permission_predicates() {
        assert!(!HidStatus::NotAllowed.keyboard_allowed());
        assert!(!HidStatus::NotAllowed.mouse_allowed());
        assert!(HidStatus::KeyboardAllowed.keyboard_allowed());
        assert!(!HidStatus::KeyboardAllowed.mouse_allowed());
        assert!(!HidStatus::MouseAllowed.keyboard_allowed());
        assert!(HidStatus::MouseAllowed.mouse_allowed());
        assert!(HidStatus::AllAllowed.keyboard_allowed());
        assert!(HidStatus::AllAllowed.mouse_allowed());
    }
}
