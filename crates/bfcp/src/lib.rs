//! Binary Floor Control Protocol (RFC 4582) subset for application and
//! desktop sharing (draft Appendix A).
//!
//! "Only five of them is a MUST for Application and Desktop Sharing, namely
//! 'Floor Request', 'Floor Release', 'Floor Granted', 'Floor Released' and
//! 'Floor Request Queued'." In RFC 4582 terms the last three are
//! `FloorRequestStatus` messages carrying a REQUEST-STATUS attribute of
//! Granted / Released / Pending; the floor itself is "the AH's HIDs".
//!
//! The draft extends BFCP with a 16-bit **HID Status** carried in the
//! STATUS-INFO attribute of Floor Granted messages, letting the AH
//! temporarily block keyboard/mouse without revoking the floor (Figure 20).
//!
//! * [`wire`] — common header and attribute TLVs.
//! * [`message`] — the primitives as typed messages.
//! * [`chair`] — the AH-side floor chair with the FIFO queue §4.2 requires.
//! * [`client`] — the participant-side floor state machine.
//! * [`hid_status`] — Figure 20 values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chair;
pub mod client;
pub mod hid_status;
pub mod message;
pub mod wire;

pub use chair::FloorChair;
pub use client::{FloorClient, FloorState};
pub use hid_status::HidStatus;
pub use message::{BfcpMessage, RequestStatus};

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from BFCP parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Buffer too short.
    Truncated(&'static str),
    /// Unsupported protocol version (must be 1).
    BadVersion(u8),
    /// A malformed length or attribute.
    Invalid(&'static str),
    /// Primitive outside the subset this implementation handles.
    UnknownPrimitive(u8),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated(w) => write!(f, "truncated {w}"),
            Error::BadVersion(v) => write!(f, "unsupported BFCP version {v}"),
            Error::Invalid(w) => write!(f, "invalid {w}"),
            Error::UnknownPrimitive(p) => write!(f, "unknown BFCP primitive {p}"),
        }
    }
}

impl std::error::Error for Error {}
