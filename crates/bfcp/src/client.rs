//! Participant-side floor state machine.

use crate::hid_status::HidStatus;
use crate::message::{BfcpMessage, RequestStatus};

/// The participant's view of its floor request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorState {
    /// No outstanding request.
    Idle,
    /// Request sent, no status yet.
    Requesting,
    /// In the chair's FIFO queue at this position.
    Queued(u8),
    /// Holding the floor with this HID status.
    Granted(HidStatus),
}

/// Client-side floor logic for one participant.
#[derive(Debug)]
pub struct FloorClient {
    conference_id: u32,
    user_id: u16,
    floor_id: u16,
    state: FloorState,
    floor_request_id: Option<u16>,
    next_transaction: u16,
}

impl FloorClient {
    /// A client for `user_id` in `conference_id` contending for `floor_id`.
    pub fn new(conference_id: u32, user_id: u16, floor_id: u16) -> Self {
        FloorClient {
            conference_id,
            user_id,
            floor_id,
            state: FloorState::Idle,
            floor_request_id: None,
            next_transaction: 1,
        }
    }

    /// Current state.
    pub fn state(&self) -> FloorState {
        self.state
    }

    /// This client's user id.
    pub fn user_id(&self) -> u16 {
        self.user_id
    }

    /// Whether this participant may currently send keyboard events.
    pub fn keyboard_allowed(&self) -> bool {
        matches!(self.state, FloorState::Granted(h) if h.keyboard_allowed())
    }

    /// Whether this participant may currently send mouse events.
    pub fn mouse_allowed(&self) -> bool {
        matches!(self.state, FloorState::Granted(h) if h.mouse_allowed())
    }

    /// Build a FloorRequest (no-op returning `None` if one is outstanding).
    pub fn request_floor(&mut self) -> Option<BfcpMessage> {
        if self.state != FloorState::Idle {
            return None;
        }
        self.state = FloorState::Requesting;
        Some(BfcpMessage::FloorRequest {
            conference_id: self.conference_id,
            transaction_id: self.alloc_tx(),
            user_id: self.user_id,
            floor_id: self.floor_id,
        })
    }

    /// Build a FloorRelease for the current request, if any.
    pub fn release_floor(&mut self) -> Option<BfcpMessage> {
        let floor_request_id = self.floor_request_id?;
        Some(BfcpMessage::FloorRelease {
            conference_id: self.conference_id,
            transaction_id: self.alloc_tx(),
            user_id: self.user_id,
            floor_request_id,
        })
    }

    /// Process a status message addressed to this user.
    pub fn handle(&mut self, msg: &BfcpMessage) {
        let BfcpMessage::FloorRequestStatus {
            conference_id,
            user_id,
            floor_request_id,
            status,
            queue_position,
            hid_status,
            ..
        } = msg
        else {
            return;
        };
        if *conference_id != self.conference_id || *user_id != self.user_id {
            return;
        }
        match status {
            RequestStatus::Granted => {
                self.floor_request_id = Some(*floor_request_id);
                self.state = FloorState::Granted(hid_status.unwrap_or(HidStatus::AllAllowed));
            }
            RequestStatus::Pending | RequestStatus::Accepted => {
                self.floor_request_id = Some(*floor_request_id);
                self.state = FloorState::Queued(*queue_position);
            }
            RequestStatus::Released
            | RequestStatus::Revoked
            | RequestStatus::Denied
            | RequestStatus::Cancelled => {
                self.floor_request_id = None;
                self.state = FloorState::Idle;
            }
        }
    }

    fn alloc_tx(&mut self) -> u16 {
        let tx = self.next_transaction;
        self.next_transaction = self.next_transaction.wrapping_add(1).max(1);
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chair::FloorChair;

    /// Full client↔chair conversation over encoded bytes.
    #[test]
    fn request_grant_release_cycle_over_wire() {
        let mut chair = FloorChair::new(7, 0, None);
        let mut alice = FloorClient::new(7, 1, 0);
        let mut bob = FloorClient::new(7, 2, 0);

        let deliver = |client: &mut FloorClient, msgs: &[BfcpMessage]| {
            for m in msgs {
                // Over the wire and back, as it would be on TCP.
                let parsed = BfcpMessage::decode(&m.encode()).unwrap();
                client.handle(&parsed);
            }
        };

        // Alice requests and is granted.
        let req = alice.request_floor().unwrap();
        let out = chair.handle(&BfcpMessage::decode(&req.encode()).unwrap(), 0);
        deliver(&mut alice, &out);
        assert!(matches!(alice.state(), FloorState::Granted(_)));
        assert!(alice.keyboard_allowed() && alice.mouse_allowed());

        // Bob requests and is queued.
        let req = bob.request_floor().unwrap();
        let out = chair.handle(&BfcpMessage::decode(&req.encode()).unwrap(), 1);
        deliver(&mut bob, &out);
        assert_eq!(bob.state(), FloorState::Queued(1));
        assert!(!bob.keyboard_allowed());

        // Alice releases; Bob is promoted.
        let rel = alice.release_floor().unwrap();
        let out = chair.handle(&BfcpMessage::decode(&rel.encode()).unwrap(), 2);
        for m in &out {
            let parsed = BfcpMessage::decode(&m.encode()).unwrap();
            alice.handle(&parsed);
            bob.handle(&parsed);
        }
        assert_eq!(alice.state(), FloorState::Idle);
        assert!(matches!(bob.state(), FloorState::Granted(_)));
    }

    #[test]
    fn duplicate_request_suppressed() {
        let mut c = FloorClient::new(1, 1, 0);
        assert!(c.request_floor().is_some());
        assert!(
            c.request_floor().is_none(),
            "second request while outstanding"
        );
    }

    #[test]
    fn release_without_request_is_none() {
        let mut c = FloorClient::new(1, 1, 0);
        assert!(c.release_floor().is_none());
    }

    #[test]
    fn hid_status_updates_apply() {
        let mut c = FloorClient::new(1, 1, 0);
        c.request_floor();
        c.handle(&BfcpMessage::FloorRequestStatus {
            conference_id: 1,
            transaction_id: 1,
            user_id: 1,
            floor_request_id: 9,
            status: RequestStatus::Granted,
            queue_position: 0,
            hid_status: Some(HidStatus::KeyboardAllowed),
        });
        assert!(c.keyboard_allowed());
        assert!(!c.mouse_allowed());
        // A re-grant with different status updates permissions in place.
        c.handle(&BfcpMessage::FloorRequestStatus {
            conference_id: 1,
            transaction_id: 2,
            user_id: 1,
            floor_request_id: 9,
            status: RequestStatus::Granted,
            queue_position: 0,
            hid_status: Some(HidStatus::NotAllowed),
        });
        assert!(!c.keyboard_allowed() && !c.mouse_allowed());
    }

    #[test]
    fn messages_for_other_users_ignored() {
        let mut c = FloorClient::new(1, 1, 0);
        c.request_floor();
        c.handle(&BfcpMessage::FloorRequestStatus {
            conference_id: 1,
            transaction_id: 1,
            user_id: 2, // not us
            floor_request_id: 9,
            status: RequestStatus::Granted,
            queue_position: 0,
            hid_status: None,
        });
        assert_eq!(c.state(), FloorState::Requesting);
    }

    #[test]
    fn revocation_returns_to_idle() {
        let mut c = FloorClient::new(1, 1, 0);
        c.request_floor();
        c.handle(&BfcpMessage::FloorRequestStatus {
            conference_id: 1,
            transaction_id: 1,
            user_id: 1,
            floor_request_id: 9,
            status: RequestStatus::Granted,
            queue_position: 0,
            hid_status: None,
        });
        c.handle(&BfcpMessage::FloorRequestStatus {
            conference_id: 1,
            transaction_id: 2,
            user_id: 1,
            floor_request_id: 9,
            status: RequestStatus::Revoked,
            queue_position: 0,
            hid_status: None,
        });
        assert_eq!(c.state(), FloorState::Idle);
        // Can request again.
        assert!(c.request_floor().is_some());
    }
}
