//! E21 (micro side) — one event-loop pass over a populated [`MultiHost`]:
//! how much does servicing every due session for one capture interval cost
//! as the tenant count grows, and what does tenant isolation forgo.

use adshare_codec::Rect;
use adshare_host::{CacheSharing, HostConfig, MultiHost};
use adshare_netsim::udp::LinkConfig;
use adshare_screen::wm::WindowId;
use adshare_screen::Desktop;
use adshare_session::{AhConfig, Layout, SimSession};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const INTERVAL_US: u64 = 16_000;

fn desktop() -> (Desktop, WindowId) {
    let mut d = Desktop::new(320, 240);
    let win = d.create_window(1, Rect::new(16, 16, 192, 128), [24, 48, 72, 255]);
    (d, win)
}

fn workload(class: usize, win: WindowId) -> impl FnMut(&mut SimSession, u64) -> bool + Send {
    let mut tick = 0u32;
    move |sess, _now| {
        tick += 1;
        let c = ((tick as usize * 13 + class * 59) % 200) as u8 + 20;
        sess.ah.desktop_mut().fill(
            win,
            Rect::new((tick % 3) * 48, 0, 48, 48),
            [c, c ^ 0x5a, (class as u8) * 50, 255],
        );
        true // live forever: the bench keeps every session active
    }
}

fn populated_host(n: usize, sharing: CacheSharing) -> MultiHost {
    let mut host = MultiHost::new(HostConfig {
        capture_interval_us: INTERVAL_US,
        pool_workers: 2,
        ..HostConfig::default()
    });
    for i in 0..n {
        let (d, win) = desktop();
        let idx = host.add_session(d, AhConfig::default(), i as u64, sharing);
        host.session_mut(idx).add_udp_participant(
            Layout::Original,
            LinkConfig {
                delay_us: 2_000,
                ..LinkConfig::default()
            },
            LinkConfig::default(),
            None,
            i as u64 ^ 0x77,
        );
        host.set_workload(idx, workload(i % 4, win));
    }
    // Warm up: initial refresh bursts and first-frame cache misses.
    host.run_until(INTERVAL_US * 8);
    host
}

/// One capture interval across all tenants, scaling the tenant count.
fn bench_host_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_step_interval");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        let mut host = populated_host(n, CacheSharing::Shared);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sessions", n), &n, |b, _| {
            b.iter(|| {
                let t = host.now_us() + INTERVAL_US;
                host.run_until(t);
                host.session_steps(0)
            })
        });
    }
    group.finish();
}

/// The price of tenant isolation: identical tenants with and without
/// cross-session sharing.
fn bench_sharing_vs_private(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_step_64_sessions");
    group.sample_size(10);
    for (label, sharing) in [
        ("shared", CacheSharing::Shared),
        ("private", CacheSharing::Private),
    ] {
        let mut host = populated_host(64, sharing);
        group.bench_with_input(BenchmarkId::new("cache", label), &label, |b, _| {
            b.iter(|| {
                let t = host.now_us() + INTERVAL_US;
                host.run_until(t);
                host.session_steps(0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_host_step, bench_sharing_vs_private);
criterion_main!(benches);
