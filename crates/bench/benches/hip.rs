//! E8 — HIP event-path cost: message encode/decode and full packetize →
//! RTP → depacketize, per event type. The draft's input path must stay
//! cheap enough that event latency is network-bound, not CPU-bound.

use adshare_remoting::hip::HipMessage;
use adshare_remoting::packetizer::{depacketize_hip, HipPacketizer};
use adshare_remoting::registry::MouseButton;
use adshare_remoting::WindowId;
use adshare_rtp::session::RtpSender;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn events() -> Vec<(&'static str, HipMessage)> {
    let w = WindowId(3);
    vec![
        (
            "mouse_moved",
            HipMessage::MouseMoved {
                window_id: w,
                left: 512,
                top: 384,
            },
        ),
        (
            "mouse_pressed",
            HipMessage::MousePressed {
                window_id: w,
                button: MouseButton::Left,
                left: 512,
                top: 384,
            },
        ),
        (
            "wheel",
            HipMessage::MouseWheelMoved {
                window_id: w,
                left: 512,
                top: 384,
                distance: -120,
            },
        ),
        (
            "key_pressed",
            HipMessage::KeyPressed {
                window_id: w,
                key_code: 0x41,
            },
        ),
        (
            "key_typed_short",
            HipMessage::KeyTyped {
                window_id: w,
                text: "a".into(),
            },
        ),
        (
            "key_typed_paste",
            HipMessage::KeyTyped {
                window_id: w,
                text: "lorem ipsum ".repeat(40),
            },
        ),
    ]
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("hip_wire");
    for (name, msg) in events() {
        group.bench_with_input(BenchmarkId::new("encode", name), &msg, |b, m| {
            b.iter(|| m.encode())
        });
        let wire = msg.encode();
        group.bench_with_input(BenchmarkId::new("decode", name), &wire, |b, w| {
            b.iter(|| HipMessage::decode(w).expect("valid"))
        });
    }
    group.finish();
}

fn bench_full_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("hip_full_path");
    for (name, msg) in events() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &msg, |b, m| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut p = HipPacketizer::new(RtpSender::new(7, 100, &mut rng), 1400);
            b.iter(|| {
                let pkts = p.packetize(m, 90_000).expect("packetize");
                let mut out = Vec::with_capacity(pkts.len());
                for pkt in &pkts {
                    let wire = pkt.encode();
                    let back = adshare_rtp::packet::RtpPacket::decode(&wire).expect("rtp");
                    out.push(depacketize_hip(&back).expect("hip"));
                }
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire, bench_full_path);
criterion_main!(benches);
