//! E1/E22 (micro side) — whole-codec encode/decode throughput per content
//! class, plus the kernels underneath them: the 8×8 DCT (naive f32 vs
//! fixed-point scalar vs fixed-point vector) and the DEFLATE match loop
//! per level. The PNG scanline filter pass is exercised through the
//! whole-codec encode group (filters are not public API).

use adshare_bench::Content;
use adshare_codec::codec::{AnyCodec, Codec};
use adshare_codec::deflate::{deflate, Level};
use adshare_codec::{dct, CodecKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_320x240");
    group.throughput(Throughput::Bytes(320 * 240 * 4));
    group.sample_size(20);
    for content in [Content::Ui, Content::Photo] {
        let img = content.frame(320, 240, 3);
        for kind in [
            CodecKind::Png,
            CodecKind::Dct,
            CodecKind::Rle,
            CodecKind::Raw,
        ] {
            let codec = AnyCodec::new(kind);
            group.bench_with_input(
                BenchmarkId::new(kind.encoding_name(), content.name()),
                &img,
                |b, img| b.iter(|| codec.encode(img)),
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_320x240");
    group.throughput(Throughput::Bytes(320 * 240 * 4));
    group.sample_size(20);
    for content in [Content::Ui, Content::Photo] {
        let img = content.frame(320, 240, 3);
        for kind in [CodecKind::Png, CodecKind::Dct, CodecKind::Rle] {
            let codec = AnyCodec::new(kind);
            let encoded = codec.encode(&img);
            group.bench_with_input(
                BenchmarkId::new(kind.encoding_name(), content.name()),
                &encoded,
                |b, data| b.iter(|| codec.decode(data).expect("valid")),
            );
        }
    }
    group.finish();
}

/// Deterministic blocks with pixel-like dynamic range for the DCT kernels.
fn dct_blocks(n: usize) -> Vec<[i32; 64]> {
    let mut state = 0x1357_9bdfu32;
    (0..n)
        .map(|_| {
            let mut b = [0i32; 64];
            for v in b.iter_mut() {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *v = ((state >> 20) as i32 % 256) - 128;
            }
            b
        })
        .collect()
}

fn bench_dct_kernel(c: &mut Criterion) {
    const N: usize = 256;
    let blocks = dct_blocks(N);
    let mut group = c.benchmark_group("dct_kernel");
    // 8x8 blocks of 4-byte pixels: kernel throughput in pixel bytes.
    group.throughput(Throughput::Bytes((N * 64 * 4) as u64));
    group.sample_size(30);
    group.bench_function("fdct_idct/naive_f32", |b| {
        b.iter(|| {
            for src in &blocks {
                let mut f = [0f32; 64];
                for i in 0..64 {
                    f[i] = src[i] as f32;
                }
                dct::naive::fdct(&mut f);
                dct::naive::idct(&mut f);
                black_box(&f);
            }
        })
    });
    group.bench_function("fdct_idct/reference", |b| {
        b.iter(|| {
            for src in &blocks {
                let mut blk = *src;
                dct::fdct_reference(&mut blk);
                dct::idct_reference(&mut blk);
                black_box(&blk);
            }
        })
    });
    group.bench_function("fdct_idct/fast", |b| {
        b.iter(|| {
            for src in &blocks {
                let mut blk = *src;
                dct::fdct_fast(&mut blk);
                dct::idct_fast(&mut blk);
                black_box(&blk);
            }
        })
    });
    group.finish();
}

fn bench_deflate_levels(c: &mut Criterion) {
    // Filtered-scanline-shaped bytes: the regime the matcher sees most.
    let mut corpus = Vec::with_capacity(64 * 1024);
    for row in 0..320u32 {
        corpus.push((row % 5) as u8);
        for col in 0..50u32 {
            corpus.push((col * 3 % 256) as u8);
            corpus.push((row * 7 % 256) as u8);
            corpus.push(((col ^ row) % 256) as u8);
        }
    }
    let mut group = c.benchmark_group("deflate_pixelish");
    group.throughput(Throughput::Bytes(corpus.len() as u64));
    group.sample_size(20);
    for level in [Level::Fast, Level::Default, Level::Best] {
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{level:?}")),
            &corpus,
            |b, data| b.iter(|| deflate(data, level)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_dct_kernel,
    bench_deflate_levels
);
criterion_main!(benches);
