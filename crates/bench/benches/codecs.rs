//! E1 (micro side) — codec encode/decode throughput per content class.

use adshare_bench::Content;
use adshare_codec::codec::{AnyCodec, Codec};
use adshare_codec::CodecKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_320x240");
    group.throughput(Throughput::Bytes(320 * 240 * 4));
    group.sample_size(20);
    for content in [Content::Ui, Content::Photo] {
        let img = content.frame(320, 240, 3);
        for kind in [
            CodecKind::Png,
            CodecKind::Dct,
            CodecKind::Rle,
            CodecKind::Raw,
        ] {
            let codec = AnyCodec::new(kind);
            group.bench_with_input(
                BenchmarkId::new(kind.encoding_name(), content.name()),
                &img,
                |b, img| b.iter(|| codec.encode(img)),
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_320x240");
    group.throughput(Throughput::Bytes(320 * 240 * 4));
    group.sample_size(20);
    for content in [Content::Ui, Content::Photo] {
        let img = content.frame(320, 240, 3);
        for kind in [CodecKind::Png, CodecKind::Dct, CodecKind::Rle] {
            let codec = AnyCodec::new(kind);
            let encoded = codec.encode(&img);
            group.bench_with_input(
                BenchmarkId::new(kind.encoding_name(), content.name()),
                &encoded,
                |b, data| b.iter(|| codec.decode(data).expect("valid")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
