//! E16 (micro side) — the tile-encode pipeline: pool scaling on a cold
//! cache, cache-hit service time on a warm one, and tile-size grain.

use adshare_bench::Content;
use adshare_codec::codec::{AnyCodec, Codec};
use adshare_codec::{CodecKind, Image, Rect};
use adshare_encode::{tiles, EncodeConfig, EncodePipeline, TileConfig, TileJob};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn jobs(frame: &Image, tile: TileConfig) -> Vec<TileJob> {
    let rect = Rect::new(0, 0, frame.width(), frame.height());
    tiles(rect, tile)
        .into_iter()
        .map(|r| TileJob {
            rect: r,
            image: frame.crop(r).expect("in bounds"),
        })
        .collect()
}

fn png(img: &Image) -> (u8, Vec<u8>) {
    (101, AnyCodec::new(CodecKind::Png).encode(img))
}

/// Cold cache every iteration: pure pool scaling over worker counts.
fn bench_pool_scaling(c: &mut Criterion) {
    let frame = Content::Photo.frame(512, 384, 3);
    let batch = jobs(&frame, TileConfig::square(128));
    let mut group = c.benchmark_group("encode_batch_cold_512x384");
    group.throughput(Throughput::Bytes(512 * 384 * 4));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let mut p = EncodePipeline::new(EncodeConfig {
            workers,
            cross_frame_cache: false,
            ..EncodeConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("workers", workers), &batch, |b, batch| {
            b.iter(|| {
                p.begin_step(); // per-step mode: drops the cache, all miss
                p.encode_batch(0, batch.clone(), png)
            })
        });
    }
    group.finish();
}

/// Warm cache: every tile hits, so this measures lookup + assembly only.
fn bench_cache_hits(c: &mut Criterion) {
    let frame = Content::Ui.frame(512, 384, 3);
    let mut group = c.benchmark_group("encode_batch_warm_512x384");
    group.throughput(Throughput::Bytes(512 * 384 * 4));
    group.sample_size(20);
    for side in [64u32, 128, 256] {
        let batch = jobs(&frame, TileConfig::square(side));
        let mut p = EncodePipeline::new(EncodeConfig::default());
        p.encode_batch(0, batch.clone(), png); // warm
        group.bench_with_input(BenchmarkId::new("tile", side), &batch, |b, batch| {
            b.iter(|| p.encode_batch(0, batch.clone(), png))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_scaling, bench_cache_hits);
criterion_main!(benches);
