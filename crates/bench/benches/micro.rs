//! E11 — micro-costs of the wire formats and substrates: RTP header
//! encode/decode, RFC 4571 framing, DEFLATE levels, PNG filters, damage
//! merging.

use adshare_codec::deflate::{deflate, inflate, Level};
use adshare_codec::png::{decode as png_decode, encode as png_encode, PngOptions};
use adshare_rtp::framing::{frame, Deframer};
use adshare_rtp::header::RtpHeader;
use adshare_rtp::packet::RtpPacket;
use adshare_screen::damage::{DamageTracker, MergeStrategy};
use adshare_screen::Rect;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_rtp_header(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtp");
    let mut h = RtpHeader::new(99, 1234, 0xdeadbeef, 0xcafebabe);
    h.marker = true;
    group.bench_function("header_encode", |b| b.iter(|| h.encode()));
    let pkt = RtpPacket::new(h.clone(), vec![0u8; 1400]);
    let wire = pkt.encode();
    group.bench_function("packet_decode_1400B", |b| {
        b.iter(|| RtpPacket::decode(&wire).expect("valid"))
    });
    group.bench_function("rfc4571_frame_deframe_1400B", |b| {
        b.iter(|| {
            let framed = frame(&wire).expect("frame");
            let mut d = Deframer::default();
            d.push(&framed);
            d.pop().expect("ok").expect("complete")
        })
    });
    group.finish();
}

fn bench_deflate(c: &mut Criterion) {
    let mut group = c.benchmark_group("deflate_64k_text");
    let data = b"the draft defines an rtp payload format for sharing. ".repeat(1260);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(20);
    for (name, level) in [
        ("store", Level::Store),
        ("fast", Level::Fast),
        ("default", Level::Default),
        ("best", Level::Best),
    ] {
        group.bench_with_input(BenchmarkId::new("compress", name), &data, |b, d| {
            b.iter(|| deflate(d, level))
        });
    }
    let compressed = deflate(&data, Level::Default);
    group.bench_function("inflate_default", |b| {
        b.iter(|| inflate(&compressed, 1 << 22).expect("valid"))
    });
    group.finish();
}

fn bench_png(c: &mut Criterion) {
    let mut group = c.benchmark_group("png_320x240");
    group.throughput(Throughput::Bytes(320 * 240 * 4));
    group.sample_size(20);
    let img = adshare_bench::Content::Ui.frame(320, 240, 5);
    group.bench_function("encode_ui", |b| {
        b.iter(|| png_encode(&img, PngOptions::default()))
    });
    let png = png_encode(&img, PngOptions::default());
    group.bench_function("decode_ui", |b| b.iter(|| png_decode(&png).expect("valid")));
    group.finish();
}

fn bench_damage(c: &mut Criterion) {
    let mut group = c.benchmark_group("damage_merge_200_rects");
    let rects: Vec<Rect> = (0..200)
        .map(|i| Rect::new((i * 37) % 1000, (i * 53) % 700, 24, 12))
        .collect();
    for (name, strat) in [
        ("per_rect", MergeStrategy::PerRect),
        ("greedy_130", MergeStrategy::Greedy { slack_percent: 130 }),
        ("bbox", MergeStrategy::BoundingBox),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rects, |b, rects| {
            b.iter(|| {
                let mut t = DamageTracker::new(strat);
                for r in rects {
                    t.add(*r);
                }
                t.take()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rtp_header,
    bench_deflate,
    bench_png,
    bench_damage
);
criterion_main!(benches);
