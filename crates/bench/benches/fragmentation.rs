//! E2 (micro side) — fragment + reassemble throughput across MTUs.

use adshare_remoting::fragment::{fragment, Reassembler};
use adshare_remoting::message::{RegionUpdate, RemotingMessage};
use adshare_remoting::WindowId;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn make_update(size: usize) -> RemotingMessage {
    RemotingMessage::RegionUpdate(RegionUpdate {
        window_id: WindowId(1),
        payload_type: 101,
        left: 10,
        top: 10,
        payload: Bytes::from((0..size).map(|i| (i % 251) as u8).collect::<Vec<u8>>()),
    })
}

fn bench_fragment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragment_64k");
    group.throughput(Throughput::Bytes(64 * 1024));
    let msg = make_update(64 * 1024);
    for mtu in [576usize, 1400, 9000] {
        group.bench_with_input(BenchmarkId::from_parameter(mtu), &mtu, |b, &mtu| {
            b.iter(|| fragment(&msg, mtu).expect("fragment"))
        });
    }
    group.finish();
}

fn bench_reassemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("reassemble_64k");
    group.throughput(Throughput::Bytes(64 * 1024));
    let msg = make_update(64 * 1024);
    for mtu in [576usize, 1400, 9000] {
        let packets = fragment(&msg, mtu).expect("fragment");
        group.bench_with_input(BenchmarkId::from_parameter(mtu), &packets, |b, packets| {
            b.iter(|| {
                let mut r = Reassembler::new();
                let mut out = None;
                for p in packets {
                    if let Some(m) = r.feed(p.marker, &p.payload).expect("feed") {
                        out = Some(m);
                    }
                }
                out.expect("complete")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fragment, bench_reassemble);
criterion_main!(benches);
