//! Shared helpers for the experiment binaries: content generators keyed to
//! the draft's content taxonomy (§2: "artificial rather than natural
//! (photographic) video input"), table printing, and timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use adshare_codec::{Image, Rect};
use adshare_obs::Registry;
use adshare_screen::workload::photo_frame;

/// Content classes used by the codec experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Content {
    /// Flat UI chrome with text-like marks: the "large areas unchanged"
    /// regime.
    Ui,
    /// Rendered text page (dense small glyphs on white).
    Text,
    /// Photographic content with sensor noise.
    Photo,
    /// Computer-rendered smooth gradients (e.g. modern app chrome).
    Gradient,
}

impl Content {
    /// All classes.
    pub const ALL: [Content; 4] = [
        Content::Ui,
        Content::Text,
        Content::Photo,
        Content::Gradient,
    ];

    /// A label for tables.
    pub fn name(self) -> &'static str {
        match self {
            Content::Ui => "ui",
            Content::Text => "text",
            Content::Photo => "photo",
            Content::Gradient => "gradient",
        }
    }

    /// Generate one frame of this content class.
    pub fn frame(self, w: u32, h: u32, seed: u32) -> Image {
        match self {
            Content::Ui => {
                let mut img = Image::filled(w, h, [240, 240, 240, 255]).expect("dims");
                // Title bar, buttons, a few panels.
                img.fill_rect(Rect::new(0, 0, w, 24), [60, 90, 150, 255]);
                img.fill_rect(Rect::new(8, 6, 60, 12), [230, 230, 240, 255]);
                for i in 0..5u32 {
                    img.fill_rect(
                        Rect::new(10 + i * (w / 6), 40, w / 7, 20),
                        [200, 205, 215, 255],
                    );
                }
                img.fill_rect(
                    Rect::new(10, 70, w - 20, h.saturating_sub(84)),
                    [252, 252, 252, 255],
                );
                // Sparse text-ish marks seeded deterministically.
                let mut state = seed | 1;
                for _ in 0..(w * h / 600) {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    let x = (state >> 16) % w.max(1);
                    let y = 70 + ((state >> 4) % h.saturating_sub(80).max(1));
                    img.fill_rect(Rect::new(x, y, 4, 2), [40, 40, 40, 255]);
                }
                img
            }
            Content::Text => {
                let mut img = Image::filled(w, h, [255, 255, 255, 255]).expect("dims");
                let mut state = seed | 1;
                let mut y = 4;
                while y + 10 < h {
                    let mut x = 6;
                    while x + 5 < w {
                        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                        if !state.is_multiple_of(7) {
                            // A "glyph": 2-4 dark strokes.
                            for s in 0..(1 + state % 3) {
                                img.fill_rect(
                                    Rect::new(x + s, y + (s * 3) % 8, 3, 1),
                                    [20, 20, 20, 255],
                                );
                            }
                        }
                        x += 6;
                    }
                    y += 12;
                }
                img
            }
            Content::Photo => photo_frame(w, h, seed),
            Content::Gradient => {
                let mut img = Image::new(w, h).expect("dims");
                for y in 0..h {
                    for x in 0..w {
                        let r = (x * 255 / w.max(1)) as u8;
                        let g = (y * 255 / h.max(1)) as u8;
                        let b = ((x + y) * 128 / (w + h).max(1)) as u8;
                        img.set_pixel(x, y, [r, g, b.wrapping_add((seed % 64) as u8), 255]);
                    }
                }
                img
            }
        }
    }
}

/// Default directory where experiment binaries drop `adshare-obs/v1`
/// registry snapshots (relative to the working directory). Overridable via
/// the `OBS_SNAPSHOT_DIR` environment variable.
pub const OBS_SNAPSHOT_DIR: &str = "target/obs";

/// Write `registry`'s snapshot to `dir/<name>.json` (creating `dir` if
/// needed) and return the path written.
pub fn emit_snapshot_to(registry: &Registry, dir: &Path, name: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, registry.snapshot().to_json())?;
    Ok(path)
}

/// Write `registry`'s `adshare-obs/v1` snapshot to the standard location —
/// `$OBS_SNAPSHOT_DIR` or [`OBS_SNAPSHOT_DIR`] — as `<name>.json`. The
/// emitted document is what `obs_schema_check` validates against
/// `schemas/obs_snapshot.schema.json`.
pub fn emit_snapshot(registry: &Registry, name: &str) -> io::Result<PathBuf> {
    let dir = std::env::var("OBS_SNAPSHOT_DIR").unwrap_or_else(|_| OBS_SNAPSHOT_DIR.to_string());
    emit_snapshot_to(registry, Path::new(&dir), name)
}

/// Print a markdown table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(4)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Time a closure, returning (result, microseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e6)
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_frames_have_expected_character() {
        // UI/text should RLE-compress far better than photo.
        let rle_size = |c: Content| adshare_codec::rle::encode(&c.frame(128, 96, 1)).len();
        let ui = rle_size(Content::Ui);
        let photo = rle_size(Content::Photo);
        assert!(ui * 3 < photo, "ui {ui} vs photo {photo}");
    }

    #[test]
    fn frames_deterministic() {
        for c in Content::ALL {
            assert_eq!(c.frame(64, 48, 9), c.frame(64, 48, 9));
        }
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(17), "17 B");
        assert_eq!(fmt_bytes(20480), "20.0 KiB");
        assert!(fmt_bytes(50 << 20).ends_with("MiB"));
    }

    #[test]
    fn emit_snapshot_writes_parseable_json() {
        let registry = Registry::new();
        registry.counter("test.counter").add(7);
        registry.histogram("test.hist").record(123);
        let dir = std::env::temp_dir().join("adshare-bench-emit-test");
        let path = emit_snapshot_to(&registry, &dir, "snapshot").expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc = adshare_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(adshare_obs::SNAPSHOT_SCHEMA)
        );
        let metrics = doc.get("metrics").expect("metrics object");
        assert_eq!(
            metrics
                .get("test.counter")
                .and_then(|m| m.get("value"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
        assert_eq!(
            metrics
                .get("test.hist")
                .and_then(|m| m.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
