//! E3 — MoveRectangle vs re-encoding for scrolls (draft §5.2.3:
//! "MoveRectangle instructs the participant to move a region ... which is
//! efficient for some drawing operations like scrolls").
//!
//! A document window scrolls N lines; we compare total AH egress with
//! MoveRectangle enabled vs the ablation that re-encodes scrolled pixels,
//! across codecs.

use adshare_bench::print_table;
use adshare_codec::CodecKind;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_screen::workload::{Scrolling, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(use_move: bool, codec: CodecKind, ticks: u32) -> (u64, u64, u64) {
    let mut d = Desktop::new(800, 600);
    let w = d.create_window(1, Rect::new(50, 40, 480, 360), [252, 252, 252, 255]);
    let cfg = AhConfig {
        use_move_rectangle: use_move,
        codec,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 3);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig {
            rate_bps: 1_000_000_000,
            delay_us: 5_000,
            send_buf: 4 << 20,
        },
        LinkConfig::default(),
        4,
    );
    s.run_until(10_000, 20_000_000, |s| s.converged(p))
        .expect("sync");
    let base = s.ah.participant_bytes_sent(s.handle(p));

    let mut wl = Scrolling::new(w, 1);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..ticks {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_000);
    }
    s.run_until(10_000, 30_000_000, |s| s.converged(p))
        .expect("converges");
    let bytes = s.ah.participant_bytes_sent(s.handle(p)) - base;
    (bytes, s.ah.stats().move_msgs, s.ah.stats().region_msgs)
}

fn main() {
    const TICKS: u32 = 60;
    let mut rows = Vec::new();
    for codec in [CodecKind::Png, CodecKind::Rle] {
        let (with_move, moves, regions_a) = run(true, codec, TICKS);
        let (without, _, regions_b) = run(false, codec, TICKS);
        rows.push(vec![
            codec.encoding_name().to_string(),
            format!("{with_move}"),
            format!("{moves}"),
            format!("{regions_a}"),
            format!("{without}"),
            format!("{regions_b}"),
            format!("{:.2}x", without as f64 / with_move as f64),
        ]);
    }
    print_table(
        &format!("E3: {TICKS} scrolled lines — MoveRectangle vs re-encode"),
        &[
            "codec",
            "bytes w/ move",
            "moves",
            "regions",
            "bytes w/o",
            "regions",
            "savings",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  MoveRectangle reduces egress for scrolling on every codec (savings > 1x).");
}
