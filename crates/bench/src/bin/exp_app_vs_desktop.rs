//! E13 — application sharing vs desktop sharing (§2).
//!
//! "Application sharing differs from desktop sharing. In desktop sharing, a
//! computer distributes all screen updates. In application sharing, the AH
//! distributes screen updates if and only if they belong to the shared
//! application's windows."
//!
//! One desktop hosts a presentation (shared) and a busy private chat window.
//! Application sharing transmits only the presentation; desktop sharing
//! pays for the chat traffic too — and leaks it.

use adshare_bench::print_table;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_screen::workload::{Scrolling, Terminal, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(share_everything: bool) -> (u64, u64, usize) {
    let mut d = Desktop::new(1024, 768);
    let slides = d.create_window(1, Rect::new(40, 30, 640, 480), [252, 252, 252, 255]);
    let chat = d.create_window_with_sharing(
        2,
        Rect::new(700, 100, 280, 400),
        [255, 250, 240, 255],
        share_everything,
    );
    let mut s = SimSession::new(d, AhConfig::default(), 91);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig {
            rate_bps: 1_000_000_000,
            delay_us: 10_000,
            send_buf: 8 << 20,
        },
        LinkConfig::default(),
        92,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("sync");
    let base = s.ah.participant_bytes_sent(s.handle(p));

    // Slides advance occasionally; the private chat scrolls constantly.
    let mut deck = Scrolling::new(slides, 1);
    let mut gossip = Terminal::new(chat, 80, 3);
    let mut rng = StdRng::seed_from_u64(93);
    for tick in 0..120 {
        if tick % 40 == 0 {
            deck.tick(s.ah.desktop_mut(), &mut rng);
        }
        gossip.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("settle");
    let bytes = s.ah.participant_bytes_sent(s.handle(p)) - base;
    (
        bytes / 1024,
        s.ah.stats().region_msgs,
        s.participant(p).z_order().len(),
    )
}

fn main() {
    let (app_kib, app_regions, app_windows) = run(false);
    let (desk_kib, desk_regions, desk_windows) = run(true);
    let rows = vec![
        vec![
            "application".to_string(),
            format!("{app_kib}"),
            format!("{app_regions}"),
            format!("{app_windows}"),
            "no".to_string(),
        ],
        vec![
            "desktop".to_string(),
            format!("{desk_kib}"),
            format!("{desk_regions}"),
            format!("{desk_windows}"),
            "yes".to_string(),
        ],
    ];
    print_table(
        "E13: 4 s presentation with a busy private chat window",
        &[
            "mode",
            "egress KiB",
            "region msgs",
            "windows at viewer",
            "chat visible",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  application sharing excludes the chat window entirely: fewer bytes and");
    println!("  the viewer holds only the presentation window — the §2 'if and only if'.");
}
