//! E21 — multi-tenant host scale: thousands of concurrent sharing sessions
//! in one process, flat per-session step cost, and cross-session encode
//! sharing.
//!
//! Two hosted runs differ only in tenant count: a 64-session baseline and a
//! `HOST_SCALE_SESSIONS` (default 1000) run. Every session is an
//! independent world — own desktop, own `AppHost`, own UDP participant —
//! drawing one of four content classes, so same-class tenants produce
//! byte-identical tiles for the process-wide shared cache to deduplicate.
//!
//! Gates (per ISSUE acceptance):
//!
//! * the big run hosts ≥ `HOST_SCALE_SESSIONS` sessions and every one of
//!   them converges and is serviced fairly (steps_min close to steps_max);
//! * per-session step cost is flat: big-run CPU µs/service within ±20% of
//!   the 64-session baseline (scaling adds cache hits, not work);
//! * the shared cache absorbs the cross-tenant redundancy: lookup hit rate
//!   ≥ 50% and misses **per session** strictly shrink as sessions grow.
//!
//! Emits the host stats document (`adshare-host-stats/v1`) and the host
//! registry snapshot (`adshare-obs/v1`) for `obs_schema_check`, plus a
//! machine-readable comparison to `BENCH_host.json`.

use std::path::Path;

use adshare_bench::{print_table, OBS_SNAPSHOT_DIR};
use adshare_codec::Rect;
use adshare_host::{CacheSharing, HostConfig, HostStats, MultiHost};
use adshare_netsim::udp::LinkConfig;
use adshare_screen::wm::WindowId;
use adshare_screen::Desktop;
use adshare_session::{AhConfig, Layout, SimSession};

const INTERVAL_US: u64 = 16_000;
const RUN_US: u64 = 500_000;
const CLASSES: usize = 4;
const WORK_TICKS: u32 = 24;

fn desktop() -> (Desktop, WindowId) {
    let mut d = Desktop::new(320, 240);
    let win = d.create_window(1, Rect::new(16, 16, 192, 128), [24, 48, 72, 255]);
    (d, win)
}

fn link() -> LinkConfig {
    LinkConfig {
        delay_us: 2_000,
        ..LinkConfig::default()
    }
}

/// The per-session workload: content is a pure function of
/// `(class, tick)`, so same-class sessions are byte-identical tenants.
fn workload(class: usize, win: WindowId) -> impl FnMut(&mut SimSession, u64) -> bool + Send {
    let mut tick = 0u32;
    move |sess, _now| {
        tick += 1;
        let c = ((tick as usize * 13 + class * 59) % 200) as u8 + 20;
        let x = (tick % 3) * 48;
        sess.ah.desktop_mut().fill(
            win,
            Rect::new(x, 0, 48, 48),
            [c, c ^ 0x5a, (class as u8) * 50, 255],
        );
        tick < WORK_TICKS
    }
}

struct Outcome {
    stats: HostStats,
    converged: usize,
    host: MultiHost,
}

fn run_host(n: usize, seed: u64) -> Outcome {
    let mut host = MultiHost::new(HostConfig {
        capture_interval_us: INTERVAL_US,
        ..HostConfig::default()
    });
    for i in 0..n {
        let (d, win) = desktop();
        let idx = host.add_session(
            d,
            AhConfig::default(),
            seed ^ i as u64,
            CacheSharing::Shared,
        );
        host.session_mut(idx).add_udp_participant(
            Layout::Original,
            link(),
            link(),
            None,
            seed ^ (i as u64) << 8,
        );
        host.set_workload(idx, workload(i % CLASSES, win));
    }
    host.run_until(RUN_US);
    let converged = (0..n).filter(|&i| host.session(i).converged(0)).count();
    let stats = host.stats();
    Outcome {
        stats,
        converged,
        host,
    }
}

fn per_service_cpu(s: &HostStats) -> f64 {
    s.cpu_us as f64 / s.services.max(1) as f64
}

fn misses_per_session(s: &HostStats) -> f64 {
    s.cache_misses as f64 / s.sessions.max(1) as f64
}

fn row(o: &Outcome) -> Vec<String> {
    let s = &o.stats;
    vec![
        s.sessions.to_string(),
        o.converged.to_string(),
        s.services.to_string(),
        format!("{}..{}", s.steps_min, s.steps_max),
        format!("{:.1}", per_service_cpu(s)),
        format!("{}%", s.cache_hit_rate_pct),
        format!("{:.1}", misses_per_session(s)),
        (s.cache_bytes >> 10).to_string(),
        s.pool_inline_fallbacks.to_string(),
    ]
}

fn bench_entry(o: &Outcome) -> String {
    let s = &o.stats;
    format!(
        concat!(
            "    {{\"sessions\":{},\"services\":{},\"cpu_us\":{},\"wall_us\":{},",
            "\"cpu_us_per_service\":{:.2},\"cache_hits\":{},\"cache_misses\":{},",
            "\"hit_rate_pct\":{},\"cache_kib\":{},\"inline_fallbacks\":{}}}"
        ),
        s.sessions,
        s.services,
        s.cpu_us,
        s.wall_us,
        per_service_cpu(s),
        s.cache_hits,
        s.cache_misses,
        s.cache_hit_rate_pct,
        s.cache_bytes >> 10,
        s.pool_inline_fallbacks,
    )
}

fn main() {
    let sessions: usize = std::env::var("HOST_SCALE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);

    let base = run_host(64, 41);
    let big = run_host(sessions, 43);

    print_table(
        "E21: multi-tenant host scale (4 content classes, 1 viewer/session)",
        &[
            "sessions",
            "converged",
            "services",
            "steps/session",
            "cpu µs/service",
            "cache hit rate",
            "misses/session",
            "cache KiB",
            "inline fallbacks",
        ],
        &[row(&base), row(&big)],
    );

    let base_cost = per_service_cpu(&base.stats);
    let big_cost = per_service_cpu(&big.stats);
    println!("\nchecks:");
    println!(
        "  per-session step cost {base_cost:.1} -> {big_cost:.1} µs/service \
         ({:.2}x); scaling adds cache hits, not work.",
        big_cost / base_cost
    );
    println!(
        "  shared cache hit rate {}% at {} sessions; misses/session shrink \
         {:.1} -> {:.1} because the first tenant of each class pays for all.",
        big.stats.cache_hit_rate_pct,
        big.stats.sessions,
        misses_per_session(&base.stats),
        misses_per_session(&big.stats),
    );

    // Deterministic gates first.
    assert_eq!(
        big.stats.sessions as usize, sessions,
        "host must carry every session"
    );
    assert_eq!(
        big.converged, sessions,
        "every hosted session's viewer must converge"
    );
    assert_eq!(base.converged, 64, "baseline sessions must converge");
    assert!(
        big.stats.cache_hit_rate_pct >= 50,
        "cross-session hit rate {}% below the 50% floor",
        big.stats.cache_hit_rate_pct
    );
    assert!(
        misses_per_session(&big.stats) < misses_per_session(&base.stats),
        "misses per session must shrink as same-class tenants multiply"
    );
    assert!(
        big.stats.steps_min * 2 >= big.stats.steps_max,
        "unfair service spread: {}..{}",
        big.stats.steps_min,
        big.stats.steps_max
    );
    // The wall-clock gate: per-session step cost stays flat (±20%) as the
    // tenant count grows 64 -> 1000+.
    assert!(
        big_cost <= base_cost * 1.2,
        "per-session step cost grew {:.2}x from 64 to {} sessions, want <= 1.2x",
        big_cost / base_cost,
        sessions
    );

    // Export for obs_schema_check: host stats document + registry snapshot.
    let dir = std::env::var("OBS_SNAPSHOT_DIR").unwrap_or_else(|_| OBS_SNAPSHOT_DIR.to_string());
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir).expect("create snapshot dir");
    let stats_path = dir.join("exp_host_scale_host.json");
    std::fs::write(&stats_path, big.stats.to_json()).expect("write host stats");
    println!("\nhost stats:   {}", stats_path.display());
    match adshare_bench::emit_snapshot(big.host.registry(), "exp_host_scale") {
        Ok(path) => println!("obs snapshot: {}", path.display()),
        Err(e) => eprintln!("obs snapshot write failed: {e}"),
    }

    let json = format!(
        "{{\n  \"schema\": \"adshare-bench-host/v1\",\n  \"runs\": [\n{},\n{}\n  ]\n}}\n",
        bench_entry(&base),
        bench_entry(&big)
    );
    let out = std::env::var("BENCH_HOST_OUT").unwrap_or_else(|_| "BENCH_host.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("bench json:   {out}"),
        Err(e) => eprintln!("bench json write failed: {e}"),
    }
}
