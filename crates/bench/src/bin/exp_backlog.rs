//! E4 — The §7 TCP freshness policy: "monitor the state of their TCP
//! transmission buffers ... and only send the most recent screen data when
//! there is no backlog. This will prevent screen latency for
//! rapidly-changing images."
//!
//! A video region changes at ~30 fps over links from 512 kbit/s to
//! 16 Mbit/s. After the source stops changing, we measure how long the
//! viewer takes to show the final frame (catch-up latency) for the policy
//! sender vs the naive queue-everything sender.

use adshare_bench::print_table;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_screen::workload::{Video, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(policy: bool, rate_bps: u64) -> (f64, u64, u64, f64, f64) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 320, 240), [245, 245, 245, 255]);
    let cfg = AhConfig {
        tcp_freshness_policy: policy,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 42);
    let link = TcpConfig {
        rate_bps,
        delay_us: 20_000,
        send_buf: 32 * 1024,
    };
    let p = s.add_tcp_participant(Layout::Original, link, LinkConfig::default(), 43);
    s.run_until(10_000, 120_000_000, |s| s.converged(p))
        .expect("initial sync");

    let mut wl = Video::new(w, Rect::new(20, 20, 240, 180));
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..60 {
        // 2 seconds of 30 fps change
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let stop = s.clock.now_us();
    let settle = s
        .run_until(10_000, 300_000_000, |s| s.converged(p))
        .map(|_| (s.clock.now_us() - stop) as f64 / 1000.0)
        .unwrap_or(f64::NAN);
    let (p50, p95) = s
        .participant(p)
        .latency_summary_us()
        .map(|(a, b, _)| (a as f64 / 1000.0, b as f64 / 1000.0))
        .unwrap_or((f64::NAN, f64::NAN));
    (
        settle,
        s.ah.participant_bytes_sent(s.handle(p)),
        s.ah.stats().region_msgs,
        p50,
        p95,
    )
}

fn main() {
    let mut rows = Vec::new();
    for rate in [512_000u64, 1_000_000, 4_000_000, 16_000_000] {
        let (settle_on, bytes_on, updates_on, p50_on, p95_on) = run(true, rate);
        let (settle_off, bytes_off, updates_off, p50_off, p95_off) = run(false, rate);
        rows.push(vec![
            format!("{:.1}", rate as f64 / 1e6),
            format!("{settle_on:.0}"),
            format!("{settle_off:.0}"),
            format!("{p50_on:.0}/{p95_on:.0}"),
            format!("{p50_off:.0}/{p95_off:.0}"),
            format!("{}", updates_on),
            format!("{}", updates_off),
            format!("{}", bytes_on / 1024),
            format!("{}", bytes_off / 1024),
        ]);
    }
    print_table(
        "E4: catch-up latency after a 2 s video burst (freshness policy vs naive)",
        &[
            "link Mbit/s",
            "settle ms (policy)",
            "settle ms (naive)",
            "lat p50/p95 ms (policy)",
            "lat p50/p95 ms (naive)",
            "updates (policy)",
            "updates (naive)",
            "KiB (policy)",
            "KiB (naive)",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  on constrained links the policy settles much faster and sends fewer,");
    println!("  fresher updates; on fast links the two coincide (policy never engages).");
}
