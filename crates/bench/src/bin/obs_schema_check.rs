//! Validate `adshare-obs/v1` snapshot files against the checked-in schema.
//!
//! Usage:
//!
//! ```text
//! obs_schema_check [--schema schemas/obs_snapshot.schema.json] [FILE ...]
//! ```
//!
//! With no FILE arguments every `*.json` under `$OBS_SNAPSHOT_DIR` (default
//! `target/obs`, where the `exp_*` bins drop their snapshots) is checked.
//! Exits non-zero when any document fails to parse or violates the schema.
//!
//! The validator interprets the subset of JSON Schema the checked-in file
//! uses — `required`, `const`, `type: object|integer|array`, `minimum`,
//! `minItems`/`maxItems`, `items`, and `oneOf` over `#/definitions/...`
//! refs — so the schema file itself is load-bearing: edits to its `required`
//! lists or bounds change what this bin accepts.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adshare_obs::json::{parse, Json};

const DEFAULT_SCHEMA: &str = "schemas/obs_snapshot.schema.json";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut schema_path = DEFAULT_SCHEMA.to_string();
    if let Some(i) = args.iter().position(|a| a == "--schema") {
        args.remove(i);
        if i < args.len() {
            schema_path = args.remove(i);
        } else {
            eprintln!("--schema requires a path argument");
            return ExitCode::FAILURE;
        }
    }

    let schema = match load_json(Path::new(&schema_path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load schema {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let files: Vec<PathBuf> = if args.is_empty() {
        let dir = std::env::var("OBS_SNAPSHOT_DIR")
            .unwrap_or_else(|_| adshare_bench::OBS_SNAPSHOT_DIR.to_string());
        match list_json_files(Path::new(&dir)) {
            Ok(files) if !files.is_empty() => files,
            Ok(_) => {
                eprintln!(
                    "no *.json files under {dir}; run the emitting bins first \
                     (e.g. exp_loss_recovery, exp_fanout)"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("cannot read snapshot dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut failed = false;
    for file in &files {
        match load_json(file).and_then(|doc| validate_snapshot(&schema, &doc)) {
            Ok(n_metrics) => println!("OK   {} ({n_metrics} metrics)", file.display()),
            Err(e) => {
                eprintln!("FAIL {}: {e}", file.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text)
}

fn list_json_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Validate `doc` as a snapshot per `schema`; returns the metric count.
fn validate_snapshot(schema: &Json, doc: &Json) -> Result<usize, String> {
    // Top-level required keys.
    for key in required_keys(schema)? {
        if doc.get(key).is_none() {
            return Err(format!("missing required top-level field {key:?}"));
        }
    }
    // The schema marker must match the declared const.
    let expected = schema
        .get("properties")
        .and_then(|p| p.get("schema"))
        .and_then(|s| s.get("const"))
        .and_then(|c| c.as_str())
        .ok_or("schema file lacks properties.schema.const")?;
    let got = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or("\"schema\" is not a string")?;
    if got != expected {
        return Err(format!("schema is {got:?}, expected {expected:?}"));
    }

    let definitions = schema
        .get("definitions")
        .and_then(|d| d.as_object())
        .ok_or("schema file lacks definitions")?;
    let metrics = doc
        .get("metrics")
        .and_then(|m| m.as_object())
        .ok_or("\"metrics\" is not an object")?;
    for (name, metric) in metrics {
        validate_metric(definitions, name, metric).map_err(|e| format!("metric {name:?}: {e}"))?;
    }
    Ok(metrics.len())
}

/// A metric object must match the definition its `type` field names.
fn validate_metric(
    definitions: &std::collections::BTreeMap<String, Json>,
    _name: &str,
    metric: &Json,
) -> Result<(), String> {
    let kind = metric
        .get("type")
        .and_then(|t| t.as_str())
        .ok_or("missing string field \"type\"")?;
    let def = definitions
        .get(kind)
        .ok_or_else(|| format!("unknown metric type {kind:?}"))?;
    for key in required_keys(def)? {
        let value = metric
            .get(key)
            .ok_or_else(|| format!("missing required field {key:?}"))?;
        if let Some(prop) = def.get("properties").and_then(|p| p.get(key)) {
            validate_value(prop, value).map_err(|e| format!("field {key:?}: {e}"))?;
        }
    }
    Ok(())
}

fn required_keys(schema: &Json) -> Result<Vec<&str>, String> {
    schema
        .get("required")
        .and_then(|r| r.as_array())
        .ok_or("missing \"required\" list")?
        .iter()
        .map(|k| k.as_str().ok_or_else(|| "non-string required key".into()))
        .collect()
}

/// Check `value` against one property schema (the subset we emit: `const`
/// strings, bounded integers, and arrays with item schemas).
fn validate_value(prop: &Json, value: &Json) -> Result<(), String> {
    if let Some(expected) = prop.get("const").and_then(|c| c.as_str()) {
        return match value.as_str() {
            Some(s) if s == expected => Ok(()),
            other => Err(format!("expected const {expected:?}, got {other:?}")),
        };
    }
    match prop.get("type").and_then(|t| t.as_str()) {
        Some("integer") => {
            let n = value.as_i64().ok_or("not an integer")?;
            if let Some(min) = prop.get("minimum").and_then(|m| m.as_i64()) {
                if n < min {
                    return Err(format!("{n} below minimum {min}"));
                }
            }
            Ok(())
        }
        Some("array") => {
            let items = value.as_array().ok_or("not an array")?;
            if let Some(min) = prop.get("minItems").and_then(|m| m.as_u64()) {
                if (items.len() as u64) < min {
                    return Err(format!("{} items, minItems {min}", items.len()));
                }
            }
            if let Some(max) = prop.get("maxItems").and_then(|m| m.as_u64()) {
                if (items.len() as u64) > max {
                    return Err(format!("{} items, maxItems {max}", items.len()));
                }
            }
            if let Some(item_schema) = prop.get("items") {
                for (i, item) in items.iter().enumerate() {
                    validate_value(item_schema, item).map_err(|e| format!("item {i}: {e}"))?;
                }
            }
            Ok(())
        }
        Some("object") => value.as_object().map(|_| ()).ok_or("not an object".into()),
        Some(other) => Err(format!("unsupported schema type {other:?}")),
        None => Ok(()),
    }
}
