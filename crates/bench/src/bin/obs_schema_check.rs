//! Validate adshare observability JSON documents against the checked-in
//! schemas.
//!
//! Usage:
//!
//! ```text
//! obs_schema_check [--schema-dir schemas] [FILE ...]
//! ```
//!
//! With no FILE arguments every `*.json` under `$OBS_SNAPSHOT_DIR` (default
//! `target/obs`, where the `exp_*` bins drop their snapshots) is checked.
//! Each document is dispatched on its top-level `"schema"` marker:
//!
//! | marker                 | schema file                        |
//! |------------------------|------------------------------------|
//! | `adshare-obs/v1`       | `obs_snapshot.schema.json`         |
//! | `adshare-obs-events/v1`| `obs_events.schema.json`           |
//! | `adshare-health/v1`    | `health_report.schema.json`        |
//! | `adshare-blackbox/v1`  | embedded report + events + snapshot |
//! | `adshare-relay-stats/v1` | `relay_stats.schema.json`        |
//! | `adshare-relay-tier-stats/v1` | `relay_tier_stats.schema.json` |
//! | `adshare-scenario/v1`  | `scenario_result.schema.json`      |
//! | `adshare-host-stats/v1` | `host_stats.schema.json`          |
//! | `adshare-bench-codecs/v1` | `bench_codecs.schema.json`      |
//! | `adshare-capture-manifest/v1` | `capture_manifest.schema.json` |
//!
//! Exits non-zero when any document fails to parse, carries an unknown
//! marker, or violates its schema.
//!
//! The validator interprets the subset of JSON Schema the checked-in files
//! use — `required`, `properties`, `const`, `enum`,
//! `type: object|integer|number|string|array`, `minimum`,
//! `minItems`/`maxItems`, `items`, and `$ref` into `#/definitions/...` —
//! so the schema files themselves are load-bearing: edits to their
//! `required` lists or bounds change what this bin accepts.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adshare_obs::json::{parse, Json};

const DEFAULT_SCHEMA_DIR: &str = "schemas";
const SNAPSHOT_SCHEMA_FILE: &str = "obs_snapshot.schema.json";
const EVENTS_SCHEMA_FILE: &str = "obs_events.schema.json";
const HEALTH_SCHEMA_FILE: &str = "health_report.schema.json";
const RELAY_SCHEMA_FILE: &str = "relay_stats.schema.json";
const TIER_SCHEMA_FILE: &str = "relay_tier_stats.schema.json";
const SCENARIO_SCHEMA_FILE: &str = "scenario_result.schema.json";
const HOST_SCHEMA_FILE: &str = "host_stats.schema.json";
const BENCH_CODECS_SCHEMA_FILE: &str = "bench_codecs.schema.json";
const CAPTURE_MANIFEST_SCHEMA_FILE: &str = "capture_manifest.schema.json";

/// The loaded schema documents, keyed by the marker they validate.
struct Schemas {
    snapshot: Json,
    events: Json,
    health: Json,
    relay: Json,
    tier: Json,
    scenario: Json,
    host: Json,
    bench_codecs: Json,
    capture_manifest: Json,
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut schema_dir = DEFAULT_SCHEMA_DIR.to_string();
    if let Some(i) = args.iter().position(|a| a == "--schema-dir") {
        args.remove(i);
        if i < args.len() {
            schema_dir = args.remove(i);
        } else {
            eprintln!("--schema-dir requires a path argument");
            return ExitCode::FAILURE;
        }
    }

    let dir = Path::new(&schema_dir);
    let schemas = match load_schemas(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load schemas from {schema_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let files: Vec<PathBuf> = if args.is_empty() {
        let dir = std::env::var("OBS_SNAPSHOT_DIR")
            .unwrap_or_else(|_| adshare_bench::OBS_SNAPSHOT_DIR.to_string());
        match list_json_files(Path::new(&dir)) {
            Ok(files) if !files.is_empty() => files,
            Ok(_) => {
                eprintln!(
                    "no *.json files under {dir}; run the emitting bins first \
                     (e.g. exp_loss_recovery, exp_health)"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("cannot read snapshot dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut failed = false;
    for file in &files {
        match load_json(file).and_then(|doc| validate_document(&schemas, &doc)) {
            Ok(summary) => println!("OK   {} ({summary})", file.display()),
            Err(e) => {
                eprintln!("FAIL {}: {e}", file.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load_schemas(dir: &Path) -> Result<Schemas, String> {
    Ok(Schemas {
        snapshot: load_json(&dir.join(SNAPSHOT_SCHEMA_FILE))
            .map_err(|e| format!("{SNAPSHOT_SCHEMA_FILE}: {e}"))?,
        events: load_json(&dir.join(EVENTS_SCHEMA_FILE))
            .map_err(|e| format!("{EVENTS_SCHEMA_FILE}: {e}"))?,
        health: load_json(&dir.join(HEALTH_SCHEMA_FILE))
            .map_err(|e| format!("{HEALTH_SCHEMA_FILE}: {e}"))?,
        relay: load_json(&dir.join(RELAY_SCHEMA_FILE))
            .map_err(|e| format!("{RELAY_SCHEMA_FILE}: {e}"))?,
        tier: load_json(&dir.join(TIER_SCHEMA_FILE))
            .map_err(|e| format!("{TIER_SCHEMA_FILE}: {e}"))?,
        scenario: load_json(&dir.join(SCENARIO_SCHEMA_FILE))
            .map_err(|e| format!("{SCENARIO_SCHEMA_FILE}: {e}"))?,
        host: load_json(&dir.join(HOST_SCHEMA_FILE))
            .map_err(|e| format!("{HOST_SCHEMA_FILE}: {e}"))?,
        bench_codecs: load_json(&dir.join(BENCH_CODECS_SCHEMA_FILE))
            .map_err(|e| format!("{BENCH_CODECS_SCHEMA_FILE}: {e}"))?,
        capture_manifest: load_json(&dir.join(CAPTURE_MANIFEST_SCHEMA_FILE))
            .map_err(|e| format!("{CAPTURE_MANIFEST_SCHEMA_FILE}: {e}"))?,
    })
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text)
}

fn list_json_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Dispatch one document on its `"schema"` marker; returns a short summary.
fn validate_document(schemas: &Schemas, doc: &Json) -> Result<String, String> {
    let marker = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing string field \"schema\"")?;
    match marker {
        "adshare-obs/v1" => {
            validate_snapshot(&schemas.snapshot, doc).map(|n| format!("{n} metrics"))
        }
        "adshare-obs-events/v1" => validate_events(&schemas.events, doc),
        "adshare-health/v1" => validate_health(&schemas.health, doc),
        "adshare-blackbox/v1" => validate_blackbox(schemas, doc),
        "adshare-relay-stats/v1" => validate_relay(&schemas.relay, doc),
        "adshare-relay-tier-stats/v1" => validate_tier(&schemas.tier, doc),
        "adshare-scenario/v1" => validate_scenario(&schemas.scenario, doc),
        "adshare-host-stats/v1" => validate_host(&schemas.host, doc),
        "adshare-bench-codecs/v1" => validate_bench_codecs(&schemas.bench_codecs, doc),
        "adshare-capture-manifest/v1" => validate_capture_manifest(&schemas.capture_manifest, doc),
        other => Err(format!("unknown schema marker {other:?}")),
    }
}

fn validate_events(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let n = doc
        .get("events")
        .and_then(|e| e.as_array())
        .map_or(0, |e| e.len());
    Ok(format!("{n} events"))
}

fn validate_relay(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let legs = doc.get("legs").and_then(|l| l.as_u64()).unwrap_or(0);
    let hits = doc
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(|h| h.as_u64())
        .unwrap_or(0);
    Ok(format!("{legs} legs, {hits} cache hits"))
}

fn validate_tier(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let legs = doc
        .get("legs")
        .and_then(|l| l.as_array())
        .map_or(0, |l| l.len());
    let upstream = doc
        .get("upstream_tier")
        .and_then(|t| t.as_u64())
        .unwrap_or(0);
    Ok(format!("{legs} tiered legs, upstream tier {upstream}"))
}

fn validate_host(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let sessions = doc.get("sessions").and_then(|s| s.as_u64()).unwrap_or(0);
    let rate = doc
        .get("cache")
        .and_then(|c| c.get("hit_rate_pct"))
        .and_then(|r| r.as_u64())
        .unwrap_or(0);
    Ok(format!("{sessions} sessions, {rate}% cache hit rate"))
}

fn validate_bench_codecs(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let speedup = match doc.get("dct").and_then(|d| d.get("speedup_fast_vs_naive")) {
        Some(Json::Num(n)) => *n,
        _ => 0.0,
    };
    let gate = matches!(
        doc.get("checks")
            .and_then(|c| c.get("dct_fast_ge_2x_naive")),
        Some(Json::Bool(true))
    );
    if !gate {
        return Err(format!(
            "dct_fast_ge_2x_naive is false (speedup {speedup:.2}x)"
        ));
    }
    Ok(format!("DCT fast {speedup:.2}x naive, gate passed"))
}

fn validate_scenario(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let name = doc.get("name").and_then(|n| n.as_str()).unwrap_or("?");
    let passed = matches!(doc.get("passed"), Some(Json::Bool(true)));
    let violations = doc
        .get("violations")
        .and_then(|v| v.as_array())
        .map_or(0, |v| v.len());
    Ok(format!(
        "{name}: {}, {violations} violations",
        if passed { "passed" } else { "FAILED" }
    ))
}

fn validate_capture_manifest(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let records = doc.get("records").and_then(|r| r.as_u64()).unwrap_or(0);
    let truncated = matches!(doc.get("truncated"), Some(Json::Bool(true)));
    let truncated_records = doc
        .get("truncated_records")
        .and_then(|r| r.as_u64())
        .unwrap_or(0);
    // Truncation must be reported consistently: a manifest claiming
    // truncated=false with dropped records (or vice versa) is lying.
    if truncated != (truncated_records > 0) {
        return Err(format!(
            "inconsistent truncation report: truncated={truncated} \
             but truncated_records={truncated_records}"
        ));
    }
    let surfaces = doc
        .get("surface_digests")
        .and_then(|s| s.as_array())
        .map_or(0, |s| s.len());
    Ok(format!(
        "{records} records, {surfaces} surface digest(s){}",
        if truncated {
            format!(", TRUNCATED ({truncated_records} dropped)")
        } else {
            String::new()
        }
    ))
}

fn validate_health(schema: &Json, doc: &Json) -> Result<String, String> {
    validate_node(schema, schema, doc)?;
    let overall = doc.get("overall").and_then(|o| o.as_str()).unwrap_or("?");
    let n = doc
        .get("rules")
        .and_then(|r| r.as_array())
        .map_or(0, |r| r.len());
    Ok(format!("overall {overall}, {n} rules"))
}

/// A black box embeds one document of each other kind; validate all three.
fn validate_blackbox(schemas: &Schemas, doc: &Json) -> Result<String, String> {
    let at_us = doc
        .get("at_us")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"at_us\"")?;
    let report = doc.get("report").ok_or("missing field \"report\"")?;
    let report_summary =
        validate_health(&schemas.health, report).map_err(|e| format!("report: {e}"))?;
    let events = doc.get("events").ok_or("missing field \"events\"")?;
    let events_summary =
        validate_events(&schemas.events, events).map_err(|e| format!("events: {e}"))?;
    let snapshot = doc.get("snapshot").ok_or("missing field \"snapshot\"")?;
    validate_snapshot(&schemas.snapshot, snapshot).map_err(|e| format!("snapshot: {e}"))?;
    Ok(format!(
        "blackbox at {at_us} µs: {report_summary}, {events_summary}"
    ))
}

/// Validate `doc` as a snapshot per `schema`; returns the metric count.
///
/// Snapshots keep a dedicated path because their `metrics` object dispatches
/// each entry on its `type` field against `#/definitions/...` (the schema
/// expresses this as `additionalProperties`/`oneOf`, which the generic
/// walker does not interpret).
fn validate_snapshot(schema: &Json, doc: &Json) -> Result<usize, String> {
    // Top-level required keys.
    for key in required_keys(schema)? {
        if doc.get(key).is_none() {
            return Err(format!("missing required top-level field {key:?}"));
        }
    }
    // The schema marker must match the declared const.
    let expected = schema
        .get("properties")
        .and_then(|p| p.get("schema"))
        .and_then(|s| s.get("const"))
        .and_then(|c| c.as_str())
        .ok_or("schema file lacks properties.schema.const")?;
    let got = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or("\"schema\" is not a string")?;
    if got != expected {
        return Err(format!("schema is {got:?}, expected {expected:?}"));
    }

    let definitions = schema
        .get("definitions")
        .and_then(|d| d.as_object())
        .ok_or("schema file lacks definitions")?;
    let metrics = doc
        .get("metrics")
        .and_then(|m| m.as_object())
        .ok_or("\"metrics\" is not an object")?;
    for (name, metric) in metrics {
        validate_metric(schema, definitions, name, metric)
            .map_err(|e| format!("metric {name:?}: {e}"))?;
    }
    Ok(metrics.len())
}

/// A metric object must match the definition its `type` field names.
fn validate_metric(
    root: &Json,
    definitions: &std::collections::BTreeMap<String, Json>,
    _name: &str,
    metric: &Json,
) -> Result<(), String> {
    let kind = metric
        .get("type")
        .and_then(|t| t.as_str())
        .ok_or("missing string field \"type\"")?;
    let def = definitions
        .get(kind)
        .ok_or_else(|| format!("unknown metric type {kind:?}"))?;
    for key in required_keys(def)? {
        let value = metric
            .get(key)
            .ok_or_else(|| format!("missing required field {key:?}"))?;
        if let Some(prop) = def.get("properties").and_then(|p| p.get(key)) {
            validate_node(root, prop, value).map_err(|e| format!("field {key:?}: {e}"))?;
        }
    }
    Ok(())
}

fn required_keys(schema: &Json) -> Result<Vec<&str>, String> {
    schema
        .get("required")
        .and_then(|r| r.as_array())
        .ok_or("missing \"required\" list")?
        .iter()
        .map(|k| k.as_str().ok_or_else(|| "non-string required key".into()))
        .collect()
}

/// Check `value` against one schema fragment, resolving `$ref` against
/// `root`'s `definitions`. Supports the subset we emit: `const`/`enum`
/// strings, bounded integers, numbers, strings, arrays with item schemas,
/// and objects with `required`/`properties` recursion.
fn validate_node(root: &Json, node: &Json, value: &Json) -> Result<(), String> {
    if let Some(target) = node.get("$ref").and_then(|r| r.as_str()) {
        let name = target
            .strip_prefix("#/definitions/")
            .ok_or_else(|| format!("unsupported $ref {target:?}"))?;
        let def = root
            .get("definitions")
            .and_then(|d| d.get(name))
            .ok_or_else(|| format!("$ref to unknown definition {name:?}"))?;
        return validate_node(root, def, value);
    }
    if let Some(expected) = node.get("const").and_then(|c| c.as_str()) {
        return match value.as_str() {
            Some(s) if s == expected => Ok(()),
            other => Err(format!("expected const {expected:?}, got {other:?}")),
        };
    }
    if let Some(options) = node.get("enum").and_then(|e| e.as_array()) {
        let s = value.as_str().ok_or("enum value is not a string")?;
        return if options.iter().any(|o| o.as_str() == Some(s)) {
            Ok(())
        } else {
            Err(format!("{s:?} not in enum"))
        };
    }
    match node.get("type").and_then(|t| t.as_str()) {
        Some("integer") => {
            let n = value.as_i64().ok_or("not an integer")?;
            if let Some(min) = node.get("minimum").and_then(|m| m.as_i64()) {
                if n < min {
                    return Err(format!("{n} below minimum {min}"));
                }
            }
            Ok(())
        }
        Some("number") => match value {
            Json::Num(_) => Ok(()),
            _ => Err("not a number".into()),
        },
        Some("string") => value.as_str().map(|_| ()).ok_or("not a string".into()),
        Some("boolean") => match value {
            Json::Bool(_) => Ok(()),
            _ => Err("not a boolean".into()),
        },
        Some("array") => {
            let items = value.as_array().ok_or("not an array")?;
            if let Some(min) = node.get("minItems").and_then(|m| m.as_u64()) {
                if (items.len() as u64) < min {
                    return Err(format!("{} items, minItems {min}", items.len()));
                }
            }
            if let Some(max) = node.get("maxItems").and_then(|m| m.as_u64()) {
                if (items.len() as u64) > max {
                    return Err(format!("{} items, maxItems {max}", items.len()));
                }
            }
            if let Some(item_schema) = node.get("items") {
                for (i, item) in items.iter().enumerate() {
                    validate_node(root, item_schema, item).map_err(|e| format!("item {i}: {e}"))?;
                }
            }
            Ok(())
        }
        Some("object") => {
            let obj = value.as_object().ok_or("not an object")?;
            if node.get("required").is_some() {
                for key in required_keys(node)? {
                    let field = obj
                        .get(key)
                        .ok_or_else(|| format!("missing required field {key:?}"))?;
                    if let Some(prop) = node.get("properties").and_then(|p| p.get(key)) {
                        validate_node(root, prop, field)
                            .map_err(|e| format!("field {key:?}: {e}"))?;
                    }
                }
            }
            Ok(())
        }
        Some(other) => Err(format!("unsupported schema type {other:?}")),
        None => Ok(()),
    }
}
