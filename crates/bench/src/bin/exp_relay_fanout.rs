//! E18 — relay fan-out: AH egress stays flat as relayed participants scale,
//! and downstream loss never leaks upstream.
//!
//! Every run shares one typing workload (same desktop, same seed, same wall
//! time) and differs only in topology and participant count:
//!
//! * **direct N** — classic AH→participant unicast ([`SimSession`]); the
//!   AH's egress grows ~N× and every participant's 2% loss NACKs straight
//!   at the AH.
//! * **relayed N** — AH→relay→N participants ([`RelaySim`]); the AH serves
//!   exactly one receiver, the relay answers downstream NACKs from its
//!   shared retransmit cache, and its upstream NACK count must stay zero.
//! * **cascade** — AH→relay→relay→N; two hops, still one AH leg.
//!
//! Emits the registry snapshot (`adshare-obs/v1`) and the fan-out relay's
//! stats document (`adshare-relay-stats/v1`) for `obs_schema_check`.

use std::path::Path;

use adshare_bench::{emit_snapshot, print_table, OBS_SNAPSHOT_DIR};
use adshare_netsim::udp::LinkConfig;
use adshare_relay::sim::{RelaySim, Upstream};
use adshare_relay::{RelayConfig, RelayStats};
use adshare_screen::workload::{Typing, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_sdp::OfferParams;
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-participant downstream loss in every lossy scenario.
const LOSS: f64 = 0.02;
/// Typing ticks after initial sync (33 ms apart ≈ 4 s of edits).
const WORK_TICKS: usize = 120;
/// Settle steps after the workload (5 ms apart = 3 s), so every run is
/// measured over the same virtual wall time.
const SETTLE_STEPS: usize = 600;

fn desktop() -> (Desktop, adshare_screen::WindowId) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    (d, w)
}

fn lossy() -> LinkConfig {
    LinkConfig {
        loss: LOSS,
        delay_us: 10_000,
        ..Default::default()
    }
}

fn clean() -> LinkConfig {
    LinkConfig {
        delay_us: 10_000,
        ..Default::default()
    }
}

struct DirectOutcome {
    egress: u64,
    converged: bool,
}

/// Direct AH→participant topology: N unicast UDP legs, each 2% lossy.
fn run_direct(n: usize, seed: u64) -> DirectOutcome {
    let (d, w) = desktop();
    let mut s = SimSession::new(d, AhConfig::default(), seed);
    let ids: Vec<usize> = (0..n)
        .map(|i| {
            s.add_udp_participant(
                Layout::Original,
                lossy(),
                clean(),
                None,
                seed + 10 + i as u64,
            )
        })
        .collect();
    s.run_until(10_000, 300_000_000, |s| ids.iter().all(|&p| s.converged(p)))
        .expect("initial sync");
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    for _ in 0..WORK_TICKS {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    for _ in 0..SETTLE_STEPS {
        s.step(5_000);
    }
    let egress = ids
        .iter()
        .map(|&p| s.ah.participant_bytes_sent(s.handle(p)))
        .sum();
    DirectOutcome {
        egress,
        converged: ids.iter().all(|&p| s.converged(p)),
    }
}

struct RelayOutcome {
    egress: u64,
    converged: bool,
    stats: RelayStats,
    hops: u32,
    sim: RelaySim,
    fanout_relay: usize,
}

/// Relay topology: the AH serves one clean leg; the fan-out relay serves N
/// 2%-lossy legs. With `cascade` a second relay is interposed (AH→R0→R1→N).
fn run_relayed(n: usize, cascade: bool, seed: u64) -> RelayOutcome {
    let (d, w) = desktop();
    let mut sim = RelaySim::new(d, AhConfig::default(), &OfferParams::default(), seed);
    let first = sim.add_relay(
        Upstream::Ah,
        RelayConfig::default(),
        clean(),
        clean(),
        seed + 2,
    );
    let fanout = if cascade {
        sim.add_relay(
            Upstream::Relay(first),
            RelayConfig::default(),
            clean(),
            clean(),
            seed + 3,
        )
    } else {
        first
    };
    let ids: Vec<usize> = (0..n)
        .map(|i| {
            sim.add_participant(
                fanout,
                Layout::Original,
                lossy(),
                clean(),
                seed + 10 + i as u64,
            )
        })
        .collect();
    assert!(
        sim.run_until(10_000, 30_000, |s| ids.iter().all(|&p| s.converged(p))),
        "initial sync"
    );
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    for _ in 0..WORK_TICKS {
        wl.tick(sim.ah.desktop_mut(), &mut rng);
        sim.step(33_333);
    }
    for _ in 0..SETTLE_STEPS {
        sim.step(5_000);
    }
    let converged = ids.iter().all(|&p| sim.converged(p));
    RelayOutcome {
        egress: sim.ah_egress_bytes(),
        converged,
        stats: sim.relay(fanout).stats(),
        hops: sim.relay_offer(fanout).relay_hops(),
        sim,
        fanout_relay: fanout,
    }
}

fn kib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

fn ratio(bytes: u64, baseline: u64) -> String {
    format!("{:.2}x", bytes as f64 / baseline as f64)
}

fn main() {
    let direct1 = run_direct(1, 100);
    let direct8 = run_direct(8, 200);
    let direct32 = run_direct(32, 300);
    let relayed1 = run_relayed(1, false, 400);
    let relayed8 = run_relayed(8, false, 500);
    let relayed32 = run_relayed(32, false, 600);
    let cascade8 = run_relayed(8, true, 700);

    let base = relayed1.egress;
    let mut rows = Vec::new();
    for (label, n, egress, conv) in [
        ("direct", 1usize, direct1.egress, direct1.converged),
        ("direct", 8, direct8.egress, direct8.converged),
        ("direct", 32, direct32.egress, direct32.converged),
    ] {
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            "0".to_string(),
            kib(egress),
            ratio(egress, base),
            "-".to_string(),
            "-".to_string(),
            conv.to_string(),
        ]);
    }
    for (label, n, o) in [
        ("relayed", 1usize, &relayed1),
        ("relayed", 8, &relayed8),
        ("relayed", 32, &relayed32),
        ("cascade", 8, &cascade8),
    ] {
        rows.push(vec![
            label.to_string(),
            n.to_string(),
            o.hops.to_string(),
            kib(o.egress),
            ratio(o.egress, base),
            o.stats.nacks_absorbed_seqs.to_string(),
            o.stats.upstream_nacks().to_string(),
            o.converged.to_string(),
        ]);
    }
    print_table(
        "E18: AH egress vs fan-out under 2% downstream loss (4 s typing)",
        &[
            "topology",
            "N",
            "hops",
            "AH egress KiB",
            "vs relayed-1",
            "NACKs absorbed",
            "NACKs upstream",
            "converged",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  direct egress grows ~Nx; relayed egress stays within 10% of the");
    println!("  1-participant baseline at N=8 and N=32 because the AH serves one leg.");
    println!("  The relay repairs downstream loss from its cache: absorbed NACKs > 0,");
    println!("  upstream NACKs == 0, so the AH never sees the lossy edge.");

    for o in [&direct1, &direct8, &direct32] {
        assert!(o.converged, "direct run failed to converge");
    }
    for o in [&relayed1, &relayed8, &relayed32, &cascade8] {
        assert!(o.converged, "relayed run failed to converge");
    }
    for (label, o) in [
        ("relayed-8", &relayed8),
        ("relayed-32", &relayed32),
        ("cascade-8", &cascade8),
    ] {
        let r = o.egress as f64 / base as f64;
        assert!(
            (0.9..=1.1).contains(&r),
            "{label}: AH egress {r:.3}x of 1-participant baseline, want within 10%"
        );
        assert!(
            o.stats.nacks_absorbed_seqs > 0,
            "{label}: relay absorbed no downstream NACKs: {:?}",
            o.stats
        );
        assert_eq!(
            o.stats.upstream_nacks(),
            0,
            "{label}: downstream loss leaked upstream: {:?}",
            o.stats
        );
    }
    assert_eq!(cascade8.hops, 2, "cascade SDP must count two relay hops");
    assert!(
        direct32.egress as f64 > 8.0 * direct1.egress as f64,
        "direct egress should scale with N (got {} vs {})",
        direct32.egress,
        direct1.egress
    );

    // Export for obs_schema_check: registry snapshot + relay stats document.
    let dir = std::env::var("OBS_SNAPSHOT_DIR").unwrap_or_else(|_| OBS_SNAPSHOT_DIR.to_string());
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir).expect("create snapshot dir");
    match emit_snapshot(&relayed32.sim.obs().registry, "exp_relay_fanout") {
        Ok(path) => println!("\nobs snapshot: {}", path.display()),
        Err(e) => eprintln!("obs snapshot write failed: {e}"),
    }
    let stats_path = dir.join("exp_relay_fanout_relay.json");
    let doc = relayed32.sim.relay(relayed32.fanout_relay).stats_json();
    std::fs::write(&stats_path, doc).expect("write relay stats");
    println!("relay stats:  {}", stats_path.display());
}
