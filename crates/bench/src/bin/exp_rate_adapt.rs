//! E15 — closed-loop rate adaptation (`adshare-rate`). A 30 fps video
//! plays over a lossy UDP link whose bandwidth halves mid-run. The fixed
//! sender keeps pacing at the original rate and drowns the link in
//! retransmissions; the adaptive sender backs its estimate off, degrades
//! the codec tier, supersedes stale queued updates, then repairs to the
//! exact final frame once the source goes quiet.
//!
//! Emits an `adshare-obs/v1` snapshot of the adaptive run to
//! `target/obs/exp_rate_adapt.json` (validated by `obs_schema_check`).

use adshare_bench::{emit_snapshot, print_table};
use adshare_netsim::udp::{LinkConfig, LinkStep};
use adshare_rate::RateConfig;
use adshare_screen::workload::{Video, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LINK_BPS: u64 = 4_000_000;

fn link(rate_bps: u64) -> LinkConfig {
    LinkConfig {
        loss: 0.02,
        duplicate: 0.005,
        delay_us: 15_000,
        jitter_us: 2_000,
        rate_bps: Some(rate_bps),
        ..Default::default()
    }
}

struct Outcome {
    wire_kib: u64,
    retransmits: u64,
    superseded: u64,
    decreases: u64,
    rate_kbps: i64,
    settle_ms: Option<u64>,
}

fn run(adaptive: bool) -> Outcome {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 320, 240), [245, 245, 245, 255]);
    let cfg = AhConfig {
        adaptive_rate: adaptive.then(|| RateConfig {
            initial_bps: LINK_BPS,
            lossless_above_bps: 2_500_000,
            ..RateConfig::default()
        }),
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 151);
    let p = s.add_udp_participant(
        Layout::Original,
        link(LINK_BPS),
        LinkConfig::default(),
        Some(LINK_BPS),
        152,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");
    let halve_at = s.clock.now_us() + 1_000_000;
    s.set_link_schedule(
        p,
        vec![LinkStep {
            at_us: halve_at,
            cfg: link(LINK_BPS / 2),
        }],
    );

    let mut wl = Video::new(w, Rect::new(20, 20, 240, 180));
    let mut rng = StdRng::seed_from_u64(153);
    for _ in 0..120 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let wire = s.ah.participant_bytes_sent(s.handle(p));
    let retransmits = s.ah.stats().retransmits;
    let settle_ms = s
        .run_until(10_000, 60_000_000, |s| s.converged(p))
        .map(|us| us / 1000);

    let snap = s.obs().registry.snapshot();
    // Fixed mode never moves the estimate gauge; its rate is the static
    // pacer rate.
    let rate_kbps = if adaptive {
        match snap.get("ah.participant.0.rate.rate_bps") {
            Some(adshare_obs::MetricSnapshot::Gauge(v)) => v / 1000,
            _ => 0,
        }
    } else {
        LINK_BPS as i64 / 1000
    };
    if adaptive {
        match emit_snapshot(&s.obs().registry, "exp_rate_adapt") {
            Ok(path) => println!("obs snapshot: {}", path.display()),
            Err(e) => eprintln!("obs snapshot write failed: {e}"),
        }
    }
    Outcome {
        wire_kib: wire / 1024,
        retransmits,
        superseded: snap
            .counter("ah.participant.0.rate.superseded")
            .unwrap_or(0),
        decreases: s.ah.rate_decreases(s.handle(p)),
        rate_kbps,
        settle_ms,
    }
}

fn main() {
    let fixed = run(false);
    let adaptive = run(true);
    let row = |name: &str, o: &Outcome| {
        vec![
            name.to_string(),
            format!("{}", o.wire_kib),
            format!("{}", o.retransmits),
            format!("{}", o.superseded),
            format!("{}", o.decreases),
            format!("{}", o.rate_kbps),
            o.settle_ms
                .map(|ms| format!("{ms}"))
                .unwrap_or_else(|| "never".into()),
        ]
    };
    print_table(
        "E15: 4 s video over a 4 Mb/s link halved to 2 Mb/s at t=1 s (2% loss)",
        &[
            "sender",
            "wire KiB",
            "retransmits",
            "superseded",
            "decreases",
            "rate kb/s",
            "settle ms",
        ],
        &[row("fixed", &fixed), row("adaptive", &adaptive)],
    );
    let saved = 100.0 * (1.0 - adaptive.wire_kib as f64 / fixed.wire_kib.max(1) as f64);
    println!("\nchecks:");
    println!("  adaptive saves {saved:.0}% wire bytes over the identical workload,");
    println!("  keeps retransmissions bounded, and still settles pixel-identical;");
    println!("  the fixed sender overdrives the halved link and may never settle.");
}
