//! E10 — RTP remoting vs the VNC-style baseline.
//!
//! The baseline keeps VNC's architecture (client-pull, desktop-level
//! pixels, RLE rectangles, TCP only); our system keeps the draft's
//! (server-push RTP, window model, PNG, MoveRectangle). Three scenarios
//! expose the architectural deltas:
//!
//! 1. scrolling document (MoveRectangle vs full re-send)
//! 2. window drag (20-byte WindowManagerInfo vs pixel damage)
//! 3. typing (both cheap; overheads dominate)

use adshare_bench::print_table;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_screen::workload::{Scrolling, Typing, WindowDrag, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::baseline::VncSession;
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TICKS: u32 = 60;

fn make_desktop() -> (Desktop, adshare_screen::wm::WindowId) {
    let mut d = Desktop::new(800, 600);
    let w = d.create_window(1, Rect::new(60, 50, 400, 300), [250, 250, 250, 255]);
    (d, w)
}

fn workload_for(name: &str, w: adshare_screen::wm::WindowId) -> Box<dyn Workload> {
    match name {
        "scroll" => Box::new(Scrolling::new(w, 1)),
        "drag" => Box::new(WindowDrag::new(w, 9, 7)),
        _ => Box::new(Typing::new(w, 3)),
    }
}

/// Our system over TCP; returns (bytes, settle_ms_after_stop).
fn run_adshare(workload: &str) -> (u64, f64) {
    let (d, w) = make_desktop();
    let mut s = SimSession::new(d, AhConfig::default(), 31);
    let link = TcpConfig {
        rate_bps: 8_000_000,
        delay_us: 25_000,
        send_buf: 128 * 1024,
    };
    let p = s.add_tcp_participant(Layout::Original, link, LinkConfig::default(), 32);
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("sync");
    let base = s.ah.participant_bytes_sent(s.handle(p));
    let mut wl = workload_for(workload, w);
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..TICKS {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let stop = s.clock.now_us();
    s.run_until(10_000, 120_000_000, |s| s.converged(p))
        .expect("settle");
    let settle = (s.clock.now_us() - stop) as f64 / 1000.0;
    (s.ah.participant_bytes_sent(s.handle(p)) - base, settle)
}

/// The VNC baseline; returns (bytes, settle_ms_after_stop).
fn run_vnc(workload: &str) -> (u64, f64) {
    let (mut d, w) = make_desktop();
    let link = TcpConfig {
        rate_bps: 8_000_000,
        delay_us: 25_000,
        send_buf: 128 * 1024,
    };
    let mut v = VncSession::new(800, 600, link);
    let mut now = 0u64;
    // Initial sync.
    for _ in 0..3000 {
        now += 10_000;
        v.step(&mut d, now);
        if v.converged(&d) {
            break;
        }
    }
    assert!(v.converged(&d), "vnc initial sync");
    let base = v.server.bytes_sent;
    let mut wl = workload_for(workload, w);
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..TICKS {
        wl.tick(&mut d, &mut rng);
        now += 33_333;
        v.step(&mut d, now);
    }
    let stop = now;
    for _ in 0..12_000 {
        now += 10_000;
        v.step(&mut d, now);
        if v.converged(&d) {
            break;
        }
    }
    assert!(v.converged(&d), "vnc settle");
    (v.server.bytes_sent - base, (now - stop) as f64 / 1000.0)
}

fn main() {
    let mut rows = Vec::new();
    for workload in ["scroll", "drag", "typing"] {
        let (ad_bytes, ad_settle) = run_adshare(workload);
        let (vnc_bytes, vnc_settle) = run_vnc(workload);
        rows.push(vec![
            workload.to_string(),
            format!("{}", ad_bytes / 1024),
            format!("{}", vnc_bytes / 1024),
            format!("{:.1}x", vnc_bytes as f64 / ad_bytes.max(1) as f64),
            format!("{ad_settle:.0}"),
            format!("{vnc_settle:.0}"),
        ]);
    }
    print_table(
        &format!("E10: {TICKS} workload ticks over 8 Mbit/s TCP — adshare vs VNC baseline"),
        &[
            "workload",
            "adshare KiB",
            "vnc KiB",
            "vnc/adshare",
            "settle ms (ad)",
            "settle ms (vnc)",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  the window model and MoveRectangle give the largest wins on drag and");
    println!("  scroll; on typing both are cheap and the gap narrows.");
}
