//! E17 — Health engine: OK on clean links, DEGRADED under loss, CRITICAL
//! black-box dump under a tightened SLO.
//!
//! Three typing-workload sims share one AH configuration and differ only in
//! the link and the health thresholds:
//!
//! * **clean** — lossless UDP; every rule should stay OK.
//! * **lossy** — 3% UDP loss; the loss/NACK rules should report DEGRADED.
//! * **critical** — same lossy link with the loss CRITICAL threshold pulled
//!   below the observed loss, forcing a HealthTransition and an automatic
//!   flight-recorder black-box dump.
//!
//! Emits four documents for `obs_schema_check`: the registry snapshot
//! (`adshare-obs/v1`), the event log (`adshare-obs-events/v1`), the final
//! health report (`adshare-health/v1`), and the black box
//! (`adshare-blackbox/v1`).

use std::path::Path;

use adshare_bench::{emit_snapshot, print_table, OBS_SNAPSHOT_DIR};
use adshare_netsim::udp::LinkConfig;
use adshare_obs::{HealthConfig, HealthReport, HealthStatus};
use adshare_screen::workload::{Typing, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    report: HealthReport,
    dumps: u64,
    session: SimSession,
}

fn run(
    loss: f64,
    cfg_override: Option<HealthConfig>,
    seed: u64,
    auto_capture_dir: Option<&Path>,
) -> Outcome {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), seed);
    if let Some(cfg) = cfg_override {
        s.obs().health.lock().unwrap().set_config(cfg);
    }
    if let Some(dir) = auto_capture_dir {
        // Black-box mode: a 3 s ring capture rides along, and the CRITICAL
        // dump references the flushed file as `capture_path`.
        s.enable_auto_capture(true, 3_000_000, dir.to_path_buf(), seed)
            .expect("consent supplied");
    }
    // Jitter only on lossy links: 5 ms of reorder on a lossless link still
    // provokes NACKs, which the loss rule would (correctly) flag.
    let link = LinkConfig {
        loss,
        delay_us: 25_000,
        jitter_us: if loss > 0.0 { 5_000 } else { 0 },
        ..Default::default()
    };
    let p = s.add_udp_participant(
        Layout::Original,
        link,
        LinkConfig::default(),
        None,
        seed + 1,
    );
    s.run_until(10_000, 300_000_000, |s| s.converged(p))
        .expect("initial sync");

    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    for i in 0..150 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
        // Periodic checks so CRITICAL transitions (and their dumps) fire
        // mid-run, like a supervising loop would.
        if i % 15 == 14 {
            s.obs().health_check(s.clock.now_us());
        }
    }
    let report = s.obs().health_check(s.clock.now_us());
    let dumps = s.obs().health.lock().unwrap().dumps();
    Outcome {
        report,
        dumps,
        session: s,
    }
}

fn rule_cell(report: &HealthReport, name: &str) -> String {
    report
        .rules
        .iter()
        .find(|r| r.name == name)
        .map(|r| format!("{} ({:.3})", r.status.as_str(), r.value))
        .unwrap_or_else(|| "-".into())
}

fn main() {
    let dir = std::env::var("OBS_SNAPSHOT_DIR").unwrap_or_else(|_| OBS_SNAPSHOT_DIR.to_string());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create snapshot dir");

    let clean = run(0.0, None, 300, None);
    let lossy = run(0.03, None, 400, None);
    // Pull the loss CRITICAL threshold below what a 3% link produces so the
    // engine must transition to CRITICAL and dump its black box.
    let tight = HealthConfig {
        loss: (0.005, 0.01),
        ..HealthConfig::default()
    };
    let critical = run(0.03, Some(tight), 500, Some(&dir));

    let mut rows = Vec::new();
    for (label, o) in [
        ("clean", &clean),
        ("lossy 3%", &lossy),
        ("lossy 3% + tight SLO", &critical),
    ] {
        rows.push(vec![
            label.to_string(),
            o.report.overall.as_str().to_string(),
            rule_cell(&o.report, "loss"),
            rule_cell(&o.report, "nack_rate"),
            rule_cell(&o.report, "staleness_p99"),
            format!("{}", o.dumps),
        ]);
    }
    print_table(
        "E17: health engine verdicts after a 5 s typing burst",
        &[
            "scenario",
            "overall",
            "loss",
            "nack_rate",
            "staleness_p99",
            "dumps",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  clean link stays OK on every rule; 3% loss trips the loss/NACK rules to");
    println!("  DEGRADED; tightening the loss SLO forces CRITICAL, and the transition");
    println!("  writes exactly one flight-recorder black box.");

    assert_eq!(clean.report.overall, HealthStatus::Ok, "clean link not OK");
    assert_eq!(clean.dumps, 0, "clean link dumped a black box");
    assert!(
        lossy.report.overall >= HealthStatus::Degraded,
        "3% loss did not degrade health"
    );
    assert_eq!(
        critical.report.overall,
        HealthStatus::Critical,
        "tight SLO did not reach CRITICAL"
    );
    assert!(critical.dumps >= 1, "CRITICAL transition did not dump");

    // The CRITICAL dump must ship a replayable capture next to it.
    let engine = critical.session.obs().health.lock().unwrap();
    let blackbox = engine.last_dump().expect("CRITICAL run kept its dump");
    assert!(
        blackbox.contains("\"capture_path\""),
        "CRITICAL black box does not reference the auto-armed capture"
    );
    drop(engine);

    // Export every document kind for obs_schema_check.
    match emit_snapshot(&lossy.session.obs().registry, "exp_health") {
        Ok(path) => println!("\nobs snapshot: {}", path.display()),
        Err(e) => eprintln!("obs snapshot write failed: {e}"),
    }
    let events_path = dir.join("exp_health_events.json");
    std::fs::write(&events_path, lossy.session.obs().recorder.to_json()).expect("write events");
    println!("event log:    {}", events_path.display());
    let report_path = dir.join("exp_health_report.json");
    std::fs::write(&report_path, lossy.report.to_json()).expect("write report");
    println!("health report: {}", report_path.display());
    let engine = critical.session.obs().health.lock().unwrap();
    let blackbox = engine.last_dump().expect("CRITICAL run kept its dump");
    let blackbox_path = dir.join("exp_health_blackbox.json");
    std::fs::write(&blackbox_path, blackbox).expect("write blackbox");
    println!("black box:    {}", blackbox_path.display());
}
