//! E8 — HIP event path (§6): per-event wire sizes and end-to-end injection
//! latency through the simulated stack. The draft's premise is that input
//! events are tiny and cheap; this prints the actual costs.

use adshare_bench::print_table;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_remoting::hip::HipMessage;
use adshare_remoting::registry::MouseButton;
use adshare_remoting::WindowId;
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};

fn main() {
    // Wire sizes per event type (payload + RTP + UDP/IP).
    let w = WindowId(0);
    let events: Vec<(&str, HipMessage)> = vec![
        (
            "MouseMoved",
            HipMessage::MouseMoved {
                window_id: w,
                left: 150,
                top: 120,
            },
        ),
        (
            "MousePressed",
            HipMessage::MousePressed {
                window_id: w,
                button: MouseButton::Left,
                left: 150,
                top: 120,
            },
        ),
        (
            "MouseWheelMoved",
            HipMessage::MouseWheelMoved {
                window_id: w,
                left: 150,
                top: 120,
                distance: -120,
            },
        ),
        (
            "KeyPressed",
            HipMessage::KeyPressed {
                window_id: w,
                key_code: 0x41,
            },
        ),
        (
            "KeyTyped('a')",
            HipMessage::KeyTyped {
                window_id: w,
                text: "a".into(),
            },
        ),
        (
            "KeyTyped(40-char paste)",
            HipMessage::KeyTyped {
                window_id: w,
                text: "x".repeat(40),
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, ev) in &events {
        let payload = ev.encode().len();
        rows.push(vec![
            name.to_string(),
            format!("{payload}"),
            format!("{}", payload + 12),
            format!("{}", payload + 12 + 28),
        ]);
    }
    print_table(
        "E8a: HIP event wire sizes",
        &["event", "payload B", "+RTP B", "+UDP/IP B"],
        &rows,
    );

    // End-to-end injection latency at several upstream RTTs.
    let mut rows = Vec::new();
    for delay_ms in [5u64, 25, 100] {
        let mut d = Desktop::new(640, 480);
        let win = d.create_window(1, Rect::new(100, 100, 200, 150), [240, 240, 240, 255]);
        let mut s = SimSession::new(d, AhConfig::default(), 61);
        let up = LinkConfig {
            delay_us: delay_ms * 1000,
            ..Default::default()
        };
        let p = s.add_tcp_participant(Layout::Original, TcpConfig::default(), up, 62);
        s.run_until(1_000, 30_000_000, |s| s.converged(p))
            .expect("sync");

        // Send a burst of 100 events and measure time until all injected.
        let t0 = s.clock.now_us();
        for i in 0..100u32 {
            s.send_hip(
                p,
                &HipMessage::MouseMoved {
                    window_id: WindowId(win.0),
                    left: 110 + i % 80,
                    top: 110 + i % 60,
                },
            );
        }
        s.run_until(1_000, 30_000_000, |s| s.ah.stats().hip_injected >= 100)
            .expect("all events injected");
        let elapsed_ms = (s.clock.now_us() - t0) as f64 / 1000.0;
        rows.push(vec![
            format!("{delay_ms}"),
            format!("{:.1}", elapsed_ms),
            format!("{:.2}", elapsed_ms - delay_ms as f64),
            format!("{}", s.ah.stats().hip_rejected),
        ]);
    }
    print_table(
        "E8b: 100-event burst injection (one-way upstream delay varied)",
        &["delay ms", "burst done ms", "overhead ms", "rejected"],
        &rows,
    );
    println!("\nchecks:");
    println!("  every event fits one ~60-byte datagram; injection completes within one");
    println!("  one-way delay plus the tick quantum — the path is network-bound.");
}
