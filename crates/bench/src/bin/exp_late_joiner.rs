//! E6 — Late-joiner bootstrap cost (draft §4.3/§5.3.1): a participant
//! joining a running session sends a PLI and receives the window state plus
//! a full screen image. Cost scales with shared state, not session length.

use adshare_bench::{fmt_bytes, print_table, Content};
use adshare_netsim::udp::LinkConfig;
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};

fn run(windows: u32, win_w: u32, win_h: u32, content: Content) -> (f64, u64) {
    let mut d = Desktop::new(1600, 1200);
    let mut ids = Vec::new();
    for i in 0..windows {
        let x = 20 + (i % 4) * (win_w + 10);
        let y = 20 + (i / 4) * (win_h + 10);
        ids.push(d.create_window(1, Rect::new(x, y, win_w, win_h), [245, 245, 245, 255]));
    }
    // Fill each window with content so the refresh carries real pixels.
    for (i, id) in ids.iter().enumerate() {
        let img = content.frame(win_w, win_h, i as u32 + 1);
        d.draw(*id, 0, 0, &img);
    }
    let mut s = SimSession::new(d, AhConfig::default(), 5);
    // An existing participant has been attached for a while.
    let p0 = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        6,
    );
    s.run_until(10_000, 300_000_000, |s| s.converged(p0))
        .expect("steady state");
    // Session idles; the late joiner arrives.
    s.step(1_000_000);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        7,
    );
    let t0 = s.clock.now_us();
    let base = s.ah.participant_bytes_sent(s.handle(p));
    s.run_until(5_000, 300_000_000, |s| s.converged(p))
        .expect("joiner syncs");
    let sync_ms = (s.clock.now_us() - t0) as f64 / 1000.0;
    let bytes = s.ah.participant_bytes_sent(s.handle(p)) - base;
    (sync_ms, bytes)
}

fn main() {
    let mut rows = Vec::new();
    for (windows, w, h, content) in [
        (1u32, 320u32, 240u32, Content::Ui),
        (3, 320, 240, Content::Ui),
        (8, 320, 240, Content::Ui),
        (3, 640, 480, Content::Ui),
        (3, 320, 240, Content::Photo),
        (3, 640, 480, Content::Photo),
    ] {
        let pixels = windows * w * h;
        let (ms, bytes) = run(windows, w, h, content);
        rows.push(vec![
            format!("{windows}"),
            format!("{w}x{h}"),
            content.name().to_string(),
            format!("{:.2} Mpx", pixels as f64 / 1e6),
            format!("{ms:.0}"),
            fmt_bytes(bytes),
        ]);
    }
    print_table(
        "E6: late-joiner sync time and bytes vs shared state",
        &[
            "windows",
            "size",
            "content",
            "state",
            "sync ms",
            "sync bytes",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  sync cost scales with shared pixels and their compressibility,");
    println!("  independent of how long the session has been running.");
}
