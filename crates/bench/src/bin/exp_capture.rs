//! E23 — capture overhead, byte cost, and self-verifying replay.
//!
//! A seeded typing+video session over a 1%-loss UDP link runs twice with
//! identical inputs: once bare, once with a consent-gated full
//! `adshare-capture/v1` capture armed. The two configurations interleave
//! five run pairs of the 10 s steady-state loop; the overhead is the
//! median paired *process CPU time* ratio — wall clock on a shared
//! machine carries scheduler steal, and unpaired comparisons carry
//! thermal drift, either of which dwarfs a 5% effect. The armed overhead
//! is gated below 5% (`CAPTURE_OVERHEAD_GATE_PCT` overrides the gate on
//! noisy machines).
//!
//! The armed run then proves the capture is worth its bytes:
//!
//! * round-trips through `to_bytes` → `parse_capture` → [`replay`] and
//!   must come back **bit-exact** against the manifest (wire digest plus
//!   every decoded-surface digest);
//! * exports a historical Perfetto trace from the capture file alone,
//!   which must contain no negative timestamps (shared virtual clock);
//! * a `MultiHost` warm-file round trip shows the persisted encode cache
//!   raising the hit rate of an identical re-share.
//!
//! Emits the capture (`exp_capture.bin`), its
//! `adshare-capture-manifest/v1` manifest, the historical trace, and an
//! `adshare-obs/v1` snapshot for `obs_schema_check`.

use adshare_bench::{emit_snapshot, fmt_bytes, print_table, timed, OBS_SNAPSHOT_DIR};
use adshare_capture::{manifest_json, parse_capture, CaptureMode};
use adshare_host::{CacheSharing, HostConfig, MultiHost, Workload as HostWorkload};
use adshare_netsim::udp::LinkConfig;
use adshare_screen::workload::{Typing, Video, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::replay::{historical_chrome_trace, replay};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 2300;
const STEADY_TICKS: u32 = 300; // 10 s of 33 ms ticks
const REPEATS: usize = 5;

/// Process CPU time (user + system, all threads) in microseconds, read
/// from `/proc/self/stat`. Unlike wall time it is immune to co-tenant
/// scheduler steal, which on shared CI machines dwarfs a 5% effect.
/// Returns `None` off Linux; the caller then falls back to wall time.
fn cpu_time_us() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14/15 (utime/stime) counted after the parenthesised comm,
    // which may itself contain spaces.
    let rest = &stat[stat.rfind(')')? + 2..];
    let mut it = rest.split_ascii_whitespace();
    let utime: f64 = it.nth(11)?.parse().ok()?;
    let stime: f64 = it.next()?.parse().ok()?;
    // Linux reports clock ticks at 100 Hz (USER_HZ).
    Some((utime + stime) * 10_000.0)
}

/// One configuration's steady-state cost: `(session, cpu_ms, wall_ms)`
/// over just the workload loop — arming happens before the clock starts,
/// so the numbers are pure per-datagram recording overhead.
fn run_once(arm: bool) -> (SimSession, f64, f64) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), SEED);
    // Arm before the participant joins: replay rebuilds surfaces from the
    // recorded stream alone, so the initial full-state sync must be on file.
    // The Full capture streams to disk incrementally — the production
    // shape for long video-heavy sessions — so the CPU gate below covers
    // the file I/O, not just in-memory taping.
    if arm {
        let cap = s
            .arm_capture(true, CaptureMode::Full, SEED)
            .expect("consent supplied");
        cap.stream_to(&std::env::temp_dir().join("exp_capture_stream.bin"))
            .expect("full capture streams to disk");
    }
    let link = LinkConfig {
        loss: 0.01,
        delay_us: 20_000,
        jitter_us: 4_000,
        ..Default::default()
    };
    let p = s.add_udp_participant(
        Layout::Original,
        link,
        LinkConfig::default(),
        None,
        SEED + 1,
    );
    s.run_until(10_000, 300_000_000, |s| s.converged(p))
        .expect("initial sync");
    // Typing plus an animating video region: enough per-tick encode and
    // wire traffic that the loop wall time is a stable measurement base.
    let mut typing = Typing::new(w, 2);
    let mut video = Video::new(w, Rect::new(16, 60, 240, 130));
    let mut rng = StdRng::seed_from_u64(SEED + 2);
    let cpu_before = cpu_time_us();
    let ((), wall_us) = timed(|| {
        for _ in 0..STEADY_TICKS {
            typing.tick(s.ah.desktop_mut(), &mut rng);
            video.tick(s.ah.desktop_mut(), &mut rng);
            s.step(33_333);
        }
    });
    let cpu_us = match (cpu_before, cpu_time_us()) {
        (Some(a), Some(b)) => b - a,
        _ => wall_us,
    };
    (s, cpu_us / 1000.0, wall_us / 1000.0)
}

/// Interleave N off/on run pairs and report the **median paired CPU
/// ratio** as the overhead, plus each side's best `(cpu_ms, wall_ms)`
/// for the table. Adjacent pairing cancels slow machine drift (thermal,
/// co-tenant load) that best-of-N alone cannot; the median shrugs off a
/// single preempted pair. Keeps each side's last session (every repeat
/// is bit-identical — only timing varies).
fn measure() -> (f64, (SimSession, f64, f64), (SimSession, f64, f64)) {
    let _ = run_once(false); // warm caches and the allocator
    let mut ratios = Vec::with_capacity(REPEATS);
    let mut best_off = (f64::INFINITY, f64::INFINITY);
    let mut best_on = (f64::INFINITY, f64::INFINITY);
    let mut kept_off = None;
    let mut kept_on = None;
    for _ in 0..REPEATS {
        let (s, off_cpu, off_wall) = run_once(false);
        best_off = (best_off.0.min(off_cpu), best_off.1.min(off_wall));
        kept_off = Some(s);
        let (s, on_cpu, on_wall) = run_once(true);
        best_on = (best_on.0.min(on_cpu), best_on.1.min(on_wall));
        kept_on = Some(s);
        ratios.push(on_cpu / off_cpu);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    (
        overhead_pct,
        (kept_off.expect("ran"), best_off.0, best_off.1),
        (kept_on.expect("ran"), best_on.0, best_on.1),
    )
}

/// Cold-vs-prewarmed `MultiHost` run: returns (hits, misses, warm file).
fn host_run(warm: Option<&[u8]>) -> (u64, u64, Vec<u8>) {
    let mut host = MultiHost::new(HostConfig::default());
    let ns = adshare_host::shared_namespace(&AhConfig::default());
    if let Some(bytes) = warm {
        host.prewarm(ns, bytes).expect("warm file parses");
    }
    let mut d = Desktop::new(320, 240);
    let win = d.create_window(1, Rect::new(16, 16, 192, 128), [24, 48, 72, 255]);
    let idx = host.add_session(d, AhConfig::default(), SEED, CacheSharing::Shared);
    host.session_mut(idx).add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        SEED ^ 0x77,
    );
    let mut tick = 0u32;
    let wl: HostWorkload = Box::new(move |sess: &mut SimSession, _now| {
        tick += 1;
        let c = ((tick * 13) % 200) as u8 + 20;
        let x = (tick % 3) * 48;
        sess.ah
            .desktop_mut()
            .fill(win, Rect::new(x, 0, 48, 48), [c, c ^ 0x5a, 90, 255]);
        tick < 30
    });
    host.set_workload(idx, wl);
    host.run_until(600_000);
    let warm_out = host.export_warm(ns, 512);
    (host.cache().hits(), host.cache().misses(), warm_out)
}

fn main() {
    let dir = std::env::var("OBS_SNAPSHOT_DIR").unwrap_or_else(|_| OBS_SNAPSHOT_DIR.to_string());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let gate_pct: f64 = std::env::var("CAPTURE_OVERHEAD_GATE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);

    let (overhead_pct, (off, off_cpu_ms, off_ms), (mut on, on_cpu_ms, on_ms)) = measure();

    // Freeze the armed run and round-trip it: bytes → parse → replay.
    on.finalize_capture().expect("capture armed");
    let manifest = on.capture_manifest().expect("capture armed");
    let cap_handle = on.capture().expect("capture armed").clone();
    let cap_bytes = cap_handle.to_bytes();
    let capture = parse_capture(&cap_bytes).expect("capture parses back");
    let report = replay(&capture, Some(&manifest));
    let trace = historical_chrome_trace(&capture);

    let tx_off = off.ah.stats().bytes_sent;
    let tx_on = on.ah.stats().bytes_sent;
    let stats = cap_handle.stats();
    let rows = vec![
        vec![
            "capture off".to_string(),
            format!("{off_cpu_ms:.0}"),
            format!("{off_ms:.0}"),
            fmt_bytes(tx_off),
            "-".to_string(),
            "-".to_string(),
        ],
        vec![
            "capture full".to_string(),
            format!("{on_cpu_ms:.0}"),
            format!("{on_ms:.0}"),
            fmt_bytes(tx_on),
            format!("{}", stats.records),
            fmt_bytes(cap_bytes.len() as u64),
        ],
    ];
    print_table(
        "E23: 10 s steady-state typing+video over 1%-loss UDP, median of 5 interleaved run pairs",
        &[
            "config",
            "cpu ms",
            "wall ms",
            "tx bytes",
            "records",
            "capture file",
        ],
        &rows,
    );
    println!(
        "\ncapture overhead: {overhead_pct:+.2}% cpu (gate < {gate_pct}%), \
         {:.2} capture bytes per wire byte",
        cap_bytes.len() as f64 / tx_on as f64
    );

    let (cold_hits, cold_misses, warm_file) = host_run(None);
    let (warm_hits, warm_misses, _) = host_run(Some(&warm_file));
    let rate = |h: u64, m: u64| h as f64 / (h + m).max(1) as f64 * 100.0;
    println!(
        "warm-file re-share: {} warm file, cache hit rate {:.1}% cold -> {:.1}% prewarmed",
        fmt_bytes(warm_file.len() as u64),
        rate(cold_hits, cold_misses),
        rate(warm_hits, warm_misses),
    );

    println!("\nchecks:");
    println!("  arming a full capture costs < {gate_pct}% steady-state CPU time; the file");
    println!("  replays bit-exact against its manifest; the historical trace has no");
    println!("  negative timestamps; a warm file raises an identical re-share's hit rate.");

    assert!(
        overhead_pct < gate_pct,
        "capture overhead {overhead_pct:.2}% breaches the {gate_pct}% gate \
         ({off_cpu_ms:.0} cpu-ms off vs {on_cpu_ms:.0} cpu-ms armed)"
    );
    assert_eq!(tx_off, tx_on, "arming the capture changed the wire traffic");
    assert_eq!(
        off.wire_digest(),
        on.wire_digest(),
        "arming the capture changed the wire digest"
    );
    assert!(report.bit_exact(), "replay not bit-exact: {report:?}");
    assert!(report.records_fed > 0, "replay fed no ingress records");
    assert_eq!(
        adshare_capture::wire_digest_of(&capture.records),
        on.wire_digest(),
        "capture egress digest diverged from the live session"
    );
    assert!(
        !trace.contains("\"ts\": -"),
        "historical trace contains negative timestamps"
    );
    assert!(
        warm_hits > cold_hits && warm_misses < cold_misses,
        "prewarm did not improve the re-share: {warm_hits}/{warm_misses} vs {cold_hits}/{cold_misses}"
    );

    let bin_path = dir.join("exp_capture.bin");
    std::fs::write(&bin_path, &cap_bytes).expect("write capture");
    println!("\ncapture:      {}", bin_path.display());
    let manifest_path = dir.join("exp_capture_manifest.json");
    std::fs::write(&manifest_path, manifest_json(&manifest)).expect("write manifest");
    println!("manifest:     {}", manifest_path.display());
    let trace_path = dir.join("exp_capture_trace.json");
    std::fs::write(&trace_path, &trace).expect("write trace");
    println!("trace:        {}", trace_path.display());
    match emit_snapshot(&on.obs().registry, "exp_capture") {
        Ok(path) => println!("obs snapshot: {}", path.display()),
        Err(e) => eprintln!("obs snapshot write failed: {e}"),
    }
}
