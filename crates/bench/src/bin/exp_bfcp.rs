//! E12 — BFCP floor moderation (draft Appendix A, §4.2: "it grants the
//! floor to the appropriate participant for a period of time while keeping
//! the requests from other participants in a FIFO queue").
//!
//! K participants contend for the floor; we verify strict FIFO grant order
//! and measure per-request wait times under timed grants.

use adshare_bench::print_table;
use adshare_bfcp::{BfcpMessage, FloorChair, RequestStatus};

fn main() {
    let mut rows = Vec::new();
    for k in [2u16, 4, 8, 16, 32] {
        // A chair granting the floor for 2 s (in µs of virtual time).
        let grant_us = 2_000_000u64;
        let mut chair = FloorChair::new(1, 0, Some(grant_us));
        let mut grant_time: Vec<Option<u64>> = vec![None; k as usize];
        let mut request_time = vec![0u64; k as usize];

        // Everyone requests at slightly staggered times.
        for u in 0..k {
            let t = u as u64 * 1_000;
            request_time[u as usize] = t;
            let out = chair.handle(
                &BfcpMessage::FloorRequest {
                    conference_id: 1,
                    transaction_id: 1,
                    user_id: u,
                    floor_id: 0,
                },
                t,
            );
            record_grants(&out, t, &mut grant_time);
        }
        // Nobody releases voluntarily: the timer revokes and rotates.
        let mut order = Vec::new();
        if let Some(h) = chair.holder() {
            order.push(h);
        }
        let mut now = 0;
        while order.len() < k as usize {
            now += 100_000;
            let out = chair.tick(now);
            record_grants(&out, now, &mut grant_time);
            if let Some(h) = chair.holder() {
                if order.last() != Some(&h) {
                    order.push(h);
                }
            }
        }
        let fifo = order == (0..k).collect::<Vec<_>>();
        let waits: Vec<f64> = (0..k as usize)
            .map(|u| (grant_time[u].unwrap() - request_time[u]) as f64 / 1000.0)
            .collect();
        let mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let max = waits.iter().cloned().fold(0.0, f64::max);
        rows.push(vec![
            format!("{k}"),
            format!("{fifo}"),
            format!("{mean:.0}"),
            format!("{max:.0}"),
            format!("{:.0}", grant_us as f64 / 1000.0),
        ]);
    }
    print_table(
        "E12: floor contention — FIFO order and wait times (2 s timed grants)",
        &[
            "contenders",
            "strict FIFO",
            "mean wait ms",
            "max wait ms",
            "grant ms",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  grant order is strictly FIFO; max wait grows linearly with queue length");
    println!("  times the grant duration (the draft's 'period of time').");
}

fn record_grants(msgs: &[BfcpMessage], now: u64, grant_time: &mut [Option<u64>]) {
    for m in msgs {
        if let BfcpMessage::FloorRequestStatus {
            user_id,
            status: RequestStatus::Granted,
            ..
        } = m
        {
            if let Some(slot) = grant_time.get_mut(*user_id as usize) {
                if slot.is_none() {
                    *slot = Some(now);
                }
            }
        }
    }
}
