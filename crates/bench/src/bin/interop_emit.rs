//! Emit adshare-compressed zlib streams for `scripts/check_interop.sh`:
//! real zlib (CPython) must decompress every line.

use adshare_codec::deflate::Level;
use adshare_codec::png::{encode as png_encode, PngColor, PngOptions};
use adshare_codec::zlib;
use adshare_codec::Image;

fn hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty", Vec::new()),
        ("hello", b"hello, application sharing world!".to_vec()),
        (
            "repetitive",
            b"the quick brown fox jumps over the lazy dog. ".repeat(50),
        ),
        (
            "binary_ramp",
            (0..4096u32).map(|i| (i % 256) as u8).collect(),
        ),
        (
            "pseudo_random",
            (0..2048u32).map(|i| ((i * 73 + 41) % 256) as u8).collect(),
        ),
        ("long_zero_run", vec![0u8; 65536]),
    ];
    println!("# name\tplain_hex\tcomp_hex — adshare zlib output");
    for (name, data) in cases {
        for (lname, level) in [
            ("store", Level::Store),
            ("fast", Level::Fast),
            ("default", Level::Default),
            ("best", Level::Best),
        ] {
            let comp = zlib::compress(&data, level);
            println!("{name}-{lname}\t{}\t{}", hex(&data), hex(&comp));
        }
    }
    // Also emit a PNG for structural validation by the reference zlib +
    // an independent unfilter implementation (scripts/check_interop.sh).
    let mut img = Image::filled(64, 48, [240, 240, 240, 255]).expect("dims");
    for y in 0..48u32 {
        for x in 0..64u32 {
            if (x / 8 + y / 8) % 2 == 0 {
                img.set_pixel(x, y, [(x * 4) as u8, (y * 5) as u8, 128, 255]);
            }
        }
    }
    let png = png_encode(
        &img,
        PngOptions {
            color: PngColor::Rgb,
            level: Level::Default,
        },
    );
    std::fs::write("/tmp/adshare_test.png", &png).expect("write png");
    std::fs::write("/tmp/adshare_test.rgb", {
        let mut rgb = Vec::new();
        for px in img.data().chunks_exact(4) {
            rgb.extend_from_slice(&px[..3]);
        }
        rgb
    })
    .expect("write rgb");
}
