//! Run every experiment binary in sequence (the full evaluation of
//! EXPERIMENTS.md). Equivalent to running each `exp_*` binary by hand.

use std::process::Command;

fn main() {
    let exps = [
        "exp_codec_content",
        "exp_fragmentation",
        "exp_scroll",
        "exp_backlog",
        "exp_loss_recovery",
        "exp_late_joiner",
        "exp_hip",
        "exp_fanout",
        "exp_damage",
        "exp_vs_vnc",
        "exp_bfcp",
        "exp_adaptive",
        "exp_app_vs_desktop",
        "exp_rate_adapt",
        "exp_encode_cache",
        "exp_codecs",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in exps {
        println!("\n===================================================================");
        println!("== {exp}");
        println!("===================================================================");
        let status = Command::new(dir.join(exp)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!! {exp} failed: {other:?}");
                failures.push(exp);
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
    println!("\nall experiments completed");
}
