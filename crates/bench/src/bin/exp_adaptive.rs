//! E14 — content-adaptive codec selection (§4.2: updates "can be encoded
//! with PNG, JPEG, JPEG 2000, Theora or other media types, according to
//! their characteristics").
//!
//! A mixed session — text typing in one window, video playing in another —
//! is run three ways: PNG-only, DCT-only, and adaptive (classify each
//! region). Adaptive should approach DCT's bandwidth on the video while
//! keeping the text pixel-exact like PNG.

use adshare_bench::print_table;
use adshare_codec::CodecKind;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_screen::workload::{Typing, Video, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    egress_kib: u64,
    text_exact: bool,
    video_err: f64,
}

fn run(codec: CodecKind, adaptive: bool) -> Outcome {
    let mut d = Desktop::new(800, 600);
    let text = d.create_window(1, Rect::new(30, 30, 300, 220), [252, 252, 252, 255]);
    let video = d.create_window(2, Rect::new(380, 60, 320, 240), [0, 0, 0, 255]);
    let cfg = AhConfig {
        codec,
        adaptive_codec: adaptive,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 71);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig {
            rate_bps: 1_000_000_000,
            delay_us: 10_000,
            send_buf: 8 << 20,
        },
        LinkConfig::default(),
        72,
    );
    s.run_until(10_000, 60_000_000, |s| s.divergence(p) < 8.0)
        .expect("sync");
    let base = s.ah.participant_bytes_sent(s.handle(p));

    let mut t = Typing::new(text, 3);
    let mut v = Video::new(video, Rect::new(10, 10, 300, 220));
    let mut rng = StdRng::seed_from_u64(73);
    for _ in 0..60 {
        t.tick(s.ah.desktop_mut(), &mut rng);
        v.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    s.run_until(10_000, 60_000_000, |s| s.divergence(p) < 8.0)
        .expect("settle");
    // Extra settle so the last updates land.
    for _ in 0..50 {
        s.step(10_000);
    }

    let text_exact = match (
        s.participant(p).window_content(text.0),
        s.ah.desktop().window_content(text),
    ) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };
    let video_err = match (
        s.participant(p).window_content(video.0),
        s.ah.desktop().window_content(video),
    ) {
        (Some(a), Some(b)) if a.width() == b.width() => a.mean_abs_error(b),
        _ => f64::INFINITY,
    };
    Outcome {
        egress_kib: (s.ah.participant_bytes_sent(s.handle(p)) - base) / 1024,
        text_exact,
        video_err,
    }
}

fn main() {
    let mut rows = Vec::new();
    for (name, codec, adaptive) in [
        ("png-only", CodecKind::Png, false),
        ("dct-only", CodecKind::Dct, false),
        ("adaptive", CodecKind::Png, true),
    ] {
        let o = run(codec, adaptive);
        rows.push(vec![
            name.to_string(),
            format!("{}", o.egress_kib),
            format!("{}", o.text_exact),
            format!("{:.2}", o.video_err),
        ]);
    }
    print_table(
        "E14: mixed text+video session, 2 s — codec policies",
        &[
            "policy",
            "egress KiB",
            "text pixel-exact",
            "video mean |err|",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  adaptive ≈ dct-only bandwidth (video dominates) while keeping the text");
    println!("  window lossless like png-only; dct-only blurs text, png-only pays ~raw");
    println!("  bandwidth for the video.");
}
