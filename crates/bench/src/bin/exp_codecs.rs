//! E22 — codec kernel throughput: the fixed-point DCT, the DEFLATE match
//! loop, and the PNG scanline filters, measured at the kernel level.
//!
//! Three kernels are compared for the 8×8 DCT: the seed's naive O(N²)
//! separable f32 transform (`dct::naive`), the scalar fixed-point Loeffler
//! reference, and the vectorised lane-per-row production kernel. All three
//! produce interchangeable coefficients (the two fixed-point ones
//! bit-identically so), so the ratio is a pure speed comparison.
//!
//! DEFLATE and PNG are measured as whole-stream MB/s on deterministic
//! corpora: kernel-level wins there (u64 match extension, 4-byte hash
//! chains, slice-pass filters) surface as end-to-end throughput.
//!
//! Emits `BENCH_codecs.json` (schema `adshare-bench-codecs/v1`, validated
//! in CI by `obs_schema_check`) and exits non-zero if the vectorised DCT
//! kernel is not at least 2x the naive f32 one.

use adshare_bench::{print_table, timed, Content};
use adshare_codec::codec::{AnyCodec, Codec};
use adshare_codec::deflate::{deflate, inflate, Level};
use adshare_codec::{dct, png, CodecKind};

const BLOCKS: usize = 512;
const DCT_REPS: usize = 40;

/// Deterministic sample blocks with photographic-ish structure.
fn sample_blocks() -> Vec<[i32; 64]> {
    let mut state = 0x1357_9bdfu32;
    (0..BLOCKS)
        .map(|_| {
            let mut b = [0i32; 64];
            for v in b.iter_mut() {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *v = ((state >> 20) as i32 % 256) - 128;
            }
            b
        })
        .collect()
}

/// Median-of-reps µs for one full fdct+idct pass over the block batch.
fn time_kernel(f: impl Fn(&mut Vec<[i32; 64]>)) -> f64 {
    let template = sample_blocks();
    let mut times = Vec::with_capacity(DCT_REPS);
    let mut blocks = template.clone();
    f(&mut blocks); // warm
    for _ in 0..DCT_REPS {
        let mut blocks = template.clone();
        let (_, us) = timed(|| f(&mut blocks));
        times.push(us);
        std::hint::black_box(&blocks);
    }
    times.sort_by(f64::total_cmp);
    times[DCT_REPS / 2]
}

/// The deterministic corpora from the golden-vector suite, writ larger so
/// per-call table setup amortises out.
fn corpora() -> Vec<(&'static str, Vec<u8>)> {
    let text = b"A participant joins the session and the application host \
        shares the damaged window regions. The application host encodes \
        each region according to its characteristics and the participants \
        decode whatever the payload type says. "
        .repeat(160);

    let mut pixel = Vec::with_capacity(180_000);
    for row in 0..400u32 {
        pixel.push((row % 5) as u8);
        for col in 0..150u32 {
            pixel.push((col * 3 % 256) as u8);
            pixel.push((row * 7 % 256) as u8);
            pixel.push(((col ^ row) % 256) as u8);
        }
    }

    let mut state = 0xdead_beef_cafe_f00du64;
    let random: Vec<u8> = (0..65536)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect();

    vec![("text", text), ("pixel", pixel), ("random", random)]
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    // --- DCT kernels -----------------------------------------------------
    let naive_us = time_kernel(|blocks| {
        for b in blocks.iter_mut() {
            let mut f = [0f32; 64];
            for i in 0..64 {
                f[i] = b[i] as f32;
            }
            dct::naive::fdct(&mut f);
            dct::naive::idct(&mut f);
            for i in 0..64 {
                b[i] = f[i] as i32;
            }
        }
    });
    let reference_us = time_kernel(|blocks| {
        for b in blocks.iter_mut() {
            dct::fdct_reference(b);
            dct::idct_reference(b);
        }
    });
    let fast_us = time_kernel(|blocks| {
        for b in blocks.iter_mut() {
            dct::fdct_fast(b);
            dct::idct_fast(b);
        }
    });
    let per_block = |us: f64| us / BLOCKS as f64;
    let speedup_naive = naive_us / fast_us;
    let speedup_ref = reference_us / fast_us;

    print_table(
        &format!("E22a: 8x8 DCT kernels (fdct+idct, {BLOCKS} blocks, median of {DCT_REPS})"),
        &["kernel", "us/block", "vs fast"],
        &[
            vec![
                "naive f32 (seed)".into(),
                format!("{:.3}", per_block(naive_us)),
                format!("{speedup_naive:.2}x slower"),
            ],
            vec![
                "fixed-point scalar".into(),
                format!("{:.3}", per_block(reference_us)),
                format!("{speedup_ref:.2}x slower"),
            ],
            vec![
                "fixed-point vector".into(),
                format!("{:.3}", per_block(fast_us)),
                "1.00x".into(),
            ],
        ],
    );

    // --- DEFLATE ---------------------------------------------------------
    let mut deflate_rows = Vec::new();
    let mut deflate_json = Vec::new();
    for (name, corpus) in corpora() {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let reps = 7;
            let mut times = Vec::new();
            let mut out = Vec::new();
            let _ = deflate(&corpus, level); // warm
            for _ in 0..reps {
                let (o, us) = timed(|| deflate(&corpus, level));
                times.push(us);
                out = o;
            }
            assert_eq!(
                inflate(&out, corpus.len() + 64).expect("inflate"),
                corpus,
                "{name}/{level:?}"
            );
            let mbs = corpus.len() as f64 / median(times);
            let ratio = corpus.len() as f64 / out.len() as f64;
            deflate_rows.push(vec![
                name.to_string(),
                format!("{level:?}"),
                format!("{}", corpus.len()),
                format!("{mbs:.1}"),
                format!("{ratio:.2}x"),
            ]);
            deflate_json.push(format!(
                "    {{\"corpus\":\"{name}\",\"level\":\"{level:?}\",\"mb_per_s\":{mbs:.1},\"ratio\":{ratio:.2}}}"
            ));
        }
    }
    print_table(
        "E22b: DEFLATE compress throughput by corpus and level",
        &["corpus", "level", "bytes", "MB/s", "ratio"],
        &deflate_rows,
    );

    // --- PNG -------------------------------------------------------------
    let mut png_rows = Vec::new();
    let mut png_json = Vec::new();
    for content in [Content::Ui, Content::Gradient, Content::Photo] {
        let img = content.frame(320, 240, 7);
        let pixel_bytes = (320 * 240 * 4) as f64;
        let opts = png::PngOptions::default();
        let _ = png::encode(&img, opts);
        let reps = 7;
        let mut enc_times = Vec::new();
        let mut dec_times = Vec::new();
        let mut encoded = Vec::new();
        for _ in 0..reps {
            let (e, us) = timed(|| png::encode(&img, opts));
            enc_times.push(us);
            let (d, dus) = timed(|| png::decode(&e).expect("decode"));
            dec_times.push(dus);
            assert_eq!(d, img, "{}", content.name());
            encoded = e;
        }
        let enc_mbs = pixel_bytes / median(enc_times);
        let dec_mbs = pixel_bytes / median(dec_times);
        png_rows.push(vec![
            content.name().to_string(),
            format!("{}", encoded.len()),
            format!("{enc_mbs:.0}"),
            format!("{dec_mbs:.0}"),
        ]);
        png_json.push(format!(
            "    {{\"content\":\"{}\",\"encode_mb_per_s\":{enc_mbs:.1},\"decode_mb_per_s\":{dec_mbs:.1}}}",
            content.name()
        ));
    }
    print_table(
        "E22c: PNG whole-codec throughput (320x240, raw-pixel MB/s)",
        &["content", "bytes", "enc MB/s", "dec MB/s"],
        &png_rows,
    );

    // --- Whole-codec DCT sanity: the kernel win must survive the full
    //     encode path (gather, quantise, entropy, deflate).
    let photo = Content::Photo.frame(320, 240, 7);
    let codec = AnyCodec::new(CodecKind::Dct);
    let _ = codec.encode(&photo);
    let mut enc_times = Vec::new();
    for _ in 0..7 {
        let (_, us) = timed(|| codec.encode(&photo));
        enc_times.push(us);
    }
    let dct_encode_mbs = (320.0 * 240.0 * 4.0) / median(enc_times);

    let json = format!(
        "{{\n  \"schema\": \"adshare-bench-codecs/v1\",\n  \"dct\": {{\n    \"block_us\": {{\"naive_f32\": {:.4}, \"reference\": {:.4}, \"fast\": {:.4}}},\n    \"speedup_fast_vs_naive\": {speedup_naive:.2},\n    \"speedup_fast_vs_reference\": {speedup_ref:.2},\n    \"encode_mb_per_s\": {dct_encode_mbs:.1}\n  }},\n  \"deflate\": [\n{}\n  ],\n  \"png\": [\n{}\n  ],\n  \"checks\": {{\"dct_fast_ge_2x_naive\": {}}}\n}}\n",
        per_block(naive_us),
        per_block(reference_us),
        per_block(fast_us),
        deflate_json.join(",\n"),
        png_json.join(",\n"),
        speedup_naive >= 2.0,
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_codecs.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nbench json: {out}"),
        Err(e) => eprintln!("bench json write failed: {e}"),
    }

    println!("\nchecks:");
    println!(
        "  fast DCT >= 2x naive f32: {} ({speedup_naive:.2}x)",
        speedup_naive >= 2.0
    );
    println!("  fast DCT vs scalar fixed-point: {speedup_ref:.2}x (informational)");
    println!("  whole-path DCT encode: {dct_encode_mbs:.0} MB/s (informational)");
    if speedup_naive < 2.0 {
        eprintln!("\nexpected the vectorised DCT kernel to be >= 2x the naive f32 kernel");
        std::process::exit(1);
    }
}
