//! E19 — adversarial scenario suite: the four canonical schedules from
//! `adshare_session::scenario::presets` and `adshare_relay::scenario`, run
//! under fixed seeds with the health engine as pass/fail oracle.
//!
//! * **flash_crowd** — 100 joiners inside one catch-up refresh interval
//!   hit the relay's shadow-state path; half leave again mid-run.
//! * **churn** — viewers join and leave every 1.5 s for 20 s.
//! * **bandwidth_cliff** — a 6 Mb/s video link collapses to 2 Mb/s and
//!   recovers; AIMD must down-shift and the tail must repair losslessly.
//! * **floor_storm** — six viewers fight over the floor across
//!   duplicating links while the chair flips the HID status.
//!
//! Each run writes its `adshare-scenario/v1` outcome document into
//! `$OBS_SNAPSHOT_DIR` (default `target/obs`) for `obs_schema_check`; a
//! failing run also leaves its event log and any CRITICAL black boxes
//! there for CI to upload. Exits non-zero when any scenario fails, so the
//! suite doubles as a release gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adshare_bench::print_table;
use adshare_relay::scenario::{run_flash_crowd, FlashCrowd};
use adshare_session::scenario::{presets, run_scenario, ScenarioOutcome};

/// Fixed seeds: CI reruns must reproduce bit-identical verdicts.
const FLASH_SEED: u64 = 708;
const CHURN_SEED: u64 = 41;
const CLIFF_SEED: u64 = 913;
const FLOOR_SEED: u64 = 1201;

fn artifact_dir() -> PathBuf {
    PathBuf::from(
        std::env::var("OBS_SNAPSHOT_DIR")
            .unwrap_or_else(|_| adshare_bench::OBS_SNAPSHOT_DIR.into()),
    )
}

fn run_all(dir: &Path) -> Vec<ScenarioOutcome> {
    let mut out = Vec::new();

    let mut fc = FlashCrowd::new(FLASH_SEED);
    fc.dump_dir = Some(dir.to_path_buf());
    out.push(run_flash_crowd(&fc).0);

    for scn in [
        presets::churn(CHURN_SEED),
        presets::bandwidth_cliff(CLIFF_SEED),
        presets::floor_storm(FLOOR_SEED),
    ] {
        let mut scn = scn;
        scn.dump_dir = Some(dir.to_path_buf());
        out.push(run_scenario(&scn).0);
    }
    out
}

fn main() -> ExitCode {
    let dir = artifact_dir();
    let outcomes = run_all(&dir);

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.name.clone(),
                o.seed.to_string(),
                if o.passed { "pass" } else { "FAIL" }.to_string(),
                o.worst.as_str().to_string(),
                o.reports.len().to_string(),
                o.active_participants.to_string(),
                if o.converged { "yes" } else { "NO" }.to_string(),
                o.violations.len().to_string(),
            ]
        })
        .collect();
    print_table(
        "E19: adversarial scenarios vs the health oracle",
        &[
            "scenario",
            "seed",
            "verdict",
            "worst",
            "checks",
            "active",
            "converged",
            "violations",
        ],
        &rows,
    );

    let mut failed = false;
    for o in &outcomes {
        if let Err(e) = o.write_artifacts(&dir) {
            eprintln!("cannot write artifacts for {}: {e}", o.name);
            failed = true;
        }
        if !o.passed || !o.converged {
            failed = true;
            for v in &o.violations {
                eprintln!("{}: {v}", o.name);
            }
            if !o.converged {
                eprintln!("{}: viewers did not converge to the AH desktop", o.name);
            }
        }
    }
    println!("\nartifacts: {}", dir.display());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
