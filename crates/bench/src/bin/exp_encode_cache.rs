//! E16 — the parallel tile-encode pipeline and its cross-frame
//! content-addressed cache (`adshare-encode`), measured against the legacy
//! serial per-step configuration on the three regimes it was built for:
//!
//! * **scroll** — big damage every tick (scroll ablation re-encodes the
//!   whole scrolled area): when the per-tick scroll delta is tile-aligned,
//!   every shifted tile rehashes to content the cache already holds, so
//!   only the freshly exposed row costs an encode; the worker pool also
//!   gets its largest batches here (a wall-clock win where cores exist).
//! * **ping-pong** — two alternating frames (blinking caret regime): frame
//!   N+2 is pixel-identical to frame N, so the *cross-frame cache* is the
//!   win; the per-step cache re-encodes every tick forever.
//! * **fan-out** — participants joining a mostly-static session at
//!   different times, each forcing a full refresh: the cache built for the
//!   first participant serves the rest, across steps and transports.
//!
//! Emits an `adshare-obs/v1` snapshot to `target/obs/exp_encode_cache.json`
//! (validated by `obs_schema_check`) and a machine-readable comparison to
//! `BENCH_encode.json`.

use adshare_bench::{emit_snapshot, print_table, timed, Content};
use adshare_encode::{EncodeConfig, TileConfig};
use adshare_netsim::udp::LinkConfig;
use adshare_screen::workload::{PingPong, Scrolling, Typing, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One configuration's cost on one workload.
#[derive(Debug, Clone, Copy)]
struct Outcome {
    encodes: u64,
    encoded_kib: u64,
    encode_wall_ms: f64,
    encode_cpu_ms: f64,
    cache_hits: u64,
    saved_kib: u64,
    run_ms: f64,
}

fn config(pipelined: bool, use_move_rectangle: bool, tile_side: u32) -> AhConfig {
    AhConfig {
        use_move_rectangle,
        encode: if pipelined {
            EncodeConfig {
                workers: 4,
                tile: TileConfig::square(tile_side),
                ..EncodeConfig::default()
            }
        } else {
            // The legacy path: serial, cache lives one step.
            EncodeConfig {
                workers: 1,
                tile: TileConfig::square(tile_side),
                cross_frame_cache: false,
                ..EncodeConfig::default()
            }
        },
        ..AhConfig::default()
    }
}

fn outcome(s: &SimSession, run_ms: f64) -> Outcome {
    let snap = s.obs().registry.snapshot();
    let st = s.ah.stats();
    Outcome {
        encodes: st.encodes,
        encoded_kib: st.encoded_bytes / 1024,
        encode_wall_ms: snap.counter("ah.encode.wall_us_total").unwrap_or(0) as f64 / 1000.0,
        encode_cpu_ms: snap.counter("ah.encode.cpu_us_total").unwrap_or(0) as f64 / 1000.0,
        cache_hits: snap.counter("ah.encode.cache.hits").unwrap_or(0),
        saved_kib: snap.counter("ah.encode.cache.bytes_saved").unwrap_or(0) / 1024,
        run_ms,
    }
}

/// Scroll ablation (no MoveRectangle): the whole scrolled area re-encodes
/// every tick. 4 lines × 14 px = 56 px per tick, matched by 56-px tiles
/// and a 504×392 (9×7 tile) content area, so shifted rows rehash to
/// already-cached tiles and only the fresh bottom row misses.
fn run_scroll(pipelined: bool) -> Outcome {
    let mut d = Desktop::new(800, 600);
    let w = d.create_window(1, Rect::new(40, 40, 504, 392), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, config(pipelined, false, 56), 161);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        162,
    );
    let mut wl = Scrolling::new(w, 4);
    let mut rng = StdRng::seed_from_u64(163);
    let (_, us) = timed(|| {
        for _ in 0..60 {
            wl.tick(s.ah.desktop_mut(), &mut rng);
            s.step(16_000);
        }
        s.run_until(10_000, 20_000_000, |s| s.converged(p))
            .expect("scroll converges");
    });
    outcome(&s, us / 1000.0)
}

/// Two alternating frames: the cross-frame cache's best case.
fn run_ping_pong(pipelined: bool) -> Outcome {
    let mut d = Desktop::new(800, 600);
    let w = d.create_window(1, Rect::new(60, 50, 400, 300), [245, 245, 245, 255]);
    let mut s = SimSession::new(d, config(pipelined, true, 64), 171);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        172,
    );
    let mut wl = PingPong::new(w, Rect::new(32, 32, 256, 192));
    let mut rng = StdRng::seed_from_u64(173);
    let (_, us) = timed(|| {
        for _ in 0..60 {
            wl.tick(s.ah.desktop_mut(), &mut rng);
            s.step(16_000);
        }
        s.run_until(10_000, 20_000_000, |s| s.converged(p))
            .expect("ping-pong converges");
    });
    outcome(&s, us / 1000.0)
}

/// Staggered joiners over mostly-static content: each join's PLI forces a
/// full refresh whose tiles the first encode already paid for. Both
/// windows hold photographic content so every tile is distinct — a solid
/// fill would let even the per-step cache collapse the refresh.
fn run_fan_out(pipelined: bool, emit: bool) -> Outcome {
    let mut d = Desktop::new(1024, 768);
    let w = d.create_window(1, Rect::new(80, 60, 512, 384), [248, 248, 248, 255]);
    let w2 = d.create_window(2, Rect::new(620, 100, 384, 384), [230, 238, 246, 255]);
    d.draw(w, 0, 0, &Content::Photo.frame(512, 384, 7));
    d.draw(w2, 0, 0, &Content::Photo.frame(384, 384, 9));
    let mut s = SimSession::new(d, config(pipelined, true, 64), 181);
    let first = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        182,
    );
    let mut wl = Typing::new(w, 1);
    let mut rng = StdRng::seed_from_u64(183);
    let mut joiners = vec![first];
    let (_, us) = timed(|| {
        for tick in 0..90 {
            if tick == 20 || tick == 45 || tick == 70 {
                // A new participant: its join PLI forces a full refresh of
                // every shared window.
                joiners.push(s.add_udp_participant(
                    Layout::Original,
                    LinkConfig::default(),
                    LinkConfig::default(),
                    None,
                    190 + tick,
                ));
            }
            wl.tick(s.ah.desktop_mut(), &mut rng);
            s.step(16_000);
        }
        s.run_until(10_000, 20_000_000, |s| {
            joiners.iter().all(|&p| s.converged(p))
        })
        .expect("fan-out converges");
    });
    if emit {
        match emit_snapshot(&s.obs().registry, "exp_encode_cache") {
            Ok(path) => println!("obs snapshot: {}", path.display()),
            Err(e) => eprintln!("obs snapshot write failed: {e}"),
        }
    }
    outcome(&s, us / 1000.0)
}

fn json_for(name: &str, base: &Outcome, pipe: &Outcome) -> String {
    let obj = |o: &Outcome| {
        format!(
            "{{\"encodes\":{},\"encoded_kib\":{},\"encode_wall_ms\":{:.1},\"encode_cpu_ms\":{:.1},\"cache_hits\":{},\"bytes_saved_kib\":{},\"run_ms\":{:.1}}}",
            o.encodes, o.encoded_kib, o.encode_wall_ms, o.encode_cpu_ms, o.cache_hits, o.saved_kib, o.run_ms
        )
    };
    format!(
        "    {{\"workload\":\"{name}\",\"baseline\":{},\"pipelined\":{},\"encode_reduction_x\":{:.2},\"wall_speedup_x\":{:.2}}}",
        obj(base),
        obj(pipe),
        base.encodes as f64 / pipe.encodes.max(1) as f64,
        base.encode_wall_ms / pipe.encode_wall_ms.max(0.001),
    )
}

fn main() {
    let workloads: Vec<(&str, Outcome, Outcome)> = vec![
        ("scroll", run_scroll(false), run_scroll(true)),
        ("ping-pong", run_ping_pong(false), run_ping_pong(true)),
        (
            "fan-out",
            run_fan_out(false, false),
            run_fan_out(true, true),
        ),
    ];

    let rows: Vec<Vec<String>> = workloads
        .iter()
        .flat_map(|(name, base, pipe)| {
            let row = |cfg: &str, o: &Outcome| {
                vec![
                    format!("{name}/{cfg}"),
                    format!("{}", o.encodes),
                    format!("{}", o.encoded_kib),
                    format!("{:.1}", o.encode_wall_ms),
                    format!("{:.1}", o.encode_cpu_ms),
                    format!("{}", o.cache_hits),
                    format!("{}", o.saved_kib),
                ]
            };
            vec![row("serial+per-step", base), row("pipelined", pipe)]
        })
        .collect();
    print_table(
        "E16: tile-encode pipeline vs serial per-step encoding",
        &[
            "workload/config",
            "encodes",
            "enc KiB",
            "enc wall ms",
            "enc cpu ms",
            "cache hits",
            "saved KiB",
        ],
        &rows,
    );

    let entries: Vec<String> = workloads
        .iter()
        .map(|(n, b, p)| json_for(n, b, p))
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"adshare-bench-encode/v1\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_encode.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nbench json: {out}"),
        Err(e) => eprintln!("bench json write failed: {e}"),
    }

    // The hard gate is the encode-call count: it is deterministic and
    // machine-independent. Wall-clock is reported alongside — the pool
    // only pays off where cores exist, which a 1-CPU CI runner lacks.
    println!("\nchecks:");
    let mut ok = true;
    for (name, base, pipe) in &workloads {
        let reduction = base.encodes as f64 / pipe.encodes.max(1) as f64;
        let speedup = base.encode_wall_ms / pipe.encode_wall_ms.max(0.001);
        let pass = reduction >= 2.0;
        ok &= pass;
        println!(
            "  {name}: encode calls {} -> {} ({reduction:.1}x) {}; encode wall {:.0} ms -> {:.0} ms ({speedup:.1}x, informational)",
            base.encodes,
            pipe.encodes,
            if pass { "[>=2x: ok]" } else { "[>=2x: MISS]" },
            base.encode_wall_ms,
            pipe.encode_wall_ms,
        );
    }
    if !ok {
        eprintln!("\nexpected >=2x encode-call reduction on every workload");
        std::process::exit(1);
    }
}
