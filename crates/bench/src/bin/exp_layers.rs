//! E20 — layered quality across a heterogeneous-bandwidth tree: the fast
//! subtree stays bit-identical to a single-tier baseline, the slow subtree
//! rides a usable lower tier instead of starving, and the AH's egress stays
//! flat versus verbatim fan-out.
//!
//! Every run shares one typing workload (same desktop, same seeds, same
//! wall time) over the same tree — one relay, two 6 Mb/s legs, one
//! 1.2 Mb/s UDP leg and one 1.2 Mb/s RFC 4571 TCP leg — and differs only
//! in the relay's layers setting:
//!
//! * **verbatim** — layers off; every leg gets the lossless stream and the
//!   slow legs queue behind their pacers.
//! * **layered** — layers on; the relay's per-leg AIMD estimate selects a
//!   tier per subtree, re-encoding locally at frame boundaries. The fast
//!   legs must forward the exact bytes of the verbatim run (wire digest
//!   equality) and the AH must not pay for the slow subtree's relief
//!   (egress ≤ 1.05× verbatim).
//! * **slow subtree** — a relay whose legs are all slow, with
//!   `subscribe_upstream` on: it asks the AH for the Balanced rendition
//!   via a `TierRequest`, so nobody encodes or ships tiers no subtree
//!   watches.
//!
//! Emits the registry snapshot (`adshare-obs/v1`) and the layered relay's
//! tier-stats document (`adshare-relay-tier-stats/v1`) for
//! `obs_schema_check`.

use std::path::Path;

use adshare_bench::{emit_snapshot, print_table, OBS_SNAPSHOT_DIR};
use adshare_layers::{LayersConfig, TierStats};
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_rate::QualityTier;
use adshare_relay::sim::{RelaySim, Upstream};
use adshare_relay::RelayConfig;
use adshare_screen::workload::{Typing, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_sdp::OfferParams;
use adshare_session::{AhConfig, Layout};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pacer cap on the fast subtree's legs (bits/second).
const FAST_CAP: u64 = 6_000_000;
/// Pacer cap on the slow subtree's legs: below the layers band's
/// `lossless_above`, so the tier controller must hand them Balanced.
const SLOW_CAP: u64 = 1_200_000;
/// Typing ticks after initial sync (33 ms apart ≈ 4 s of edits).
const WORK_TICKS: usize = 120;
/// Settle steps after the workload (5 ms apart = 3 s).
const SETTLE_STEPS: usize = 600;
/// One seed for every run: digest parity compares wire bytes, so the
/// verbatim and layered runs must be driven by identical randomness.
const SEED: u64 = 0xE20;

fn desktop() -> (Desktop, adshare_screen::WindowId) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    (d, w)
}

fn clean() -> LinkConfig {
    LinkConfig {
        delay_us: 10_000,
        ..Default::default()
    }
}

struct LegView {
    label: &'static str,
    leg: usize,
    tier: Option<QualityTier>,
    digest: u64,
    divergence: f64,
    regions: u64,
}

struct Outcome {
    egress: u64,
    fast_converged: bool,
    legs: Vec<LegView>,
    stats: TierStats,
    sim: RelaySim,
}

/// One heterogeneous tree under the given layers setting. The topology,
/// seeds and workload are identical across calls; only `layers` differs.
fn run_tree(layers: Option<LayersConfig>) -> Outcome {
    let (d, w) = desktop();
    let mut sim = RelaySim::new(d, AhConfig::default(), &OfferParams::default(), SEED);
    let cfg = RelayConfig {
        layers,
        ..RelayConfig::default()
    };
    let relay = sim.add_relay(Upstream::Ah, cfg, clean(), clean(), SEED + 2);
    let fast_a = sim.add_participant_rate(
        relay,
        Layout::Original,
        clean(),
        clean(),
        SEED + 10,
        Some(FAST_CAP),
    );
    let fast_b = sim.add_participant_rate(
        relay,
        Layout::Original,
        clean(),
        clean(),
        SEED + 11,
        Some(FAST_CAP),
    );
    let slow_udp = sim.add_participant_rate(
        relay,
        Layout::Original,
        clean(),
        clean(),
        SEED + 12,
        Some(SLOW_CAP),
    );
    let slow_tcp = sim.add_participant_tcp(
        relay,
        Layout::Original,
        TcpConfig {
            rate_bps: 1_500_000,
            ..TcpConfig::default()
        },
        clean(),
        SEED + 13,
        Some(SLOW_CAP),
    );
    assert!(
        sim.run_until(10_000, 30_000, |s| {
            s.converged(fast_a) && s.converged(fast_b)
        }),
        "initial sync of the fast subtree"
    );
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    for _ in 0..WORK_TICKS {
        wl.tick(sim.ah.desktop_mut(), &mut rng);
        sim.step(33_333);
    }
    for _ in 0..SETTLE_STEPS {
        sim.step(5_000);
    }
    let legs = [
        ("fast-udp", fast_a),
        ("fast-udp", fast_b),
        ("slow-udp", slow_udp),
        ("slow-tcp", slow_tcp),
    ]
    .into_iter()
    .map(|(label, p)| {
        let (_, leg) = sim.participant_leg(p);
        LegView {
            label,
            leg,
            tier: sim.relay(relay).leg_tier(leg),
            digest: sim.relay(relay).leg_wire_digest(leg),
            divergence: sim.divergence(p),
            regions: sim.participant(p).stats().regions_applied,
        }
    })
    .collect();
    let fast_converged = sim.converged(fast_a) && sim.converged(fast_b);
    Outcome {
        egress: sim.ah_egress_bytes(),
        fast_converged,
        legs,
        stats: sim.tier_stats(relay),
        sim,
    }
}

struct SubtreeOutcome {
    egress: u64,
    stats: TierStats,
    upstream_tier: QualityTier,
    divergence: f64,
    regions: u64,
}

/// A relay whose whole subtree is slow, subscribing upstream: the relay
/// must ask the AH for the Balanced rendition instead of receiving (and
/// paying for) lossless bytes it would immediately re-encode down.
fn run_slow_subtree() -> SubtreeOutcome {
    let (d, w) = desktop();
    let mut sim = RelaySim::new(d, AhConfig::default(), &OfferParams::default(), SEED);
    let cfg = RelayConfig {
        layers: Some(LayersConfig {
            subscribe_upstream: true,
            ..LayersConfig::default()
        }),
        ..RelayConfig::default()
    };
    let relay = sim.add_relay(Upstream::Ah, cfg, clean(), clean(), SEED + 2);
    let slow_a = sim.add_participant_rate(
        relay,
        Layout::Original,
        clean(),
        clean(),
        SEED + 10,
        Some(SLOW_CAP),
    );
    let slow_b = sim.add_participant_rate(
        relay,
        Layout::Original,
        clean(),
        clean(),
        SEED + 11,
        Some(SLOW_CAP),
    );
    assert!(
        sim.run_until(10_000, 30_000, |s| {
            s.participant(slow_a).stats().regions_applied > 0
                && s.participant(slow_b).stats().regions_applied > 0
        }),
        "initial catch-up of the slow subtree"
    );
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    for _ in 0..WORK_TICKS {
        wl.tick(sim.ah.desktop_mut(), &mut rng);
        sim.step(33_333);
    }
    for _ in 0..SETTLE_STEPS {
        sim.step(5_000);
    }
    let upstream_tier = sim.relay(relay).upstream_tier();
    let divergence = sim.divergence(slow_a);
    let regions = sim.participant(slow_a).stats().regions_applied;
    SubtreeOutcome {
        egress: sim.ah_egress_bytes(),
        stats: sim.tier_stats(relay),
        upstream_tier,
        divergence,
        regions,
    }
}

fn kib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

fn tier_label(t: Option<QualityTier>) -> String {
    match t {
        None => "-".to_string(),
        Some(QualityTier::Lossless) => "lossless".to_string(),
        Some(QualityTier::Balanced) => "balanced".to_string(),
        Some(QualityTier::Economy) => "economy".to_string(),
    }
}

fn main() {
    let verbatim = run_tree(None);
    let layered = run_tree(Some(LayersConfig::default()));
    let subtree = run_slow_subtree();

    let mut rows = Vec::new();
    for (run, o) in [("verbatim", &verbatim), ("layered", &layered)] {
        for v in &o.legs {
            let leg_stats = o.stats.legs.iter().find(|l| l.leg == v.leg);
            rows.push(vec![
                run.to_string(),
                v.label.to_string(),
                tier_label(v.tier),
                format!("{:016x}", v.digest),
                leg_stats.map_or("-".into(), |l| l.synth_msgs.to_string()),
                format!("{:.1}", v.divergence),
                v.regions.to_string(),
            ]);
        }
    }
    print_table(
        "E20: per-leg tier selection on a 2x6 Mb/s + 2x1.2 Mb/s tree (4 s typing)",
        &[
            "run",
            "leg",
            "tier",
            "wire digest",
            "synth msgs",
            "divergence",
            "regions",
        ],
        &rows,
    );
    println!(
        "\nAH egress: verbatim {} KiB, layered {} KiB ({:.3}x), slow-subtree {} KiB ({:.3}x)",
        kib(verbatim.egress),
        kib(layered.egress),
        layered.egress as f64 / verbatim.egress as f64,
        kib(subtree.egress),
        subtree.egress as f64 / verbatim.egress as f64,
    );
    println!(
        "slow subtree upstream: tier {} after {} TierRequests, divergence {:.1}, {} regions",
        tier_label(Some(subtree.upstream_tier)),
        subtree.stats.tier_requests,
        subtree.divergence,
        subtree.regions,
    );
    println!("\nchecks:");
    println!("  the fast legs' wire digests match the verbatim run bit-exactly; the");
    println!("  slow legs ride Balanced with synthesized renditions (no starvation);");
    println!("  AH egress stays within 5% of verbatim fan-out; an all-slow subtree");
    println!("  subscribes upstream so the AH ships Balanced, not discarded lossless.");

    // Gate 1: the fast subtree is bit-identical to the single-tier baseline.
    assert!(verbatim.fast_converged, "verbatim fast legs must converge");
    assert!(layered.fast_converged, "layered fast legs must converge");
    for i in 0..2 {
        assert_eq!(
            layered.legs[i].tier,
            Some(QualityTier::Lossless),
            "fast leg must stay lossless"
        );
        assert_eq!(
            layered.legs[i].digest, verbatim.legs[i].digest,
            "fast leg {i}: layered wire digest must equal the verbatim baseline"
        );
        assert!(
            layered.legs[i].regions > 0,
            "fast leg {i} must actually carry traffic"
        );
    }

    // Gate 2: the slow subtree degrades to a usable tier instead of starving.
    for v in &layered.legs[2..] {
        assert_eq!(
            v.tier,
            Some(QualityTier::Balanced),
            "{}: a 1.2 Mb/s leg must ride Balanced",
            v.label
        );
        let s = layered
            .stats
            .legs
            .iter()
            .find(|l| l.leg == v.leg)
            .expect("layered leg has tier stats");
        assert!(
            s.synth_msgs > 0,
            "{}: the relay must synthesize the lower rendition: {s:?}",
            v.label
        );
        assert!(
            v.divergence.is_finite() && v.divergence < 40.0,
            "{}: degraded leg must keep tracking the desktop, got {}",
            v.label,
            v.divergence
        );
        assert!(
            v.regions > 0,
            "{}: degraded leg must keep rendering",
            v.label
        );
    }

    // Gate 3: layering is free at the AH — egress flat vs verbatim fan-out.
    let ratio = layered.egress as f64 / verbatim.egress as f64;
    assert!(
        ratio <= 1.05,
        "AH egress must stay flat under layering: {ratio:.3}x"
    );

    // Gate 4: an all-slow subtree pulls the lower tier from the source.
    assert!(
        subtree.stats.tier_requests >= 1,
        "slow subtree must send a TierRequest upstream"
    );
    assert_eq!(
        subtree.upstream_tier,
        QualityTier::Balanced,
        "slow subtree must subscribe to Balanced upstream"
    );
    assert!(
        subtree.divergence.is_finite() && subtree.divergence < 40.0 && subtree.regions > 0,
        "slow subtree must keep rendering from the upstream Balanced feed"
    );

    // Export for obs_schema_check: registry snapshot + tier-stats document.
    let dir = std::env::var("OBS_SNAPSHOT_DIR").unwrap_or_else(|_| OBS_SNAPSHOT_DIR.to_string());
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir).expect("create snapshot dir");
    match emit_snapshot(&layered.sim.obs().registry, "exp_layers") {
        Ok(path) => println!("\nobs snapshot: {}", path.display()),
        Err(e) => eprintln!("obs snapshot write failed: {e}"),
    }
    let stats_path = dir.join("exp_layers_tier_stats.json");
    std::fs::write(&stats_path, layered.stats.to_json()).expect("write tier stats");
    println!("tier stats:   {}", stats_path.display());
}
