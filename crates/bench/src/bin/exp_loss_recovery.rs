//! E5 — Loss recovery: NACK retransmission vs PLI full refresh
//! (draft §4.3, §5.3).
//!
//! Under 0.1%–10% UDP loss, a typing workload runs for 5 simulated
//! seconds; we measure the time from the last keystroke to a fully
//! consistent screen and the recovery overhead, with retransmissions
//! enabled (NACK) vs disabled (PLI-only fallback).

use adshare_bench::{emit_snapshot, print_table};
use adshare_netsim::udp::LinkConfig;
use adshare_obs::Registry;
use adshare_screen::workload::{Typing, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    settle_ms: f64,
    retransmits: u64,
    plis: u64,
    bytes: u64,
    registry: Registry,
}

fn run(loss: f64, retransmissions: bool, seed: u64) -> Outcome {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    let cfg = AhConfig {
        retransmissions,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, seed);
    let link = LinkConfig {
        loss,
        delay_us: 25_000,
        jitter_us: 5_000,
        ..Default::default()
    };
    let p = s.add_udp_participant(
        Layout::Original,
        link,
        LinkConfig::default(),
        None,
        seed + 1,
    );
    s.run_until(10_000, 300_000_000, |s| s.converged(p))
        .expect("initial sync");

    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    for _ in 0..150 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let stop = s.clock.now_us();
    let base_bytes = s.ah.participant_bytes_sent(s.handle(p));
    let settle_ms = s
        .run_until(10_000, 300_000_000, |s| s.converged(p))
        .map(|_| (s.clock.now_us() - stop) as f64 / 1000.0)
        .unwrap_or(f64::NAN);
    Outcome {
        settle_ms,
        retransmits: s.ah.stats().retransmits,
        plis: s.participant(p).stats().plis_sent,
        bytes: s.ah.participant_bytes_sent(s.handle(p)) - base_bytes,
        registry: s.obs().registry.clone(),
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut last_registry = None;
    for &loss in &[0.001f64, 0.01, 0.03, 0.10] {
        let nack = run(loss, true, 100);
        let pli = run(loss, false, 200);
        last_registry = Some(nack.registry.clone());
        rows.push(vec![
            format!("{:.1}%", loss * 100.0),
            format!("{:.0}", nack.settle_ms),
            format!("{:.0}", pli.settle_ms),
            format!("{}", nack.retransmits),
            format!("{}", nack.plis),
            format!("{}", pli.plis),
            format!("{}", nack.bytes / 1024),
            format!("{}", pli.bytes / 1024),
        ]);
    }
    print_table(
        "E5: recovery after a 5 s typing burst under UDP loss (NACK vs PLI-only)",
        &[
            "loss",
            "settle ms (NACK)",
            "settle ms (PLI)",
            "retransmits",
            "PLIs (NACK)",
            "PLIs (PLI-only)",
            "tail KiB (NACK)",
            "tail KiB (PLI)",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  NACK repairs with per-packet retransmissions; the PLI-only AH pays with");
    println!("  full-screen refreshes (more PLIs, larger tails) and recovers more slowly");
    println!("  as loss grows.");

    // Export the observability registry of the last (10% loss, NACK) run so
    // CI can validate the snapshot format.
    if let Some(registry) = last_registry {
        match emit_snapshot(&registry, "exp_loss_recovery") {
            Ok(path) => println!("\nobs snapshot: {}", path.display()),
            Err(e) => eprintln!("obs snapshot write failed: {e}"),
        }
    }
}
