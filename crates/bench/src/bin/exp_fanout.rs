//! E7 — Unicast vs multicast fan-out (draft §4.2: "The AH can support both
//! multicast and unicast transmissions ... to TCP participants, UDP
//! participants, and several multicast addresses in the same sharing
//! session").
//!
//! A scrolling workload runs for 3 simulated seconds while N participants
//! watch. We compare the AH's total egress and encode count when everyone
//! is a UDP unicast viewer vs one multicast group.

use adshare_bench::{emit_snapshot, print_table};
use adshare_netsim::udp::LinkConfig;
use adshare_obs::Registry;
use adshare_screen::workload::{Scrolling, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(n: usize, multicast: bool) -> (u64, u64, bool, Registry) {
    let mut d = Desktop::new(800, 600);
    let w = d.create_window(1, Rect::new(40, 40, 400, 300), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 11);
    let link = LinkConfig {
        delay_us: 10_000,
        ..Default::default()
    };
    let ids: Vec<usize> = (0..n)
        .map(|i| {
            if multicast {
                s.add_multicast_participant(
                    Layout::Original,
                    link,
                    LinkConfig::default(),
                    20 + i as u64,
                )
            } else {
                s.add_udp_participant(
                    Layout::Original,
                    link,
                    LinkConfig::default(),
                    None,
                    20 + i as u64,
                )
            }
        })
        .collect();
    s.run_until(10_000, 120_000_000, |s| ids.iter().all(|&p| s.converged(p)))
        .expect("all sync");

    let base: u64 = if multicast {
        s.ah.participant_bytes_sent(s.handle(ids[0]))
    } else {
        ids.iter()
            .map(|&p| s.ah.participant_bytes_sent(s.handle(p)))
            .sum()
    };
    let base_encodes = s.ah.stats().encodes;

    let mut wl = Scrolling::new(w, 1);
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..90 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let all = s
        .run_until(10_000, 120_000_000, |s| ids.iter().all(|&p| s.converged(p)))
        .is_some();

    let egress: u64 = if multicast {
        s.ah.participant_bytes_sent(s.handle(ids[0]))
    } else {
        ids.iter()
            .map(|&p| s.ah.participant_bytes_sent(s.handle(p)))
            .sum()
    };
    (
        egress - base,
        s.ah.stats().encodes - base_encodes,
        all,
        s.obs().registry.clone(),
    )
}

fn main() {
    let mut rows = Vec::new();
    let mut last_registry = None;
    for n in [1usize, 4, 16, 48] {
        let (uni_bytes, uni_encodes, uni_ok, _) = run(n, false);
        let (mc_bytes, mc_encodes, mc_ok, mc_registry) = run(n, true);
        last_registry = Some(mc_registry);
        rows.push(vec![
            format!("{n}"),
            format!("{}", uni_bytes / 1024),
            format!("{}", mc_bytes / 1024),
            format!("{:.1}x", uni_bytes as f64 / mc_bytes.max(1) as f64),
            format!("{uni_encodes}"),
            format!("{mc_encodes}"),
            format!("{}", uni_ok && mc_ok),
        ]);
    }
    print_table(
        "E7: AH egress for N viewers of a 3 s scroll (unicast UDP vs multicast)",
        &[
            "N",
            "unicast KiB",
            "multicast KiB",
            "egress ratio",
            "encodes (uni)",
            "encodes (mc)",
            "all converged",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  unicast egress grows ~linearly with N; multicast stays ~flat (the per-step");
    println!("  encode cache also keeps unicast encodes flat — one encode, N sends).");

    // Export the observability registry of the last (48-viewer multicast)
    // run so CI can validate the snapshot format.
    if let Some(registry) = last_registry {
        match emit_snapshot(&registry, "exp_fanout") {
            Ok(path) => println!("\nobs snapshot: {}", path.display()),
            Err(e) => eprintln!("obs snapshot write failed: {e}"),
        }
    }
}
