//! E9 — Damage-merging strategy ablation (design choice called out in
//! DESIGN.md §5): how should the AH coalesce dirty rectangles before
//! encoding?
//!
//! A typing workload (many small scattered updates) and a dual-video
//! workload (two dense regions) run under PerRect / Greedy / BoundingBox
//! merging; we measure updates sent, encoded bytes, and re-encoded area.

use adshare_bench::print_table;
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::udp::LinkConfig;
use adshare_screen::damage::MergeStrategy;
use adshare_screen::workload::{Typing, Video, Workload};
use adshare_screen::{Desktop, Rect};
use adshare_session::{AhConfig, Layout, SimSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(strategy: MergeStrategy, scattered: bool) -> (u64, u64, u64) {
    let mut d = Desktop::new(800, 600);
    let w = d.create_window(1, Rect::new(40, 40, 480, 360), [250, 250, 250, 255]);
    let cfg = AhConfig {
        damage_strategy: strategy,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 21);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig {
            rate_bps: 1_000_000_000,
            delay_us: 5_000,
            send_buf: 8 << 20,
        },
        LinkConfig::default(),
        22,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("sync");
    let base_regions = s.ah.stats().region_msgs;
    let base_bytes = s.ah.stats().encoded_bytes;

    let mut rng = StdRng::seed_from_u64(23);
    if scattered {
        let mut t1 = Typing::new(w, 6);
        for _ in 0..60 {
            t1.tick(s.ah.desktop_mut(), &mut rng);
            s.step(33_333);
        }
    } else {
        let mut v1 = Video::new(w, Rect::new(10, 10, 150, 110));
        let mut v2 = Video::new(w, Rect::new(300, 220, 150, 110));
        for _ in 0..60 {
            v1.tick(s.ah.desktop_mut(), &mut rng);
            v2.tick(s.ah.desktop_mut(), &mut rng);
            s.step(33_333);
        }
    }
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("converges");
    let area: u64 = s.ah.stats().encoded_bytes - base_bytes;
    (
        s.ah.stats().region_msgs - base_regions,
        area,
        s.ah.stats().encodes,
    )
}

fn main() {
    let strategies: [(&str, MergeStrategy); 4] = [
        ("per-rect", MergeStrategy::PerRect),
        ("greedy-110", MergeStrategy::Greedy { slack_percent: 110 }),
        ("greedy-130", MergeStrategy::Greedy { slack_percent: 130 }),
        ("bounding-box", MergeStrategy::BoundingBox),
    ];
    for (title, scattered) in [
        ("typing (scattered small damage)", true),
        ("two videos (dense distant damage)", false),
    ] {
        let mut rows = Vec::new();
        for (name, strat) in strategies {
            let (updates, bytes, _) = run(strat, scattered);
            rows.push(vec![
                name.to_string(),
                format!("{updates}"),
                format!("{}", bytes / 1024),
                format!("{:.1}", bytes as f64 / updates.max(1) as f64 / 1024.0),
            ]);
        }
        print_table(
            &format!("E9: damage strategy — {title}"),
            &["strategy", "updates", "encoded KiB", "KiB/update"],
            &rows,
        );
    }
    println!("\nchecks:");
    println!("  per-rect minimises encoded bytes but maximises update count; bounding-box");
    println!("  inverts that (re-encoding untouched pixels between distant regions);");
    println!("  greedy merging sits between, and is the default.");
}
