//! E1 — Codec vs content type (draft §4.2).
//!
//! Claim under test: "PNG ... uses a lossless compression algorithm and
//! \[is\] more suitable for computer generated images. JPEG is lossy, but
//! more suitable for photographic images."
//!
//! For each content class and codec: encoded size, compression ratio vs raw
//! RGB, encode time, and reconstruction error.

use adshare_bench::{print_table, timed, Content};
use adshare_codec::codec::{AnyCodec, Codec, EncodeOptions};
use adshare_codec::deflate::Level;
use adshare_codec::CodecKind;

fn main() {
    const W: u32 = 320;
    const H: u32 = 240;
    let raw_bytes = (W * H * 3) as f64;

    let mut rows = Vec::new();
    for content in Content::ALL {
        let img = content.frame(W, H, 7);
        for kind in [
            CodecKind::Png,
            CodecKind::Dct,
            CodecKind::Rle,
            CodecKind::Raw,
        ] {
            let codec = AnyCodec::with_options(
                kind,
                EncodeOptions {
                    level: Level::Default,
                    quality: 75,
                },
            );
            // Warm once, then measure the median of 5 runs.
            let _ = codec.encode(&img);
            let mut times = Vec::new();
            let mut encoded = Vec::new();
            for _ in 0..5 {
                let (e, us) = timed(|| codec.encode(&img));
                times.push(us);
                encoded = e;
            }
            times.sort_by(f64::total_cmp);
            let decode = codec.decode(&encoded).expect("round trip");
            let err = img.mean_abs_error(&decode);
            rows.push(vec![
                content.name().to_string(),
                kind.encoding_name().to_string(),
                format!("{}", encoded.len()),
                format!("{:.2}x", raw_bytes / encoded.len() as f64),
                format!("{:.1}", times[2] / 1000.0),
                if kind.lossless() {
                    "0 (lossless)".into()
                } else {
                    format!("{err:.2}")
                },
            ]);
        }
    }
    print_table(
        "E1: codec size/speed/fidelity by content class (320x240)",
        &["content", "codec", "bytes", "ratio", "enc ms", "mean |err|"],
        &rows,
    );

    // The draft's headline claims, asserted:
    let size = |c: Content, k: CodecKind| AnyCodec::new(k).encode(&c.frame(W, H, 7)).len();
    let png_ui = size(Content::Ui, CodecKind::Png);
    let dct_ui = size(Content::Ui, CodecKind::Dct);
    let png_photo = size(Content::Photo, CodecKind::Png);
    let dct_photo = size(Content::Photo, CodecKind::Dct);
    println!("\nchecks:");
    println!(
        "  PNG beats DCT on computer-generated content: {} ({} vs {})",
        png_ui < dct_ui,
        png_ui,
        dct_ui
    );
    println!(
        "  DCT beats PNG on photographic content:       {} ({} vs {})",
        dct_photo < png_photo,
        dct_photo,
        png_photo
    );
}
