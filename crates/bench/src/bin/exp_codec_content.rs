//! E1 — Codec vs content type (draft §4.2).
//!
//! Claim under test: "PNG ... uses a lossless compression algorithm and
//! \[is\] more suitable for computer generated images. JPEG is lossy, but
//! more suitable for photographic images."
//!
//! For each content class and codec: encoded size, compression ratio vs raw
//! RGB, encode/decode throughput in MB/s of raw pixels, and reconstruction
//! error. The MB/s columns are the numbers EXPERIMENTS.md E22 quotes for
//! kernel before/after comparisons.

use adshare_bench::{print_table, timed, Content};
use adshare_codec::codec::{AnyCodec, Codec, EncodeOptions};
use adshare_codec::deflate::Level;
use adshare_codec::CodecKind;

fn main() {
    const W: u32 = 320;
    const H: u32 = 240;
    let raw_bytes = (W * H * 3) as f64;

    let mut rows = Vec::new();
    for content in Content::ALL {
        let img = content.frame(W, H, 7);
        for kind in [
            CodecKind::Png,
            CodecKind::Dct,
            CodecKind::Rle,
            CodecKind::Raw,
        ] {
            let codec = AnyCodec::with_options(
                kind,
                EncodeOptions {
                    level: Level::Default,
                    quality: 75,
                    ..EncodeOptions::default()
                },
            );
            // Warm once, then measure the median of 5 runs.
            let _ = codec.encode(&img);
            let mut times = Vec::new();
            let mut dec_times = Vec::new();
            let mut encoded = Vec::new();
            let mut decode = None;
            for _ in 0..5 {
                let (e, us) = timed(|| codec.encode(&img));
                times.push(us);
                let (d, dus) = timed(|| codec.decode(&e).expect("round trip"));
                dec_times.push(dus);
                encoded = e;
                decode = Some(d);
            }
            times.sort_by(f64::total_cmp);
            dec_times.sort_by(f64::total_cmp);
            // Throughput in MB of raw pixel data processed per second —
            // the unit kernel wins are quoted in (E22).
            let pixel_bytes = (W * H * 4) as f64;
            let enc_mbs = pixel_bytes / times[2];
            let dec_mbs = pixel_bytes / dec_times[2];
            let err = img.mean_abs_error(&decode.expect("decoded"));
            rows.push(vec![
                content.name().to_string(),
                kind.encoding_name().to_string(),
                format!("{}", encoded.len()),
                format!("{:.2}x", raw_bytes / encoded.len() as f64),
                format!("{:.1}", times[2] / 1000.0),
                format!("{enc_mbs:.0}"),
                format!("{dec_mbs:.0}"),
                if kind.lossless() {
                    "0 (lossless)".into()
                } else {
                    format!("{err:.2}")
                },
            ]);
        }
    }
    print_table(
        "E1: codec size/speed/fidelity by content class (320x240)",
        &[
            "content",
            "codec",
            "bytes",
            "ratio",
            "enc ms",
            "enc MB/s",
            "dec MB/s",
            "mean |err|",
        ],
        &rows,
    );

    // The draft's headline claims, asserted:
    let size = |c: Content, k: CodecKind| AnyCodec::new(k).encode(&c.frame(W, H, 7)).len();
    let png_ui = size(Content::Ui, CodecKind::Png);
    let dct_ui = size(Content::Ui, CodecKind::Dct);
    let png_photo = size(Content::Photo, CodecKind::Png);
    let dct_photo = size(Content::Photo, CodecKind::Dct);
    println!("\nchecks:");
    println!(
        "  PNG beats DCT on computer-generated content: {} ({} vs {})",
        png_ui < dct_ui,
        png_ui,
        dct_ui
    );
    println!(
        "  DCT beats PNG on photographic content:       {} ({} vs {})",
        dct_photo < png_photo,
        dct_photo,
        png_photo
    );
}
