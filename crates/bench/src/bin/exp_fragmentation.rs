//! E2 — RegionUpdate fragmentation overhead across MTUs (draft §5.2.2,
//! Table 2).
//!
//! For payload sizes from 1 KiB to 1 MiB and MTUs 576/1200/1500/9000:
//! packet count, total wire bytes, and per-payload overhead. Reassembly is
//! verified on every cell.

use adshare_bench::print_table;
use adshare_remoting::fragment::{fragment, Reassembler};
use adshare_remoting::message::{RegionUpdate, RemotingMessage};
use adshare_remoting::WindowId;
use bytes::Bytes;

fn main() {
    let sizes = [1usize << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];
    let mtus = [576usize, 1200, 1500, 9000];
    // Per-packet cost outside the remoting payload: RTP header (12) +
    // UDP/IP (28).
    const RTP_UDP_IP: usize = 12 + 28;

    let mut rows = Vec::new();
    for &size in &sizes {
        for &mtu in &mtus {
            let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let msg = RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(1),
                payload_type: 101,
                left: 100,
                top: 100,
                payload: Bytes::from(payload.clone()),
            });
            // The RTP payload budget is MTU minus RTP/UDP/IP headers.
            let budget = mtu - RTP_UDP_IP;
            let packets = fragment(&msg, budget).expect("fragment");
            let wire: usize = packets.iter().map(|p| p.payload.len() + RTP_UDP_IP).sum();
            let overhead = wire - size;

            // Verify lossless reassembly.
            let mut r = Reassembler::new();
            let mut got = None;
            for p in &packets {
                if let Some(m) = r.feed(p.marker, &p.payload).expect("reassemble") {
                    got = Some(m);
                }
            }
            assert_eq!(got.as_ref(), Some(&msg), "reassembly must be exact");

            rows.push(vec![
                format!("{}", size),
                format!("{mtu}"),
                format!("{}", packets.len()),
                format!("{wire}"),
                format!("{overhead}"),
                format!("{:.2}%", overhead as f64 * 100.0 / size as f64),
            ]);
        }
    }
    print_table(
        "E2: fragmentation overhead (RTP+UDP+IP headers + remoting headers)",
        &[
            "payload B",
            "MTU",
            "packets",
            "wire B",
            "overhead B",
            "overhead %",
        ],
        &rows,
    );
    println!("\nchecks:");
    println!("  every cell reassembled byte-exactly per Table 2 bit rules: true");
}
