//! Relay-local tier re-encoding.
//!
//! When a subtree cannot afford the tier arriving from upstream, the relay
//! synthesizes a lossier rendition from its shadow window state instead of
//! starving the leg. The encoder is a thin wrapper over the shared
//! [`EncodePipeline`]: tiles are content-hashed and cached per
//! `(content_hash, dims, tier)`, so a static region re-encodes **once** per
//! tier no matter how many legs subscribe to it or how many frames it
//! survives — the same economics the AH's multi-tier publication enjoys.

use adshare_codec::codec::{AnyCodec, EncodeOptions};
use adshare_codec::{Codec, CodecKind, Image, Rect};
use adshare_encode::{EncodeConfig, EncodePipeline, TileJob};
use adshare_rate::QualityTier;
use bytes::Bytes;

/// One re-encoded tile: payload type, window-local rect, payload.
pub type EncodedRegion = (u8, Rect, Bytes);

/// Tier re-encoder backed by the shared tile pipeline.
#[derive(Debug)]
pub struct TierEncoder {
    pipeline: EncodePipeline,
    /// RTP payload type for lossless (PNG) output.
    png_pt: u8,
    /// RTP payload type for lossy (DCT) output.
    dct_pt: u8,
}

impl TierEncoder {
    /// New encoder. `png_pt`/`dct_pt` are the session's negotiated payload
    /// types for the two codecs this encoder emits.
    pub fn new(cfg: EncodeConfig, png_pt: u8, dct_pt: u8) -> Self {
        TierEncoder {
            pipeline: EncodePipeline::new(cfg),
            png_pt,
            dct_pt,
        }
    }

    /// Mark a frame boundary (required by the pipeline's intra-step dedup).
    pub fn begin_frame(&mut self) {
        self.pipeline.begin_step();
    }

    /// Re-encode `rect` of a window whose full content is `content` at the
    /// given tier. Returns one entry per tile, in deterministic tile order.
    ///
    /// `rect` is window-local; out-of-bounds portions are clipped.
    pub fn encode_region(
        &mut self,
        content: &Image,
        rect: Rect,
        tier: QualityTier,
    ) -> Vec<EncodedRegion> {
        let Some(rect) = rect.intersect(&content.bounds()) else {
            return Vec::new();
        };
        let mut jobs = Vec::new();
        for tile in self.pipeline.tile(rect) {
            let Ok(crop) = content.crop(tile) else {
                continue;
            };
            jobs.push(TileJob {
                rect: tile,
                image: crop,
            });
        }
        let png_pt = self.png_pt;
        let dct_pt = self.dct_pt;
        let encode = move |img: &Image| -> (u8, Vec<u8>) {
            match tier.dct_quality() {
                Some(quality) => {
                    let codec = AnyCodec::with_options(
                        CodecKind::Dct,
                        EncodeOptions {
                            quality,
                            ..EncodeOptions::default()
                        },
                    );
                    (dct_pt, codec.encode(img))
                }
                None => (png_pt, AnyCodec::new(CodecKind::Png).encode(img)),
            }
        };
        self.pipeline
            .encode_batch(tier.as_gauge() as u8, jobs, encode)
            .into_iter()
            .map(|t| (t.payload_type, t.rect, t.payload))
            .collect()
    }

    /// Cross-frame cache occupancy in encoded-payload bytes.
    pub fn cache_bytes(&self) -> usize {
        self.pipeline.cache_bytes()
    }

    /// Cross-frame cache entries.
    pub fn cache_entries(&self) -> usize {
        self.pipeline.cache_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: u32, h: u32, seed: u8) -> Image {
        let mut data = vec![0u8; (w * h * 4) as usize];
        for (i, px) in data.chunks_exact_mut(4).enumerate() {
            px[0] = (i as u8).wrapping_mul(seed);
            px[1] = (i >> 3) as u8 ^ seed;
            px[2] = seed;
            px[3] = 255;
        }
        Image::from_rgba(w, h, data).unwrap()
    }

    fn encoder() -> TierEncoder {
        TierEncoder::new(
            EncodeConfig {
                workers: 1,
                ..EncodeConfig::default()
            },
            101,
            102,
        )
    }

    #[test]
    fn lossless_tier_is_png_and_pixel_exact() {
        let mut enc = encoder();
        enc.begin_frame();
        let img = test_image(96, 64, 3);
        let out = enc.encode_region(&img, img.bounds(), QualityTier::Lossless);
        assert!(!out.is_empty());
        for (pt, rect, payload) in &out {
            assert_eq!(*pt, 101);
            let dec = AnyCodec::new(CodecKind::Png).decode(payload).unwrap();
            let crop = img.crop(*rect).unwrap();
            assert_eq!(dec.data(), crop.data(), "lossless tier must be exact");
        }
    }

    #[test]
    fn lossy_tiers_are_dct_and_decodable() {
        let mut enc = encoder();
        enc.begin_frame();
        let img = test_image(96, 64, 7);
        for tier in [QualityTier::Balanced, QualityTier::Economy] {
            let out = enc.encode_region(&img, img.bounds(), tier);
            assert!(!out.is_empty());
            for (pt, rect, payload) in &out {
                assert_eq!(*pt, 102);
                let dec = AnyCodec::new(CodecKind::Dct).decode(payload).unwrap();
                assert_eq!(dec.width(), rect.width);
                assert_eq!(dec.height(), rect.height);
            }
        }
    }

    #[test]
    fn tiers_partition_the_cache() {
        let mut enc = encoder();
        enc.begin_frame();
        let img = test_image(64, 64, 5);
        let a = enc.encode_region(&img, img.bounds(), QualityTier::Balanced);
        let b = enc.encode_region(&img, img.bounds(), QualityTier::Economy);
        // Same pixels, different tier: different payloads (coarser quality
        // is not served from the finer tier's cache entry).
        assert_ne!(
            a.iter().map(|(_, _, p)| p.len()).sum::<usize>(),
            b.iter().map(|(_, _, p)| p.len()).sum::<usize>()
        );
        // Re-encoding the same tier hits the cross-frame cache and returns
        // identical bytes.
        enc.begin_frame();
        let a2 = enc.encode_region(&img, img.bounds(), QualityTier::Balanced);
        assert_eq!(a, a2);
    }

    #[test]
    fn out_of_bounds_rect_is_clipped() {
        let mut enc = encoder();
        enc.begin_frame();
        let img = test_image(32, 32, 2);
        let out = enc.encode_region(&img, Rect::new(16, 16, 100, 100), QualityTier::Lossless);
        assert!(!out.is_empty());
        for (_, rect, _) in &out {
            assert!(rect.left + rect.width <= 32 && rect.top + rect.height <= 32);
        }
    }
}
