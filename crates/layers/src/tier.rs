//! The published tier set and its SDP representation.

use adshare_rate::QualityTier;

/// Session-level SDP attribute advertising the published tiers, e.g.
/// `a=adshare-layers:0,1,2` (gauge values per [`QualityTier::as_gauge`]:
/// 0 = lossless, 1 = balanced, 2 = economy). Follows the
/// `adshare-relay-hops` session-attribute pattern.
pub const SDP_ATTR: &str = "adshare-layers";

/// Map a wire gauge value (0/1/2) back to a tier.
pub fn tier_from_gauge(g: u8) -> Option<QualityTier> {
    match g {
        0 => Some(QualityTier::Lossless),
        1 => Some(QualityTier::Balanced),
        2 => Some(QualityTier::Economy),
        _ => None,
    }
}

/// The ordered set of tiers a sender publishes. Always contains
/// [`QualityTier::Lossless`] — the lossless layer is the stream itself;
/// lossy tiers are alternates of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierSet {
    tiers: Vec<QualityTier>,
}

impl TierSet {
    /// All three tiers (the default publication).
    pub fn all() -> Self {
        TierSet {
            tiers: vec![
                QualityTier::Lossless,
                QualityTier::Balanced,
                QualityTier::Economy,
            ],
        }
    }

    /// Lossless only — semantically "layers off" for negotiation.
    pub fn lossless_only() -> Self {
        TierSet {
            tiers: vec![QualityTier::Lossless],
        }
    }

    /// Build from an explicit list. Lossless is inserted if absent;
    /// duplicates are dropped; order is normalized lossless-first.
    pub fn new(tiers: &[QualityTier]) -> Self {
        let mut all = vec![
            QualityTier::Lossless,
            QualityTier::Balanced,
            QualityTier::Economy,
        ];
        all.retain(|t| *t == QualityTier::Lossless || tiers.contains(t));
        TierSet { tiers: all }
    }

    /// The tiers, lossless first.
    pub fn tiers(&self) -> &[QualityTier] {
        &self.tiers
    }

    /// Whether `tier` is published.
    pub fn contains(&self, tier: QualityTier) -> bool {
        self.tiers.contains(&tier)
    }

    /// Clamp a requested tier to the nearest published tier that is **no
    /// lossier** than the request (a subscriber may receive better quality
    /// than it asked for, never worse).
    pub fn clamp(&self, tier: QualityTier) -> QualityTier {
        self.tiers
            .iter()
            .copied()
            .filter(|t| *t <= tier)
            .max()
            .unwrap_or(QualityTier::Lossless)
    }

    /// SDP attribute value, e.g. `"0,1,2"`.
    pub fn to_attr(&self) -> String {
        let parts: Vec<String> = self
            .tiers
            .iter()
            .map(|t| t.as_gauge().to_string())
            .collect();
        parts.join(",")
    }

    /// Parse an SDP attribute value. Unknown gauges are skipped; an empty
    /// or unparsable value yields the lossless-only set.
    pub fn from_attr(value: &str) -> Self {
        let tiers: Vec<QualityTier> = value
            .split(',')
            .filter_map(|p| p.trim().parse::<u8>().ok())
            .filter_map(tier_from_gauge)
            .collect();
        TierSet::new(&tiers)
    }
}

impl Default for TierSet {
    fn default() -> Self {
        TierSet::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_round_trip() {
        let set = TierSet::all();
        assert_eq!(set.to_attr(), "0,1,2");
        assert_eq!(TierSet::from_attr("0,1,2"), set);
        assert_eq!(TierSet::from_attr("2,1,0"), set, "order normalized");
    }

    #[test]
    fn lossless_always_present() {
        let set = TierSet::new(&[QualityTier::Economy]);
        assert!(set.contains(QualityTier::Lossless));
        assert!(!set.contains(QualityTier::Balanced));
        assert_eq!(set.to_attr(), "0,2");
        assert_eq!(TierSet::from_attr(""), TierSet::lossless_only());
        assert_eq!(TierSet::from_attr("garbage"), TierSet::lossless_only());
    }

    #[test]
    fn clamp_never_lossier() {
        let set = TierSet::new(&[QualityTier::Balanced]);
        assert_eq!(set.clamp(QualityTier::Economy), QualityTier::Balanced);
        assert_eq!(set.clamp(QualityTier::Balanced), QualityTier::Balanced);
        assert_eq!(set.clamp(QualityTier::Lossless), QualityTier::Lossless);
        let lossless = TierSet::lossless_only();
        assert_eq!(lossless.clamp(QualityTier::Economy), QualityTier::Lossless);
    }

    #[test]
    fn gauge_round_trip() {
        for t in [
            QualityTier::Lossless,
            QualityTier::Balanced,
            QualityTier::Economy,
        ] {
            assert_eq!(tier_from_gauge(t.as_gauge() as u8), Some(t));
        }
        assert_eq!(tier_from_gauge(3), None);
    }
}
