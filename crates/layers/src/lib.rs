//! Simulcast/SVC-style layered quality for application sharing.
//!
//! The relay tree (DESIGN §11) forwards verbatim, so one slow subtree drags
//! every viewer down to the worst leg's tier. This crate borrows the
//! simulcast/SVC bandwidth-management model from modern screen-sharing
//! stacks: the AH publishes 2–3 codec tiers of the **same damage stream**
//! (the encode cache already partitions keys by `(content_hash, dims,
//! tier)`, so shared tiles encode once per tier, not per viewer), tier
//! metadata rides in SDP (`adshare-layers`) and in RTCP APP subscription
//! packets (`ADTR`), and each relay selects — or locally re-encodes to —
//! the tier its subtree's AIMD estimate affords.
//!
//! The pieces, bottom-up:
//!
//! - [`TierSet`]: which [`QualityTier`]s a sender publishes, and its SDP
//!   attribute encoding ([`SDP_ATTR`]).
//! - [`TierSelector`]: a frame-boundary latch over the raw AIMD tier
//!   signal — downgrades apply at the next unit boundary, upgrades must
//!   dwell so a noisy estimate cannot flap the wire format.
//! - [`TierRequest`]: the upstream subscription signal, an RTCP APP packet
//!   that rides the existing RTCP path as [`adshare_rtp::rtcp::RtcpPacket::Unknown`]
//!   (no RTP-stack changes).
//! - [`TierEncoder`]: a relay-local re-encoder backed by the shared
//!   [`adshare_encode::EncodePipeline`], so a relay can synthesize a lossy
//!   tier from its shadow state when its subtree cannot afford the
//!   upstream tier.
//! - [`TierStats`]: the `adshare-relay-tier-stats/v1` JSON document
//!   emitted by experiments and validated in CI.
//!
//! Convergence contract: tier switches happen only at unit (frame)
//! boundaries; an upgrade back to [`QualityTier::Lossless`] triggers a
//! lossless catch-up/repair pass, so the fast subtree keeps pixel-identical
//! parity while a slow subtree degrades gracefully instead of starving.

#![warn(missing_docs)]

pub mod encoder;
pub mod selector;
pub mod signal;
pub mod stats;
pub mod tier;

pub use adshare_rate::{QualityTier, RateConfig};
pub use encoder::TierEncoder;
pub use selector::{TierSelector, TierSelectorConfig, TierSwitch};
pub use signal::TierRequest;
pub use stats::{LegTierStats, TierStats, TIER_STATS_SCHEMA};
pub use tier::{tier_from_gauge, TierSet, SDP_ATTR};

/// Per-relay configuration for layered quality, carried in
/// `RelayConfig.layers`. `None` there keeps the relay byte-transparent
/// (today's verbatim fan-out).
#[derive(Debug, Clone)]
pub struct LayersConfig {
    /// Published tier set (what a subtree may subscribe to).
    pub tiers: TierSet,
    /// Per-leg AIMD band feeding the tier decision. The defaults differ
    /// from the AH's pacing band: the floor sits above the health engine's
    /// floor-pinned threshold (a deliberate tier downgrade must not read
    /// as a starved sender), and the initial estimate starts lossless so a
    /// healthy leg never dips below verbatim forwarding.
    pub rate: RateConfig,
    /// Frame-boundary switch latch (dwell, hysteresis on top of the
    /// estimator's own).
    pub selector: TierSelectorConfig,
    /// Subscribe upstream to the least-lossy tier any open leg needs, so
    /// the AH can stop encoding tiers nobody is watching. Off, the relay
    /// always receives lossless and re-encodes locally.
    pub subscribe_upstream: bool,
}

impl Default for LayersConfig {
    fn default() -> Self {
        LayersConfig {
            tiers: TierSet::all(),
            rate: RateConfig {
                // Never collides with the health engine's floor-pinned
                // rule (128 kb/s default): Economy is a deliberate tier,
                // not a starved sender.
                floor_bps: 400_000,
                // Start lossless: a leg is verbatim until its own loss
                // feedback says otherwise, which keeps the fast subtree
                // bit-identical to a no-layers baseline by construction.
                initial_bps: 8_000_000,
                ceiling_bps: 64_000_000,
                ..RateConfig::default()
            },
            selector: TierSelectorConfig::default(),
            subscribe_upstream: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_lossless_first() {
        let cfg = LayersConfig::default();
        assert!(cfg.tiers.contains(QualityTier::Lossless));
        assert!(cfg.rate.initial_bps >= cfg.rate.lossless_above_bps);
        assert!(cfg.rate.floor_bps > 128_000, "must clear floor-pinned rule");
    }
}
