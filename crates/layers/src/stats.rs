//! The `adshare-relay-tier-stats/v1` JSON document.
//!
//! Emitted by experiments (E20) and demo tooling, validated against
//! `schemas/relay_tier_stats.schema.json` by `obs_schema_check` in CI.

/// Schema marker for the tier-stats document.
pub const TIER_STATS_SCHEMA: &str = "adshare-relay-tier-stats/v1";

/// Per-leg tier state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegTierStats {
    /// Leg index within the relay.
    pub leg: usize,
    /// Active tier gauge (0 = lossless, 1 = balanced, 2 = economy).
    pub tier: u8,
    /// Committed tier switches on this leg.
    pub switches: u64,
    /// Committed downgrades (toward economy).
    pub downgrades: u64,
    /// Messages forwarded verbatim from upstream.
    pub verbatim_msgs: u64,
    /// Locally re-encoded (synthesized) messages sent.
    pub synth_msgs: u64,
    /// Bytes of synthesized payloads sent.
    pub synth_bytes: u64,
    /// The leg's AIMD estimate at snapshot time, bits/second.
    pub est_rate_bps: u64,
}

/// One relay's layered-quality snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStats {
    /// Relay identifier.
    pub relay_id: usize,
    /// Tier currently subscribed from upstream (gauge value).
    pub upstream_tier: u8,
    /// Upstream `TierRequest` packets sent.
    pub tier_requests: u64,
    /// Per-leg state.
    pub legs: Vec<LegTierStats>,
}

impl TierStats {
    /// Serialize to the schema'd JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.legs.len() * 160);
        out.push_str(&format!(
            "{{\"schema\":\"{}\",\"relay_id\":{},\"upstream_tier\":{},\"tier_requests\":{},\"legs\":[",
            TIER_STATS_SCHEMA, self.relay_id, self.upstream_tier, self.tier_requests
        ));
        for (i, leg) in self.legs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"leg\":{},\"tier\":{},\"switches\":{},\"downgrades\":{},\
                 \"verbatim_msgs\":{},\"synth_msgs\":{},\"synth_bytes\":{},\"est_rate_bps\":{}}}",
                leg.leg,
                leg.tier,
                leg.switches,
                leg.downgrades,
                leg.verbatim_msgs,
                leg.synth_msgs,
                leg.synth_bytes,
                leg.est_rate_bps
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let stats = TierStats {
            relay_id: 3,
            upstream_tier: 1,
            tier_requests: 2,
            legs: vec![LegTierStats {
                leg: 0,
                tier: 2,
                switches: 4,
                downgrades: 3,
                verbatim_msgs: 10,
                synth_msgs: 20,
                synth_bytes: 4096,
                est_rate_bps: 900_000,
            }],
        };
        let json = stats.to_json();
        assert!(json.starts_with("{\"schema\":\"adshare-relay-tier-stats/v1\""));
        assert!(json.contains("\"relay_id\":3"));
        assert!(json.contains("\"upstream_tier\":1"));
        assert!(json.contains("\"legs\":[{\"leg\":0,\"tier\":2"));
        assert!(json.contains("\"est_rate_bps\":900000"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_legs_still_valid() {
        let stats = TierStats {
            relay_id: 0,
            upstream_tier: 0,
            tier_requests: 0,
            legs: Vec::new(),
        };
        assert!(stats.to_json().contains("\"legs\":[]"));
    }
}
