//! Frame-boundary tier switching with dwell.
//!
//! The AIMD estimator's tier signal ([`adshare_rate::QualityController`])
//! already has rate hysteresis, but a relay must additionally never change
//! the wire format mid-unit (a participant would decode half a region at
//! one quality and half at another), and must not flap back up the moment
//! one clean report arrives. [`TierSelector`] latches the raw signal:
//! the owner calls [`TierSelector::observe`] only at unit boundaries,
//! downgrades take effect immediately (congestion relief cannot wait), and
//! upgrades require a minimum dwell in the current tier.

use adshare_rate::QualityTier;

/// Tunables for the switch latch.
#[derive(Debug, Clone, Copy)]
pub struct TierSelectorConfig {
    /// Minimum time in the current tier before an **upgrade** (toward
    /// lossless) is honoured. Downgrades are immediate.
    pub min_dwell_us: u64,
}

impl Default for TierSelectorConfig {
    fn default() -> Self {
        TierSelectorConfig {
            min_dwell_us: 500_000,
        }
    }
}

/// One committed tier change, reported so the owner can emit events and
/// trigger the lossless repair pass on upgrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSwitch {
    /// Tier before the switch.
    pub from: QualityTier,
    /// Tier now active.
    pub to: QualityTier,
    /// Virtual time of the switch.
    pub at_us: u64,
}

impl TierSwitch {
    /// Whether this switch moves toward lossless (and therefore owes the
    /// subtree a lossless repair pass to converge pixel-identical).
    pub fn is_upgrade(self) -> bool {
        self.to < self.from
    }
}

/// Latches the estimator's tier signal onto unit boundaries.
///
/// Deterministic: the active tier is a pure function of the
/// `(want, now_us)` sequence passed to [`TierSelector::observe`].
#[derive(Debug, Clone)]
pub struct TierSelector {
    cfg: TierSelectorConfig,
    active: QualityTier,
    last_switch_us: u64,
    switches: u64,
    downgrades: u64,
}

impl TierSelector {
    /// New selector, active at lossless.
    pub fn new(cfg: TierSelectorConfig) -> Self {
        TierSelector {
            cfg,
            active: QualityTier::Lossless,
            last_switch_us: 0,
            switches: 0,
            downgrades: 0,
        }
    }

    /// The tier currently on the wire.
    pub fn active(&self) -> QualityTier {
        self.active
    }

    /// Offer the estimator's current want at a unit boundary. Returns the
    /// committed switch, if any.
    pub fn observe(&mut self, want: QualityTier, now_us: u64) -> Option<TierSwitch> {
        if want == self.active {
            return None;
        }
        let upgrade = want < self.active;
        if upgrade && now_us.saturating_sub(self.last_switch_us) < self.cfg.min_dwell_us {
            return None;
        }
        let sw = TierSwitch {
            from: self.active,
            to: want,
            at_us: now_us,
        };
        self.active = want;
        self.last_switch_us = now_us;
        self.switches += 1;
        if !upgrade {
            self.downgrades += 1;
        }
        Some(sw)
    }

    /// Committed switches since creation.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Committed downgrades (toward economy) since creation.
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downgrade_is_immediate_upgrade_dwells() {
        let mut s = TierSelector::new(TierSelectorConfig {
            min_dwell_us: 1_000_000,
        });
        let sw = s.observe(QualityTier::Balanced, 10).expect("downgrade");
        assert_eq!(sw.from, QualityTier::Lossless);
        assert_eq!(sw.to, QualityTier::Balanced);
        assert!(!sw.is_upgrade());

        // Upgrade denied until dwell expires.
        assert_eq!(s.observe(QualityTier::Lossless, 500_000), None);
        assert_eq!(s.active(), QualityTier::Balanced);
        let sw = s
            .observe(QualityTier::Lossless, 1_000_011)
            .expect("upgrade after dwell");
        assert!(sw.is_upgrade());
        assert_eq!(s.active(), QualityTier::Lossless);
        assert_eq!(s.switches(), 2);
        assert_eq!(s.downgrades(), 1);
    }

    #[test]
    fn deeper_downgrade_never_waits() {
        let mut s = TierSelector::new(TierSelectorConfig {
            min_dwell_us: 1_000_000,
        });
        assert!(s.observe(QualityTier::Balanced, 5).is_some());
        // Still inside the dwell window, but lossier: applies at once.
        assert!(s.observe(QualityTier::Economy, 6).is_some());
        assert_eq!(s.active(), QualityTier::Economy);
        assert_eq!(s.downgrades(), 2);
    }

    #[test]
    fn stable_want_is_silent() {
        let mut s = TierSelector::new(TierSelectorConfig::default());
        for t in 0..100u64 {
            assert_eq!(s.observe(QualityTier::Lossless, t * 1000), None);
        }
        assert_eq!(s.switches(), 0);
    }
}
