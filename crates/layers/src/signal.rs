//! The upstream tier-subscription signal.
//!
//! A relay tells its upstream sender (the AH or a parent relay) which tier
//! its subtree needs via an RTCP APP packet (PT 204, name `ADTR`). APP is
//! deliberately chosen over a new feedback format: the existing RTP stack
//! parses unrecognized packet types into
//! [`RtcpPacket::Unknown`] and re-serializes them verbatim, so the signal
//! rides every existing RTCP path — compound datagrams, relay upstream
//! coalescing, TCP framing — with zero changes to `adshare-rtp`.

use adshare_rate::QualityTier;
use adshare_rtp::rtcp::RtcpPacket;

use crate::tier::tier_from_gauge;

/// RTCP packet type: application-defined (RFC 3550 §6.7).
pub const PT_APP: u8 = 204;
/// Four-character name identifying the adshare tier request.
pub const APP_NAME: [u8; 4] = *b"ADTR";
/// Wire size: common header (4) + SSRC (4) + name (4) + data (4).
pub const WIRE_LEN: usize = 16;

/// "Send me this tier": the least-lossy tier any leg of the requesting
/// subtree currently needs. [`QualityTier::Lossless`] cancels a previous
/// downgrade subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierRequest {
    /// SSRC of the requesting relay leg.
    pub ssrc: u32,
    /// Requested tier.
    pub tier: QualityTier,
}

impl TierRequest {
    /// Serialize to the 16-byte APP packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WIRE_LEN);
        // V=2, P=0, subtype=0 in the count field.
        out.push(2 << 6);
        out.push(PT_APP);
        // Length in 32-bit words minus one: 16 bytes → 3.
        out.extend_from_slice(&(WIRE_LEN as u16 / 4 - 1).to_be_bytes());
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        out.extend_from_slice(&APP_NAME);
        out.push(self.tier.as_gauge() as u8);
        out.extend_from_slice(&[0, 0, 0]);
        out
    }

    /// Wrap for transmission on an existing RTCP path.
    pub fn to_rtcp(&self) -> RtcpPacket {
        RtcpPacket::Unknown {
            pt: PT_APP,
            raw: self.encode(),
        }
    }

    /// Parse from raw APP packet bytes (including the common header).
    /// `None` for anything that is not a well-formed `ADTR` request.
    pub fn decode(raw: &[u8]) -> Option<TierRequest> {
        if raw.len() < WIRE_LEN || raw[1] != PT_APP || raw[8..12] != APP_NAME {
            return None;
        }
        Some(TierRequest {
            ssrc: u32::from_be_bytes([raw[4], raw[5], raw[6], raw[7]]),
            tier: tier_from_gauge(raw[12])?,
        })
    }

    /// Extract a request from a parsed RTCP packet, if it is one.
    pub fn from_rtcp(pkt: &RtcpPacket) -> Option<TierRequest> {
        match pkt {
            RtcpPacket::Unknown { pt: PT_APP, raw } => Self::decode(raw),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adshare_rtp::rtcp::{decode_compound, encode_compound};

    #[test]
    fn round_trip_through_rtcp_stack() {
        for tier in [
            QualityTier::Lossless,
            QualityTier::Balanced,
            QualityTier::Economy,
        ] {
            let req = TierRequest {
                ssrc: 0xDEAD_BEEF,
                tier,
            };
            let wire = encode_compound(&[req.to_rtcp()]);
            let back = decode_compound(&wire).expect("stack parses APP");
            assert_eq!(back.len(), 1);
            assert_eq!(TierRequest::from_rtcp(&back[0]), Some(req));
        }
    }

    #[test]
    fn survives_compound_with_other_feedback() {
        use adshare_rtp::rtcp::{PictureLossIndication, RtcpPacket};
        let req = TierRequest {
            ssrc: 7,
            tier: QualityTier::Balanced,
        };
        let pli = RtcpPacket::Pli(PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        });
        let wire = encode_compound(&[pli.clone(), req.to_rtcp()]);
        let back = decode_compound(&wire).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(TierRequest::from_rtcp(&back[0]), None);
        assert_eq!(TierRequest::from_rtcp(&back[1]), Some(req));
    }

    #[test]
    fn rejects_foreign_app_packets() {
        let mut raw = TierRequest {
            ssrc: 1,
            tier: QualityTier::Economy,
        }
        .encode();
        raw[8..12].copy_from_slice(b"XXXX");
        assert_eq!(TierRequest::decode(&raw), None);
        // Bad tier gauge.
        let mut raw2 = TierRequest {
            ssrc: 1,
            tier: QualityTier::Economy,
        }
        .encode();
        raw2[12] = 9;
        assert_eq!(TierRequest::decode(&raw2), None);
        // Truncated.
        assert_eq!(TierRequest::decode(&raw2[..12]), None);
    }
}
