//! The per-participant bundle the session layer drives.

use adshare_obs::{Counter, Gauge, Histogram, Registry};

use crate::estimator::{BandwidthEstimator, RateConfig};
use crate::pacer::TokenBucket;
use crate::quality::{QualityController, QualityTier};

/// Congestion controller + pacer + quality controller for one receiver
/// (a unicast participant or a whole multicast session).
///
/// Two modes share this type so the session layer has a single send path:
///
/// * **fixed** ([`RateController::new_fixed`]) — no estimator; the token
///   bucket runs at the statically configured link rate (or unpaced), the
///   tier is pinned lossless, and refreshes are never throttled. This
///   reproduces the legacy behaviour exactly.
/// * **adaptive** ([`RateController::new_adaptive`]) — a
///   [`BandwidthEstimator`] retargets the bucket every flush, a
///   [`QualityController`] picks the codec tier, and PLI-triggered full
///   refreshes are rate-limited.
#[derive(Debug, Clone)]
pub struct RateController {
    estimator: Option<BandwidthEstimator>,
    /// Static link rate: the pacer rate in fixed mode, a hard cap on the
    /// estimate in adaptive mode.
    cap_bps: Option<u64>,
    bucket: TokenBucket,
    quality: QualityController,
    // Observability (inert until adopted into a registry).
    rate_gauge: Gauge,
    rate_hist: Histogram,
    tier_gauge: Gauge,
    superseded: Counter,
    queue_depth: Gauge,
    queue_bytes: Gauge,
    refresh_throttled: Counter,
}

/// Burst window for fixed-rate buckets (matches the legacy 250 ms
/// allowance cap in the session layer).
const FIXED_BURST_WINDOW_US: u64 = 250_000;

impl RateController {
    fn build(
        estimator: Option<BandwidthEstimator>,
        cap_bps: Option<u64>,
        burst_window_us: u64,
        mtu: usize,
        cfg: &RateConfig,
    ) -> Self {
        let initial = match &estimator {
            Some(_) => {
                let est = cfg
                    .initial_bps
                    .clamp(cfg.floor_bps.min(cfg.ceiling_bps), cfg.ceiling_bps);
                Some(cap_bps.map_or(est, |cap| est.min(cap)))
            }
            None => cap_bps,
        };
        RateController {
            estimator,
            cap_bps,
            bucket: TokenBucket::new(initial, burst_window_us, 2 * mtu as u64),
            quality: QualityController::new(cfg),
            rate_gauge: Gauge::new(),
            rate_hist: Histogram::new(),
            tier_gauge: Gauge::new(),
            superseded: Counter::new(),
            queue_depth: Gauge::new(),
            queue_bytes: Gauge::new(),
            refresh_throttled: Counter::new(),
        }
    }

    /// Legacy fixed-rate mode: pace at `rate_bps` (`None` = unpaced),
    /// never adapt quality, never throttle refreshes.
    pub fn new_fixed(rate_bps: Option<u64>, mtu: usize) -> Self {
        RateController::build(
            None,
            rate_bps,
            FIXED_BURST_WINDOW_US,
            mtu,
            &RateConfig::default(),
        )
    }

    /// Adaptive mode: AIMD estimation clamped to `cfg`'s band and capped
    /// at the static link rate `cap_bps` when one is configured.
    pub fn new_adaptive(cfg: RateConfig, cap_bps: Option<u64>, mtu: usize) -> Self {
        RateController::build(
            Some(BandwidthEstimator::new(cfg)),
            cap_bps,
            cfg.burst_window_us,
            mtu,
            &cfg,
        )
    }

    /// Whether the controller runs the adaptive loop.
    pub fn is_adaptive(&self) -> bool {
        self.estimator.is_some()
    }

    /// Feed one RTCP receiver-report loss fraction (lost/256).
    pub fn on_report(&mut self, fraction_lost: u8, now_us: u64) {
        if let Some(e) = &mut self.estimator {
            e.on_report(fraction_lost, now_us);
        }
    }

    /// Feed one Generic NACK covering `lost` sequence numbers.
    pub fn on_nack(&mut self, lost: usize, now_us: u64) {
        if let Some(e) = &mut self.estimator {
            e.on_nack(lost, now_us);
        }
    }

    /// Feed a TCP send-buffer occupancy sample.
    pub fn on_backlog(&mut self, backlog_bytes: usize, capacity_bytes: usize, now_us: u64) {
        if let Some(e) = &mut self.estimator {
            e.on_backlog(backlog_bytes, capacity_bytes, now_us);
        }
    }

    /// The effective send rate right now, bits/second (`None` = unpaced,
    /// only possible in fixed mode with no configured link rate).
    pub fn rate_bps(&mut self, now_us: u64) -> Option<u64> {
        match &mut self.estimator {
            Some(e) => {
                let est = e.rate_bps(now_us);
                Some(self.cap_bps.map_or(est, |cap| est.min(cap)))
            }
            None => self.cap_bps,
        }
    }

    /// Start a flush: retarget the bucket at the current estimate, accrue
    /// tokens, record the decision, and return the byte budget
    /// (`None` = unlimited).
    pub fn flush_budget(&mut self, now_us: u64) -> Option<u64> {
        let rate = self.rate_bps(now_us);
        if self.is_adaptive() {
            self.bucket.set_rate(rate);
            if let Some(r) = rate {
                self.rate_gauge.set(r as i64);
                self.rate_hist.record(r);
            }
            let tier = self.quality.tier_for(rate.unwrap_or(u64::MAX));
            self.tier_gauge.set(tier.as_gauge());
        }
        self.bucket.refill(now_us);
        self.bucket.budget()
    }

    /// Account for bytes actually emitted against the last budget.
    pub fn consume(&mut self, bytes: u64) {
        self.bucket.consume(bytes);
    }

    /// The quality tier to encode at (pinned lossless in fixed mode).
    pub fn tier(&self) -> QualityTier {
        if self.is_adaptive() {
            self.quality.tier()
        } else {
            QualityTier::Lossless
        }
    }

    /// Damage-coalescing interval for the current tier (fixed mode keeps
    /// the configured base — zero unless the session set one).
    pub fn coalesce_us(&self) -> u64 {
        if self.is_adaptive() {
            self.quality.coalesce_us()
        } else {
            0
        }
    }

    /// Whether a PLI-triggered full refresh may run now (always, in fixed
    /// mode).
    pub fn allow_refresh(&mut self, now_us: u64) -> bool {
        if !self.is_adaptive() {
            return true;
        }
        let ok = self.quality.allow_refresh(now_us);
        if !ok {
            self.refresh_throttled.inc();
        }
        ok
    }

    /// Record that `n` queued updates were superseded by fresher damage.
    pub fn note_superseded(&self, n: usize) {
        self.superseded.add(n as u64);
    }

    /// Record the send queue's current occupancy.
    pub fn note_queue(&self, depth: usize, bytes: u64) {
        self.queue_depth.set(depth as i64);
        self.queue_bytes.set(bytes as i64);
    }

    /// Number of multiplicative decreases the estimator applied so far.
    pub fn decreases(&self) -> u64 {
        self.estimator
            .as_ref()
            .map_or(0, BandwidthEstimator::decreases)
    }

    /// Adopt this controller's metrics into `registry` under `prefix`
    /// (e.g. `ah.rate.p0` → `ah.rate.p0.rate_bps`, `.tier`, …).
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        registry.adopt_gauge(&format!("{prefix}.rate_bps"), &self.rate_gauge);
        registry.adopt_histogram(&format!("{prefix}.rate_bps_hist"), &self.rate_hist);
        registry.adopt_gauge(&format!("{prefix}.tier"), &self.tier_gauge);
        registry.adopt_counter(&format!("{prefix}.superseded"), &self.superseded);
        registry.adopt_gauge(&format!("{prefix}.queue_depth"), &self.queue_depth);
        registry.adopt_gauge(&format!("{prefix}.queue_bytes"), &self.queue_bytes);
        registry.adopt_counter(
            &format!("{prefix}.refresh_throttled"),
            &self.refresh_throttled,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_matches_legacy_allowance_math() {
        // 8 Mb/s, MTU 1400: after 10 ms the legacy allowance is 10 kB.
        let mut rc = RateController::new_fixed(Some(8_000_000), 1400);
        assert!(!rc.is_adaptive());
        assert_eq!(rc.flush_budget(10_000), Some(10_000));
        rc.consume(10_000);
        assert_eq!(rc.flush_budget(10_000), Some(0));
        assert_eq!(rc.tier(), QualityTier::Lossless);
        assert!(rc.allow_refresh(0) && rc.allow_refresh(1));
    }

    #[test]
    fn fixed_unpaced_is_unlimited() {
        let mut rc = RateController::new_fixed(None, 1400);
        assert_eq!(rc.flush_budget(1_000_000), None);
        assert_eq!(rc.rate_bps(1_000_000), None);
    }

    #[test]
    fn adaptive_tracks_estimator_and_caps_at_link_rate() {
        let cfg = RateConfig {
            initial_bps: 4_000_000,
            ..RateConfig::default()
        };
        let mut rc = RateController::new_adaptive(cfg, Some(3_000_000), 1400);
        assert!(rc.is_adaptive());
        assert_eq!(rc.rate_bps(0), Some(3_000_000), "estimate capped at link");
        // Heavy loss halves the estimate below the cap.
        rc.on_report(255, 1_000_000);
        let r = rc.rate_bps(1_000_000).unwrap();
        assert!(r < 3_000_000);
        assert_eq!(rc.decreases(), 1);
    }

    #[test]
    fn adaptive_budget_follows_current_estimate() {
        let cfg = RateConfig {
            initial_bps: 8_000_000,
            ceiling_bps: 8_000_000,
            ..RateConfig::default()
        };
        let mut rc = RateController::new_adaptive(cfg, None, 1400);
        // 8 Mb/s for 10 ms = 10 kB.
        assert_eq!(rc.flush_budget(10_000), Some(10_000));
        assert_eq!(rc.tier(), QualityTier::Lossless);
    }

    #[test]
    fn adaptive_refresh_throttles() {
        let mut rc = RateController::new_adaptive(RateConfig::default(), None, 1400);
        assert!(rc.allow_refresh(0));
        assert!(!rc.allow_refresh(1000));
        assert!(rc.allow_refresh(600_000));
    }
}
