//! The freshest-frame send queue: encoded region updates awaiting pacer
//! tokens, superseded in place when newer damage covers them.

use std::collections::VecDeque;

use adshare_codec::Rect;

/// One queued region update.
#[derive(Debug, Clone)]
pub struct Queued<T> {
    /// The window the update belongs to.
    pub window: u64,
    /// Window-local rectangle the payload repaints.
    pub rect: Rect,
    /// When the update was encoded (µs); its pixels are from this instant.
    pub at_us: u64,
    /// Encoded payload size, used for pacing budgets.
    pub bytes: u64,
    /// The carried message (opaque to this crate).
    pub payload: T,
}

/// A FIFO of encoded region updates the pacer has not released yet.
///
/// This is the §7 "send only the most recent screen data" policy applied
/// behind a pacer: updates queue in encode order, and a newer damage
/// rectangle that **covers** a queued update makes that update stale — its
/// pixels will be re-encoded fresher — so it is dropped instead of sent.
/// Partial overlaps are kept: FIFO order means the later (fresher) update
/// lands last and wins the overlapping pixels.
#[derive(Debug, Clone)]
pub struct FreshQueue<T> {
    entries: VecDeque<Queued<T>>,
    bytes: u64,
    superseded: u64,
}

impl<T> Default for FreshQueue<T> {
    fn default() -> Self {
        FreshQueue {
            entries: VecDeque::new(),
            bytes: 0,
            superseded: 0,
        }
    }
}

impl<T> FreshQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        FreshQueue::default()
    }

    /// Enqueue an update encoded at `at_us`.
    pub fn push(&mut self, window: u64, rect: Rect, at_us: u64, bytes: u64, payload: T) {
        self.bytes += bytes;
        self.entries.push_back(Queued {
            window,
            rect,
            at_us,
            bytes,
            payload,
        });
    }

    /// New damage `rect` on `window` observed at `now_us`: drop every
    /// queued update of that window that is strictly older and fully
    /// covered by the new rect (its replacement will be encoded from
    /// fresher pixels). Returns how many updates were dropped. An update
    /// from `now_us` itself is never dropped — the policy supersedes stale
    /// state, never the freshest.
    pub fn supersede(&mut self, window: u64, rect: Rect, now_us: u64) -> usize {
        let before = self.entries.len();
        let bytes = &mut self.bytes;
        self.entries.retain(|e| {
            let stale = e.window == window && e.at_us < now_us && rect.contains_rect(&e.rect);
            if stale {
                *bytes -= e.bytes;
            }
            !stale
        });
        let dropped = before - self.entries.len();
        self.superseded += dropped as u64;
        dropped
    }

    /// Remove and return every queued update for `window` (scroll
    /// invalidation: a MoveRectangle would replay over these, so their
    /// rects must be re-damaged and re-encoded after the move).
    pub fn take_window(&mut self, window: u64) -> Vec<Queued<T>> {
        let mut out = Vec::new();
        let mut rest = VecDeque::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if e.window == window {
                self.bytes -= e.bytes;
                out.push(e);
            } else {
                rest.push_back(e);
            }
        }
        self.entries = rest;
        out
    }

    /// Dequeue updates in FIFO order until `budget` bytes are spent
    /// (`None` = drain everything). The first update always pops even if
    /// larger than the remaining budget — messages are indivisible and the
    /// bucket carries the overdraw as debt.
    pub fn pop_budget(&mut self, budget: Option<u64>) -> Vec<Queued<T>> {
        let mut out = Vec::new();
        let mut spent = 0u64;
        while !self.entries.is_empty() {
            if let Some(b) = budget {
                if b == 0 || (spent >= b && !out.is_empty()) {
                    break;
                }
            }
            let e = self.entries.pop_front().expect("checked non-empty");
            self.bytes -= e.bytes;
            spent += e.bytes;
            out.push(e);
        }
        out
    }

    /// Queued update count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total queued payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Updates dropped by [`FreshQueue::supersede`] since creation.
    pub fn superseded(&self) -> u64 {
        self.superseded
    }

    /// Iterate over the queued updates in send order.
    pub fn iter(&self) -> impl Iterator<Item = &Queued<T>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(l: u32, t: u32, w: u32, h: u32) -> Rect {
        Rect::new(l, t, w, h)
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut q = FreshQueue::new();
        q.push(1, rect(0, 0, 10, 10), 100, 50, "a");
        q.push(1, rect(0, 0, 5, 5), 200, 30, "b");
        assert_eq!((q.len(), q.bytes()), (2, 80));
        let got = q.pop_budget(None);
        assert_eq!(
            got.iter().map(|e| e.payload).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!((q.len(), q.bytes()), (0, 0));
    }

    #[test]
    fn supersede_drops_covered_older_only() {
        let mut q = FreshQueue::new();
        q.push(1, rect(0, 0, 10, 10), 100, 10, "old-covered");
        q.push(1, rect(20, 20, 10, 10), 100, 10, "old-disjoint");
        q.push(1, rect(0, 0, 30, 30), 150, 10, "old-partial"); // covers more than the new rect
        q.push(2, rect(0, 0, 10, 10), 100, 10, "other-window");
        let dropped = q.supersede(1, rect(0, 0, 12, 12), 200);
        assert_eq!(dropped, 1);
        let left: Vec<_> = q.pop_budget(None).iter().map(|e| e.payload).collect();
        assert_eq!(left, ["old-disjoint", "old-partial", "other-window"]);
        assert_eq!(q.superseded(), 1);
    }

    #[test]
    fn supersede_never_drops_same_instant() {
        let mut q = FreshQueue::new();
        q.push(1, rect(0, 0, 10, 10), 500, 10, "fresh");
        assert_eq!(q.supersede(1, rect(0, 0, 100, 100), 500), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn budget_pops_first_even_when_oversized() {
        let mut q = FreshQueue::new();
        q.push(1, rect(0, 0, 1, 1), 0, 5_000, "big");
        q.push(1, rect(0, 0, 1, 1), 0, 10, "next");
        let got = q.pop_budget(Some(100));
        assert_eq!(got.len(), 1, "oversized head pops, then budget is spent");
        assert_eq!(got[0].payload, "big");
        assert_eq!(q.pop_budget(Some(0)).len(), 0, "zero budget pops nothing");
    }

    #[test]
    fn take_window_filters() {
        let mut q = FreshQueue::new();
        q.push(1, rect(0, 0, 1, 1), 0, 10, "w1");
        q.push(2, rect(0, 0, 1, 1), 0, 10, "w2");
        q.push(1, rect(1, 1, 1, 1), 0, 10, "w1b");
        let taken = q.take_window(1);
        assert_eq!(taken.len(), 2);
        assert_eq!((q.len(), q.bytes()), (1, 10));
    }
}
