//! Token-bucket pacing of encoded bytes onto a transport.

/// A byte-granular token bucket.
///
/// Refills continuously at `rate_bps / 8` bytes per second, capped at a
/// burst of `rate × burst_window` (never below `burst_floor_bytes`, so a
/// couple of MTU-sized packets always fit once tokens accrue). Senders ask
/// for the current [`TokenBucket::budget`], emit at most that many bytes,
/// and [`TokenBucket::consume`] what they actually sent; because messages
/// are indivisible the last message may overdraw, which the bucket carries
/// as debt — the long-run average can never exceed the configured rate.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// None = unpaced (infinite budget).
    rate_bps: Option<u64>,
    burst_window_us: u64,
    burst_floor_bytes: f64,
    tokens: f64,
    last_refill_us: u64,
}

impl TokenBucket {
    /// A bucket at `rate_bps` (`None` = unpaced) with the given burst
    /// window; `burst_floor_bytes` is typically twice the MTU.
    pub fn new(rate_bps: Option<u64>, burst_window_us: u64, burst_floor_bytes: u64) -> Self {
        TokenBucket {
            rate_bps,
            burst_window_us,
            burst_floor_bytes: burst_floor_bytes as f64,
            tokens: 0.0,
            last_refill_us: 0,
        }
    }

    /// The configured rate (`None` = unpaced).
    pub fn rate_bps(&self) -> Option<u64> {
        self.rate_bps
    }

    /// Retarget the bucket (the adaptive controller does this every flush).
    /// Accrued tokens and debt carry over; they re-cap at the next refill.
    pub fn set_rate(&mut self, rate_bps: Option<u64>) {
        self.rate_bps = rate_bps;
    }

    fn burst_bytes(&self, rate: u64) -> f64 {
        (rate as f64 * self.burst_window_us as f64 / 8.0 / 1_000_000.0).max(self.burst_floor_bytes)
    }

    /// Accrue tokens for the time elapsed since the previous refill.
    pub fn refill(&mut self, now_us: u64) {
        let dt = now_us.saturating_sub(self.last_refill_us);
        self.last_refill_us = self.last_refill_us.max(now_us);
        if let Some(rate) = self.rate_bps {
            self.tokens += rate as f64 * dt as f64 / 8.0 / 1_000_000.0;
            self.tokens = self.tokens.min(self.burst_bytes(rate));
        }
    }

    /// Bytes that may be emitted right now (`None` = unlimited). Debt from
    /// a previous overdraw reads as zero budget until it is repaid.
    pub fn budget(&self) -> Option<u64> {
        self.rate_bps?;
        Some(self.tokens.max(0.0) as u64)
    }

    /// Account for bytes actually emitted (may overdraw by one message).
    pub fn consume(&mut self, bytes: u64) {
        if self.rate_bps.is_some() {
            self.tokens -= bytes as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpaced_is_unlimited() {
        let mut b = TokenBucket::new(None, 250_000, 2800);
        b.refill(1_000_000);
        assert_eq!(b.budget(), None);
        b.consume(1 << 30); // no-op
        assert_eq!(b.budget(), None);
    }

    #[test]
    fn refill_matches_rate_and_caps_at_burst() {
        // 8 Mbit/s = 1000 bytes/ms; 250 ms burst window = 250_000 bytes.
        let mut b = TokenBucket::new(Some(8_000_000), 250_000, 2800);
        b.refill(10_000);
        assert_eq!(b.budget(), Some(10_000));
        b.refill(10_000_000);
        assert_eq!(b.budget(), Some(250_000), "capped at the burst");
    }

    #[test]
    fn debt_suppresses_budget_until_repaid() {
        let mut b = TokenBucket::new(Some(8_000_000), 250_000, 2800);
        b.refill(1_000);
        assert_eq!(b.budget(), Some(1_000));
        b.consume(5_000); // indivisible message overdrew
        assert_eq!(b.budget(), Some(0));
        b.refill(4_000); // 3 ms × 1000 B/ms repays 3000 of 4000 debt
        assert_eq!(b.budget(), Some(0));
        b.refill(6_000);
        assert_eq!(b.budget(), Some(1_000));
    }

    #[test]
    fn burst_floor_admits_two_mtus() {
        let mut b = TokenBucket::new(Some(8_000), 250_000, 2800);
        b.refill(30_000_000);
        assert_eq!(b.budget(), Some(2800), "floor beats tiny rate×window");
    }

    #[test]
    fn retarget_keeps_tokens() {
        let mut b = TokenBucket::new(Some(1_000_000), 250_000, 2800);
        b.refill(100_000);
        let before = b.budget().unwrap();
        b.set_rate(Some(2_000_000));
        assert_eq!(b.budget(), Some(before));
    }
}
