//! Mapping the bandwidth estimate to codec quality, damage coalescing,
//! and full-refresh throttling.

use crate::estimator::RateConfig;

/// Encoding quality tiers the adaptive controller switches between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QualityTier {
    /// Plenty of bandwidth: configured lossless codec, tight coalescing.
    Lossless,
    /// Constrained: lossy DCT at moderate quality.
    Balanced,
    /// Starved: coarse DCT and stretched coalescing intervals.
    Economy,
}

impl QualityTier {
    /// Stable small integer for gauges (0 = lossless … 2 = economy).
    pub fn as_gauge(self) -> i64 {
        match self {
            QualityTier::Lossless => 0,
            QualityTier::Balanced => 1,
            QualityTier::Economy => 2,
        }
    }

    /// Lossy tiers leave pixels that must eventually be repaired
    /// losslessly for the session to converge pixel-identical.
    pub fn is_lossy(self) -> bool {
        self != QualityTier::Lossless
    }

    /// DCT quality knob for this tier (`None` = use the lossless codec).
    pub fn dct_quality(self) -> Option<u8> {
        match self {
            QualityTier::Lossless => None,
            QualityTier::Balanced => Some(70),
            QualityTier::Economy => Some(35),
        }
    }
}

/// Picks a [`QualityTier`] from the rate estimate, with hysteresis so the
/// codec does not flap across a threshold, and throttles PLI-triggered
/// full refreshes.
#[derive(Debug, Clone)]
pub struct QualityController {
    lossless_above_bps: u64,
    economy_below_bps: u64,
    refresh_min_interval_us: u64,
    coalesce_base_us: u64,
    tier: QualityTier,
    last_refresh_us: Option<u64>,
    refreshes_throttled: u64,
}

/// Hysteresis margin: once in a tier, the rate must cross the threshold by
/// this factor in the other direction to leave it.
const HYSTERESIS: f64 = 1.15;

impl QualityController {
    /// A controller using the thresholds from `cfg`, starting lossless.
    pub fn new(cfg: &RateConfig) -> Self {
        QualityController {
            lossless_above_bps: cfg.lossless_above_bps,
            economy_below_bps: cfg.economy_below_bps,
            refresh_min_interval_us: cfg.refresh_min_interval_us,
            coalesce_base_us: cfg.coalesce_base_us,
            tier: QualityTier::Lossless,
            last_refresh_us: None,
            refreshes_throttled: 0,
        }
    }

    /// The tier for `rate_bps`, updating the hysteresis state.
    pub fn tier_for(&mut self, rate_bps: u64) -> QualityTier {
        let rate = rate_bps as f64;
        let up = |threshold: u64| rate >= threshold as f64 * HYSTERESIS;
        let down = |threshold: u64| rate < threshold as f64;
        self.tier = match self.tier {
            QualityTier::Lossless => {
                if down(self.economy_below_bps) {
                    QualityTier::Economy
                } else if down(self.lossless_above_bps) {
                    QualityTier::Balanced
                } else {
                    QualityTier::Lossless
                }
            }
            QualityTier::Balanced => {
                if up(self.lossless_above_bps) {
                    QualityTier::Lossless
                } else if down(self.economy_below_bps) {
                    QualityTier::Economy
                } else {
                    QualityTier::Balanced
                }
            }
            QualityTier::Economy => {
                if up(self.lossless_above_bps) {
                    QualityTier::Lossless
                } else if up(self.economy_below_bps) {
                    QualityTier::Balanced
                } else {
                    QualityTier::Economy
                }
            }
        };
        self.tier
    }

    /// The most recently computed tier (no state change).
    pub fn tier(&self) -> QualityTier {
        self.tier
    }

    /// Damage-coalescing interval for the current tier: the configured
    /// base at lossless, stretched 2× / 4× under pressure so fewer,
    /// larger updates go out when bandwidth is short.
    pub fn coalesce_us(&self) -> u64 {
        match self.tier {
            QualityTier::Lossless => self.coalesce_base_us,
            QualityTier::Balanced => self.coalesce_base_us.max(1) * 2,
            QualityTier::Economy => self.coalesce_base_us.max(1) * 4,
        }
    }

    /// Whether a PLI-triggered full refresh may run now. The first request
    /// is always served (late joiners need state); later ones are spaced
    /// at least `refresh_min_interval_us` apart — a denied requester will
    /// re-ask via its resync timer.
    pub fn allow_refresh(&mut self, now_us: u64) -> bool {
        match self.last_refresh_us {
            Some(last) if now_us.saturating_sub(last) < self.refresh_min_interval_us => {
                self.refreshes_throttled += 1;
                false
            }
            _ => {
                self.last_refresh_us = Some(now_us);
                true
            }
        }
    }

    /// Full refreshes denied by the throttle so far.
    pub fn refreshes_throttled(&self) -> u64 {
        self.refreshes_throttled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qc() -> QualityController {
        // Defaults: lossless ≥ 1.5 Mb/s, economy < 500 kb/s.
        QualityController::new(&RateConfig::default())
    }

    #[test]
    fn tier_thresholds() {
        let mut q = qc();
        assert_eq!(q.tier_for(2_000_000), QualityTier::Lossless);
        assert_eq!(q.tier_for(1_000_000), QualityTier::Balanced);
        assert_eq!(q.tier_for(400_000), QualityTier::Economy);
    }

    #[test]
    fn hysteresis_resists_flapping() {
        let mut q = qc();
        assert_eq!(q.tier_for(1_000_000), QualityTier::Balanced);
        // Just above the lossless threshold is not enough to climb back...
        assert_eq!(q.tier_for(1_550_000), QualityTier::Balanced);
        // ...15% above is.
        assert_eq!(q.tier_for(1_800_000), QualityTier::Lossless);
    }

    #[test]
    fn coalescing_stretches_under_pressure() {
        let cfg = RateConfig {
            coalesce_base_us: 10_000,
            ..RateConfig::default()
        };
        let mut q = QualityController::new(&cfg);
        q.tier_for(2_000_000);
        assert_eq!(q.coalesce_us(), 10_000);
        q.tier_for(1_000_000);
        assert_eq!(q.coalesce_us(), 20_000);
        q.tier_for(100_000);
        assert_eq!(q.coalesce_us(), 40_000);
    }

    #[test]
    fn refresh_throttle() {
        let mut q = qc();
        assert!(q.allow_refresh(0), "first refresh always allowed");
        assert!(!q.allow_refresh(100_000));
        assert!(!q.allow_refresh(499_999));
        assert_eq!(q.refreshes_throttled(), 2);
        assert!(q.allow_refresh(500_000));
    }

    #[test]
    fn tier_quality_knobs() {
        assert_eq!(QualityTier::Lossless.dct_quality(), None);
        assert!(!QualityTier::Lossless.is_lossy());
        assert_eq!(QualityTier::Balanced.dct_quality(), Some(70));
        assert_eq!(QualityTier::Economy.dct_quality(), Some(35));
        assert!(QualityTier::Economy.is_lossy());
    }
}
