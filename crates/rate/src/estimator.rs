//! Loss-based AIMD bandwidth estimation from receiver feedback.

/// Tunables for the estimator, pacer, and quality controller.
#[derive(Debug, Clone, Copy)]
pub struct RateConfig {
    /// Lowest rate the estimator may report, bits/second.
    pub floor_bps: u64,
    /// Highest rate the estimator may report, bits/second.
    pub ceiling_bps: u64,
    /// Starting estimate, bits/second (clamped into `[floor, ceiling]`).
    pub initial_bps: u64,
    /// Additive increase applied per second of loss-free feedback.
    pub increase_bps_per_s: u64,
    /// Multiplicative decrease applied on a loss signal (0 < f < 1).
    pub decrease_factor: f64,
    /// RR loss fraction (0.0..=1.0) above which a report counts as loss.
    pub loss_threshold: f64,
    /// After a decrease or NACK burst, additive increase is frozen this
    /// long (µs) so repairs drain before the rate probes upward again.
    pub holdoff_us: u64,
    /// Minimum spacing between multiplicative decreases (µs); feedback
    /// bursts describing one congestion event decrease the rate once.
    pub decrease_interval_us: u64,
    /// A NACK reporting at least this many lost packets is itself a
    /// congestion signal (decrease), not just a hold-off.
    pub nack_burst: usize,
    /// Token-bucket burst window (µs): the pacer may burst up to
    /// `rate × window` bytes.
    pub burst_window_us: u64,
    /// At or above this estimate the quality controller stays lossless.
    pub lossless_above_bps: u64,
    /// Below this estimate the quality controller drops to the economy
    /// tier (coarsest quality, longest coalescing).
    pub economy_below_bps: u64,
    /// Minimum spacing between PLI-served full refreshes (µs).
    pub refresh_min_interval_us: u64,
    /// Damage-coalescing interval at the lossless tier (µs); lower tiers
    /// stretch it.
    pub coalesce_base_us: u64,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig {
            floor_bps: 128_000,
            ceiling_bps: 50_000_000,
            initial_bps: 2_000_000,
            increase_bps_per_s: 250_000,
            decrease_factor: 0.7,
            loss_threshold: 0.02,
            holdoff_us: 500_000,
            decrease_interval_us: 300_000,
            nack_burst: 8,
            burst_window_us: 250_000,
            lossless_above_bps: 1_500_000,
            economy_below_bps: 500_000,
            refresh_min_interval_us: 500_000,
            coalesce_base_us: 0,
        }
    }
}

impl RateConfig {
    fn clamp(&self, rate: f64) -> f64 {
        let floor = self.floor_bps.min(self.ceiling_bps) as f64;
        rate.clamp(floor, self.ceiling_bps as f64)
    }
}

/// Loss-based additive-increase / multiplicative-decrease estimator.
///
/// Inputs are the receiver's view of the path: RTCP RR loss fractions,
/// NACK bursts, and (for TCP) send-buffer backlog. The estimate grows
/// linearly while feedback is clean, shrinks multiplicatively on loss, and
/// is **always** inside `[floor_bps, ceiling_bps]`.
#[derive(Debug, Clone)]
pub struct BandwidthEstimator {
    cfg: RateConfig,
    rate: f64,
    /// Clock of the last growth accrual; growth is lazy so the estimate
    /// advances no matter which signal arrives next.
    last_growth_us: u64,
    /// Additive increase is frozen until this instant.
    holdoff_until_us: u64,
    last_decrease_us: u64,
    decreases: u64,
}

impl BandwidthEstimator {
    /// New estimator starting at `cfg.initial_bps`.
    pub fn new(cfg: RateConfig) -> Self {
        let rate = cfg.clamp(cfg.initial_bps as f64);
        BandwidthEstimator {
            cfg,
            rate,
            last_growth_us: 0,
            holdoff_until_us: 0,
            last_decrease_us: 0,
            decreases: 0,
        }
    }

    /// The configuration this estimator runs with.
    pub fn config(&self) -> &RateConfig {
        &self.cfg
    }

    /// Accrue lazy additive increase up to `now_us`. Time spent inside the
    /// hold-off window never grows the rate.
    fn advance(&mut self, now_us: u64) {
        let from = self.last_growth_us.max(self.holdoff_until_us);
        if now_us > from {
            let dt_s = (now_us - from) as f64 / 1_000_000.0;
            self.rate = self
                .cfg
                .clamp(self.rate + self.cfg.increase_bps_per_s as f64 * dt_s);
        }
        self.last_growth_us = self.last_growth_us.max(now_us);
    }

    fn decrease(&mut self, now_us: u64) {
        if now_us.saturating_sub(self.last_decrease_us) < self.cfg.decrease_interval_us
            && self.last_decrease_us != 0
        {
            return;
        }
        self.rate = self.cfg.clamp(self.rate * self.cfg.decrease_factor);
        self.last_decrease_us = now_us.max(1);
        self.holdoff_until_us = self.holdoff_until_us.max(now_us + self.cfg.holdoff_us);
        self.decreases += 1;
    }

    /// Feed one RTCP receiver-report loss fraction (RFC 3550 fixed point,
    /// lost/256).
    pub fn on_report(&mut self, fraction_lost: u8, now_us: u64) {
        self.advance(now_us);
        if fraction_lost as f64 / 256.0 > self.cfg.loss_threshold {
            self.decrease(now_us);
        }
    }

    /// Feed one Generic NACK covering `lost` sequence numbers. Small NACKs
    /// only freeze growth (random loss is repaired, not a congestion
    /// signal); a burst at or above `cfg.nack_burst` decreases the rate.
    pub fn on_nack(&mut self, lost: usize, now_us: u64) {
        self.advance(now_us);
        if lost >= self.cfg.nack_burst {
            self.decrease(now_us);
        } else {
            self.holdoff_until_us = self.holdoff_until_us.max(now_us + self.cfg.holdoff_us);
        }
    }

    /// Feed a TCP send-buffer occupancy sample (§7's backlog signal):
    /// any backlog freezes growth, more than half the buffer decreases.
    pub fn on_backlog(&mut self, backlog_bytes: usize, capacity_bytes: usize, now_us: u64) {
        self.advance(now_us);
        if backlog_bytes == 0 {
            return;
        }
        if backlog_bytes * 2 > capacity_bytes.max(1) {
            self.decrease(now_us);
        } else {
            self.holdoff_until_us = self.holdoff_until_us.max(now_us + self.cfg.holdoff_us);
        }
    }

    /// The current estimate in bits/second, after accruing growth up to
    /// `now_us`. Guaranteed inside `[floor_bps, ceiling_bps]`.
    pub fn rate_bps(&mut self, now_us: u64) -> u64 {
        self.advance(now_us);
        self.cfg.clamp(self.rate) as u64
    }

    /// Number of multiplicative decreases applied so far.
    pub fn decreases(&self) -> u64 {
        self.decreases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> BandwidthEstimator {
        BandwidthEstimator::new(RateConfig::default())
    }

    #[test]
    fn starts_at_initial() {
        let mut e = est();
        assert_eq!(e.rate_bps(0), 2_000_000);
    }

    #[test]
    fn clean_reports_grow_additively() {
        let mut e = est();
        e.on_report(0, 1_000_000);
        assert_eq!(e.rate_bps(1_000_000), 2_250_000);
        assert_eq!(e.rate_bps(3_000_000), 2_750_000);
    }

    #[test]
    fn loss_decreases_multiplicatively_and_holds_off() {
        let mut e = est();
        e.on_report(26, 1_000_000); // ~10% loss
        let after = e.rate_bps(1_000_000);
        assert_eq!(after, (2_250_000.0 * 0.7) as u64);
        // Growth frozen inside the hold-off window...
        assert_eq!(e.rate_bps(1_400_000), after);
        // ...and resumes after it.
        assert!(e.rate_bps(2_500_000) > after);
    }

    #[test]
    fn decreases_are_rate_limited() {
        let mut e = est();
        e.on_report(255, 1_000_000);
        let one = e.rate_bps(1_000_000);
        e.on_report(255, 1_100_000); // same congestion event
        assert_eq!(e.rate_bps(1_100_000), one);
        e.on_report(255, 1_000_000 + 400_000);
        assert!(e.rate_bps(1_400_000) < one);
    }

    #[test]
    fn never_leaves_configured_band() {
        let cfg = RateConfig {
            floor_bps: 100_000,
            ceiling_bps: 1_000_000,
            initial_bps: 500_000,
            ..RateConfig::default()
        };
        let mut e = BandwidthEstimator::new(cfg);
        for i in 0..100 {
            e.on_report(255, i * 400_000);
        }
        assert_eq!(e.rate_bps(100 * 400_000), 100_000);
        for i in 100..400 {
            e.on_report(0, i * 1_000_000);
        }
        assert_eq!(e.rate_bps(400 * 1_000_000), 1_000_000);
    }

    #[test]
    fn small_nack_freezes_large_nack_decreases() {
        let mut e = est();
        let base = e.rate_bps(1_000_000);
        e.on_nack(2, 1_000_000);
        assert_eq!(e.rate_bps(1_200_000), base, "growth frozen, no decrease");
        e.on_nack(20, 1_600_000);
        assert!(e.rate_bps(1_600_000) < base);
    }

    #[test]
    fn backlog_signal() {
        let mut e = est();
        let base = e.rate_bps(1_000_000);
        e.on_backlog(1000, 64 * 1024, 1_000_000);
        assert_eq!(e.rate_bps(1_300_000), base, "light backlog freezes");
        e.on_backlog(60 * 1024, 64 * 1024, 1_600_000);
        assert!(e.rate_bps(1_600_000) < base, "deep backlog decreases");
    }
}
