//! Congestion control, pacing, and adaptive quality for the AH send path.
//!
//! The draft's §7 tells AHs to watch their transmission buffers and send
//! only the freshest screen state; §4.3 says the AH "controls the
//! transmission rate for participants using UDP". This crate turns those
//! static policies into a closed loop, per participant (and per multicast
//! session):
//!
//! 1. **[`BandwidthEstimator`]** — loss-based AIMD fed by RTCP receiver
//!    reports (loss fraction, jitter), NACK bursts, and TCP send-buffer
//!    backlog. The estimate is always clamped to a configured
//!    `[floor, ceiling]` band.
//! 2. **[`TokenBucket`]** — schedules encoded bytes onto the wire at the
//!    estimated (or statically configured) rate with a bounded burst.
//! 3. **[`FreshQueue`]** — holds encoded `RegionUpdate`s the pacer could not
//!    send yet; a newer damage rect that covers a queued update supersedes
//!    it (the §7 freshest-frame policy generalized from TCP to UDP and
//!    multicast).
//! 4. **[`QualityController`]** — maps the estimated rate to a codec
//!    quality tier and a damage-coalescing interval, and throttles
//!    PLI-triggered full refreshes.
//!
//! [`RateController`] bundles all four behind the small surface the session
//! layer drives, and exports every decision as `adshare-obs` metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod estimator;
mod pacer;
mod quality;
mod queue;

pub use controller::RateController;
pub use estimator::{BandwidthEstimator, RateConfig};
pub use pacer::TokenBucket;
pub use quality::{QualityController, QualityTier};
pub use queue::{FreshQueue, Queued};
