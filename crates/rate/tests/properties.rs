//! Property tests for the rate subsystem's core invariants.

use adshare_codec::Rect;
use adshare_rate::{BandwidthEstimator, FreshQueue, RateConfig, TokenBucket};
use proptest::prelude::*;

/// One feedback event: (discriminant, magnitude, time-step µs).
/// The shim has no `prop_oneof`, so a small discriminant selects the signal.
fn arb_events() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..4, any::<u32>(), 0u32..5_000_000), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The estimate never leaves `[floor, ceiling]`, no matter which
    /// feedback arrives in which order — reports of any loss fraction,
    /// NACKs of any size, backlog samples of any depth, and arbitrary
    /// (even huge) gaps between them.
    #[test]
    fn estimate_always_within_band(
        floor in 1u64..1_000_000,
        span in 0u64..100_000_000,
        initial in any::<u64>(),
        events in arb_events(),
    ) {
        let cfg = RateConfig {
            floor_bps: floor,
            ceiling_bps: floor + span,
            initial_bps: initial,
            ..RateConfig::default()
        };
        let mut e = BandwidthEstimator::new(cfg);
        let mut now = 0u64;
        for &(kind, magnitude, dt) in &events {
            now += dt as u64;
            match kind {
                0 => e.on_report((magnitude % 256) as u8, now),
                1 => e.on_nack(magnitude as usize % 64, now),
                2 => e.on_backlog(magnitude as usize, 64 * 1024, now),
                _ => {}
            }
            let r = e.rate_bps(now);
            prop_assert!(r >= floor && r <= floor + span, "rate {r} outside [{floor}, {}]", floor + span);
        }
    }

    /// Over ANY window of a consume/refill schedule, the bucket never
    /// grants more than `burst + rate × elapsed` bytes: charging every
    /// grant against the bucket keeps cumulative spend ≤ refills + burst.
    #[test]
    fn pacer_never_exceeds_rate_plus_burst(
        rate in 1_000u64..100_000_000,
        steps in proptest::collection::vec(1u32..200_000, 1..64),
    ) {
        let mtu = 1400u64;
        let mut b = TokenBucket::new(Some(rate), 250_000, 2 * mtu);
        let burst = (rate as f64 * 0.25 / 8.0).max(2.0 * mtu as f64);
        let mut now = 0u64;
        let mut granted = 0u64;
        for &dt in &steps {
            now += dt as u64;
            b.refill(now);
            let budget = b.budget().unwrap();
            // Greedy sender: spends the whole budget every flush.
            b.consume(budget);
            granted += budget;
            let cap = rate as f64 * now as f64 / 8.0 / 1_000_000.0 + burst;
            prop_assert!(
                granted as f64 <= cap + 1.0,
                "granted {granted} bytes > rate×t + burst = {cap} at t={now}µs"
            );
        }
    }

    /// The supersede policy never drops the freshest update. As in the
    /// session layer, new damage first supersedes covered stale entries
    /// and then enqueues its own fresh encode at the same instant; some
    /// pushes (repair traffic) skip the supersede. Whatever interleaving
    /// arrives, the per-window entry with the latest encode timestamp
    /// always survives, and byte accounting stays exact.
    #[test]
    fn supersede_never_drops_the_freshest(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..3, 0u32..64, 0u32..64, 1u32..64, 1u32..64),
            1..64,
        ),
    ) {
        let mut q = FreshQueue::new();
        // Monotone clock: op k happens at time k.
        let mut newest: std::collections::HashMap<u64, u64> = Default::default();
        for (k, &(damage, window, l, t, w, h)) in ops.iter().enumerate() {
            let now = k as u64;
            let rect = Rect::new(l, t, w, h);
            if damage {
                q.supersede(window, rect, now);
            }
            q.push(window, rect, now, (w * h) as u64, k);
            newest.insert(window, now);
            for (&win, &at) in &newest {
                prop_assert!(
                    q.iter().any(|e| e.window == win && e.at_us == at),
                    "freshest update (window {win}, t={at}) was dropped"
                );
            }
        }
        // Byte accounting survives the whole run.
        let expect: u64 = q.iter().map(|e| e.bytes).sum();
        prop_assert_eq!(q.bytes(), expect);
    }
}
