#!/usr/bin/env bash
# Reverse interop check: CPython's real zlib must decompress the output of
# adshare's from-scratch compressor, at every level, for several content
# types. Complements crates/codec/tests/zlib_interop.rs (which checks the
# forward direction at `cargo test` time).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --quiet --release -p adshare-bench --bin interop_emit > /tmp/adshare_interop.txt
python3 - <<'PY'
import zlib

failures = 0
with open("/tmp/adshare_interop.txt") as f:
    for line in f:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, plain_hex, comp_hex = line.split("\t")
        plain = bytes.fromhex(plain_hex)
        comp = bytes.fromhex(comp_hex)
        try:
            out = zlib.decompress(comp)
        except Exception as e:
            print(f"FAIL {name}: zlib rejected adshare stream: {e}")
            failures += 1
            continue
        if out != plain:
            print(f"FAIL {name}: plaintext mismatch")
            failures += 1
        else:
            print(f"ok   {name}: {len(plain)} -> {len(comp)} bytes")
if failures:
    raise SystemExit(f"{failures} interop failure(s)")
print("all adshare zlib streams accepted by real zlib")

# PNG structural validation: parse chunks, verify CRCs, inflate IDAT with
# real zlib, reverse the scanline filters independently, compare pixels.
import struct, binascii

png = open("/tmp/adshare_test.png", "rb").read()
expected = open("/tmp/adshare_test.rgb", "rb").read()
assert png[:8] == b"\x89PNG\r\n\x1a\n", "signature"
off = 8
idat = b""
w = h = None
while off < len(png):
    (length,) = struct.unpack(">I", png[off : off + 4])
    kind = png[off + 4 : off + 8]
    body = png[off + 8 : off + 8 + length]
    (crc,) = struct.unpack(">I", png[off + 8 + length : off + 12 + length])
    assert binascii.crc32(kind + body) & 0xFFFFFFFF == crc, f"CRC of {kind}"
    if kind == b"IHDR":
        w, h, depth, ctype = struct.unpack(">IIBB", body[:10])
        assert depth == 8 and ctype == 2, "8-bit RGB expected"
    elif kind == b"IDAT":
        idat += body
    off += 12 + length
raw = zlib.decompress(idat)
stride = w * 3
out = bytearray()
prev = bytearray(stride)
pos = 0
for y in range(h):
    ftype = raw[pos]
    line = bytearray(raw[pos + 1 : pos + 1 + stride])
    pos += 1 + stride
    for i in range(stride):
        a = line[i - 3] if i >= 3 else 0
        b = prev[i]
        c = prev[i - 3] if i >= 3 else 0
        if ftype == 1:
            line[i] = (line[i] + a) & 0xFF
        elif ftype == 2:
            line[i] = (line[i] + b) & 0xFF
        elif ftype == 3:
            line[i] = (line[i] + (a + b) // 2) & 0xFF
        elif ftype == 4:
            p = a + b - c
            pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
            pred = a if (pa <= pb and pa <= pc) else (b if pb <= pc else c)
            line[i] = (line[i] + pred) & 0xFF
    out += line
    prev = line
assert bytes(out) == expected, "PNG pixel mismatch"
print(f"adshare PNG validated independently ({w}x{h}, {len(png)} bytes)")
PY
