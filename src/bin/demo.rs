//! `adshare-demo` — run an application host or a viewer over real UDP.
//!
//! ```text
//! adshare-demo ah     --port 6000 [--workload typing|scroll|video] [--seconds 10]
//! adshare-demo view   --connect 127.0.0.1:6000 [--seconds 10] [--ppm out.ppm]
//! adshare-demo relay  --connect 127.0.0.1:6000 --port 6100 [--seconds 10]
//!                     [--blackbox-dir DIR]   # fan-out relay between AH and viewers
//! adshare-demo selftest            # AH + viewer over loopback, in-process
//! adshare-demo sim    [--seconds 5] [--trace out.json] # simulated session
//!                     [--capture out.bin] [--manifest out.json]
//!                     # consent-gated wire capture + replay manifest
//! adshare-demo replay --capture file.bin [--manifest file.json]
//!                     [--trace out.json]  # deterministic replay, bit-exact
//!                     # digest checks, historical Perfetto export
//! adshare-demo host   [--sessions 64] [--seconds 5] [--stats out.json]
//!                     # multi-tenant host: N simulated sessions, one process
//! ```
//!
//! The AH shares a simulated desktop driven by a synthetic workload; any
//! number of viewers may join (each bootstraps with a PLI, §4.3) and lost
//! datagrams are repaired via Generic NACK. The viewer can dump what it
//! sees to a PPM image. A `relay` subscribes to the AH (or another relay)
//! as one receiver and re-serves any number of viewers, answering their
//! NACKs from its shared retransmit cache and serving late joiners from
//! its shadow state; both the AH and the relay evaluate the `adshare-obs`
//! health rules live and print transitions, and the relay dumps a
//! flight-recorder black box on CRITICAL.
//!
//! The `sim` mode runs an AH and a lossy UDP viewer in the deterministic
//! simulator and prints the `adshare-obs` per-stage pipeline latency
//! breakdown (damage → encode → fragment → transport → decode) with
//! p50/p90/p99 for the frames that were delivered.
//!
//! The `host` mode runs N complete sessions inside one `adshare-host`
//! [`MultiHost`] — shared encode cache, global worker pool, readiness
//! event loop — and prints the host-level roll-up (cross-session cache
//! hit rate, per-session service counts, pool pressure).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use adshare::codec::codec::{default_pt, AnyCodec, Codec};
use adshare::codec::CodecKind;
use adshare::netsim::real::RealUdp;
use adshare::obs::{DumpSink, EventKind, HealthReport, HealthStatus};
use adshare::prelude::*;
use adshare::remoting::message::{RegionUpdate, RemotingMessage, WindowManagerInfo, WindowRecord};
use adshare::remoting::packetizer::RemotingPacketizer;
use adshare::rtp::history::RetransmitHistory;
use adshare::rtp::rtcp::{decode_compound, RtcpPacket};
use adshare::rtp::session::RtpSender;
use adshare::screen::workload::{Scrolling, Typing, Video, Workload};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("selftest");
    let opt = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seconds: u64 = opt("--seconds").and_then(|s| s.parse().ok()).unwrap_or(10);
    match mode {
        "ah" => {
            let port: u16 = opt("--port").and_then(|s| s.parse().ok()).unwrap_or(6000);
            let workload = opt("--workload").unwrap_or_else(|| "typing".into());
            run_ah(port, &workload, seconds);
        }
        "view" => {
            let connect = opt("--connect").unwrap_or_else(|| "127.0.0.1:6000".into());
            let addr: SocketAddr = connect.parse().expect("--connect host:port");
            run_viewer(addr, seconds, opt("--ppm"));
        }
        "relay" => {
            let connect = opt("--connect").unwrap_or_else(|| "127.0.0.1:6000".into());
            let addr: SocketAddr = connect.parse().expect("--connect host:port");
            let port: u16 = opt("--port").and_then(|s| s.parse().ok()).unwrap_or(6100);
            run_relay(port, addr, seconds, opt("--blackbox-dir"));
        }
        "selftest" => selftest(),
        "sim" => run_sim(
            seconds.min(60),
            opt("--trace"),
            opt("--capture"),
            opt("--manifest"),
        ),
        "replay" => {
            let capture = opt("--capture").unwrap_or_else(|| {
                eprintln!("replay requires --capture file.bin");
                std::process::exit(2);
            });
            run_replay(&capture, opt("--manifest"), opt("--trace"));
        }
        "host" => {
            let sessions: usize = opt("--sessions").and_then(|s| s.parse().ok()).unwrap_or(64);
            run_host_demo(sessions, seconds.min(60), opt("--stats"));
        }
        other => {
            eprintln!(
                "unknown mode {other:?}; use: ah | view | relay | selftest | sim | replay | host"
            );
            std::process::exit(2);
        }
    }
}

/// Per-viewer state at the AH.
struct ViewerState {
    packetizer: RemotingPacketizer,
    history: RetransmitHistory,
    synced: bool,
    /// Health-event actor id (join order).
    idx: u16,
}

struct AhState {
    desktop: Desktop,
    win: adshare::screen::wm::WindowId,
    png: AnyCodec,
    viewers: HashMap<SocketAddr, ViewerState>,
    rng: StdRng,
    next_ssrc: u32,
    start: Instant,
    /// Live observability: the event stream the health rules evaluate.
    obs: adshare::obs::Obs,
}

impl AhState {
    fn new() -> Self {
        let mut desktop = Desktop::new(640, 480);
        let win = desktop.create_window(1, Rect::new(50, 40, 400, 300), [250, 250, 250, 255]);
        let _ = desktop.take_damage();
        let _ = desktop.take_wm_dirty();
        AhState {
            desktop,
            win,
            png: AnyCodec::new(CodecKind::Png),
            viewers: HashMap::new(),
            rng: StdRng::seed_from_u64(0xAD54A3E),
            next_ssrc: 0xA4000001,
            start: Instant::now(),
            obs: adshare::obs::Obs::new(),
        }
    }

    fn ticks(&self) -> u32 {
        ((self.start.elapsed().as_micros() as u64) * 9 / 100) as u32
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn full_state(&self) -> Vec<RemotingMessage> {
        let mut msgs = vec![RemotingMessage::WindowManagerInfo(WindowManagerInfo {
            windows: self
                .desktop
                .wm()
                .shared_records()
                .map(|r| WindowRecord {
                    window_id: WireWindowId(r.id.0),
                    group_id: r.group,
                    left: r.rect.left,
                    top: r.rect.top,
                    width: r.rect.width,
                    height: r.rect.height,
                })
                .collect(),
        })];
        for rec in self.desktop.wm().shared_records() {
            let content = self.desktop.window_content(rec.id).expect("content");
            msgs.push(RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WireWindowId(rec.id.0),
                payload_type: default_pt::PNG,
                left: rec.rect.left,
                top: rec.rect.top,
                payload: Bytes::from(self.png.encode(content)),
            }));
        }
        msgs
    }

    /// Handle inbound RTCP from `from`, registering new viewers on PLI.
    fn on_rtcp(&mut self, sock: &RealUdp, from: SocketAddr, bytes: &[u8]) {
        let Ok(packets) = decode_compound(bytes) else {
            return;
        };
        let now_us = self.now_us();
        for pkt in packets {
            match pkt {
                RtcpPacket::Pli(_) => {
                    if !self.viewers.contains_key(&from) {
                        let ssrc = self.next_ssrc;
                        self.next_ssrc += 1;
                        let idx = self.viewers.len() as u16;
                        self.viewers.insert(
                            from,
                            ViewerState {
                                packetizer: RemotingPacketizer::new(
                                    RtpSender::new(ssrc, 99, &mut self.rng),
                                    1200,
                                ),
                                history: RetransmitHistory::new(4096, 8 << 20),
                                synced: false,
                                idx,
                            },
                        );
                        println!("viewer joined from {from}");
                    }
                    let msgs = self.full_state();
                    let ticks = self.ticks();
                    let viewer = self.viewers.get_mut(&from).expect("inserted");
                    self.obs
                        .event(now_us, viewer.idx, EventKind::PliReceived, 0, 0);
                    for msg in &msgs {
                        let (mut pkts, mut bytes) = (0u64, 0u64);
                        for pkt in viewer.packetizer.packetize(msg, ticks).expect("packetize") {
                            let wire = pkt.encode();
                            viewer.history.record(pkt);
                            pkts += 1;
                            bytes += wire.len() as u64;
                            let _ = send_to(sock, from, &wire);
                        }
                        self.obs.event(
                            now_us,
                            viewer.idx,
                            EventKind::RtpTx,
                            0,
                            (pkts << 32) | bytes,
                        );
                    }
                    viewer.synced = true;
                }
                RtcpPacket::Nack(nack) => {
                    if let Some(viewer) = self.viewers.get_mut(&from) {
                        let lost = nack.lost_seqs();
                        self.obs.event(
                            now_us,
                            viewer.idx,
                            EventKind::NackReceived,
                            lost.len() as u64,
                            0,
                        );
                        for seq in lost {
                            if let Some(pkt) = viewer.history.lookup(seq) {
                                let _ = send_to(sock, from, &pkt.encode());
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Broadcast this tick's damage to all synced viewers.
    fn broadcast_updates(&mut self, sock: &RealUdp) {
        let damage = self.desktop.take_damage();
        let _ = self.desktop.take_scroll_hints(); // demo re-encodes scrolls
        let _ = self.desktop.take_wm_dirty();
        if damage.is_empty() {
            return;
        }
        let mut updates = Vec::new();
        for d in &damage {
            let Some(rec) = self.desktop.wm().get(d.window) else {
                continue;
            };
            let Ok(crop) = self
                .desktop
                .window_content(d.window)
                .expect("content")
                .crop(d.rect)
            else {
                continue;
            };
            updates.push(RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WireWindowId(d.window.0),
                payload_type: default_pt::PNG,
                left: rec.rect.left + d.rect.left,
                top: rec.rect.top + d.rect.top,
                payload: Bytes::from(self.png.encode(&crop)),
            }));
        }
        let ticks = self.ticks();
        let now_us = self.now_us();
        for (addr, viewer) in self.viewers.iter_mut() {
            if !viewer.synced {
                continue;
            }
            for msg in &updates {
                let (mut pkts, mut bytes) = (0u64, 0u64);
                for pkt in viewer.packetizer.packetize(msg, ticks).expect("packetize") {
                    let wire = pkt.encode();
                    viewer.history.record(pkt);
                    pkts += 1;
                    bytes += wire.len() as u64;
                    let _ = send_to(sock, *addr, &wire);
                }
                self.obs.event(
                    now_us,
                    viewer.idx,
                    EventKind::RtpTx,
                    0,
                    (pkts << 32) | bytes,
                );
            }
        }
    }
}

fn send_to(sock: &RealUdp, to: SocketAddr, bytes: &[u8]) -> std::io::Result<usize> {
    // RealUdp sends to its configured peer; the AH serves many peers, so we
    // use the raw socket API via a scoped clone of the peer setting.
    sock.send_to(bytes, to)
}

fn make_workload(name: &str, win: adshare::screen::wm::WindowId) -> Box<dyn Workload> {
    match name {
        "scroll" => Box::new(Scrolling::new(win, 1)),
        "video" => Box::new(Video::new(win, Rect::new(20, 20, 320, 240))),
        _ => Box::new(Typing::new(win, 3)),
    }
}

/// One-line health summary: overall verdict plus any rules that are not OK.
fn health_line(report: &HealthReport) -> String {
    let failing: Vec<String> = report
        .rules
        .iter()
        .filter(|r| r.status != HealthStatus::Ok)
        .map(|r| format!("{} {} ({:.3})", r.name, r.status.as_str(), r.value))
        .collect();
    if failing.is_empty() {
        format!("health: {}", report.overall.as_str())
    } else {
        format!(
            "health: {} — {}",
            report.overall.as_str(),
            failing.join(", ")
        )
    }
}

fn run_ah(port: u16, workload: &str, seconds: u64) {
    let sock = RealUdp::bind_port(port).expect("bind");
    println!(
        "AH listening on {} — sharing a 400x300 window with the '{workload}' workload",
        sock.local_addr().expect("addr")
    );
    let mut state = AhState::new();
    let mut wl = make_workload(workload, state.win);
    let mut wl_rng = StdRng::seed_from_u64(7);
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut last_tick = Instant::now();
    let mut last_health = Instant::now();
    while Instant::now() < deadline {
        for (from, dg) in sock.recv_all_from().expect("recv") {
            state.on_rtcp(&sock, from, &dg);
        }
        if last_tick.elapsed() >= Duration::from_millis(33) {
            last_tick = Instant::now();
            wl.tick(&mut state.desktop, &mut wl_rng);
            state.broadcast_updates(&sock);
        }
        // Live health: evaluate the rolling event window every 2 s and
        // surface anything that has degraded.
        if last_health.elapsed() >= Duration::from_secs(2) && !state.viewers.is_empty() {
            last_health = Instant::now();
            let report = state.obs.health_check(state.now_us());
            println!("{}", health_line(&report));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = state.obs.health_check(state.now_us());
    println!(
        "AH done: served {} viewer(s), final {}",
        state.viewers.len(),
        health_line(&report)
    );
}

/// Run a fan-out relay: subscribe to `connect` (an AH or another relay) as
/// one receiver and re-serve every viewer that PLI-joins on `port`. NACKs
/// are answered from the shared retransmit cache, late joiners from the
/// shadow state; a CRITICAL health transition dumps a flight-recorder
/// black box into `blackbox_dir`.
fn run_relay(port: u16, connect: SocketAddr, seconds: u64, blackbox_dir: Option<String>) {
    use adshare::relay::{RelayConfig, RelayNode};

    let mut up = RealUdp::bind().expect("bind upstream");
    up.set_peer(connect);
    let down = RealUdp::bind_port(port).expect("bind downstream");
    println!(
        "relay: upstream {connect}, serving viewers on {}",
        down.local_addr().expect("addr")
    );
    let obs = adshare::obs::Obs::new();
    if let Some(dir) = blackbox_dir {
        std::fs::create_dir_all(&dir).expect("create blackbox dir");
        println!("black-box dumps on CRITICAL -> {dir}/");
        obs.health
            .lock()
            .unwrap()
            .set_sink(DumpSink::Dir(dir.into()));
    }
    let mut node = RelayNode::new(RelayConfig::default(), 0);
    node.attach_obs(obs.clone());
    let start = Instant::now();
    node.subscribe(0);
    if let Some(bytes) = node.take_upstream_rtcp() {
        let _ = up.send(&bytes);
    }
    let mut legs: HashMap<SocketAddr, usize> = HashMap::new();
    let deadline = start + Duration::from_secs(seconds);
    let mut last_health = Instant::now();
    let mut was_critical = false;
    while Instant::now() < deadline {
        let now = start.elapsed().as_micros() as u64;
        for dg in up.recv_all().expect("recv upstream") {
            node.ingest_upstream(&dg, now);
        }
        for (from, dg) in down.recv_all_from().expect("recv downstream") {
            let leg = *legs.entry(from).or_insert_with(|| {
                let leg = node.add_leg_raw(None);
                println!("viewer joined from {from} (leg {leg})");
                leg
            });
            node.handle_leg_rtcp(leg, &dg, now);
        }
        node.step(now);
        if let Some(bytes) = node.take_upstream_rtcp() {
            let _ = up.send(&bytes);
        }
        for (addr, &leg) in &legs {
            for out in node.poll_leg(leg, now) {
                let _ = down.send_to(&out, *addr);
            }
        }
        if last_health.elapsed() >= Duration::from_secs(2) && !legs.is_empty() {
            last_health = Instant::now();
            let report = obs.health_check(now);
            println!("{}", health_line(&report));
            let critical = report.overall == HealthStatus::Critical;
            if critical && !was_critical {
                println!("CRITICAL: black box dumped");
            }
            was_critical = critical;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = node.stats();
    println!(
        "relay done: {} leg(s), forwarded {} packets / {} bytes, NACKs absorbed {} \
         (suppressed {}), escalated upstream {}, PLIs coalesced {}, catch-ups {}",
        legs.len(),
        stats.forwarded_packets,
        stats.forwarded_bytes,
        stats.nacks_absorbed_seqs,
        stats.nacks_suppressed_seqs,
        stats.seqs_escalated,
        stats.plis_coalesced,
        stats.catchups_served,
    );
}

fn run_viewer(addr: SocketAddr, seconds: u64, ppm: Option<String>) {
    let mut sock = RealUdp::bind().expect("bind");
    sock.set_peer(addr);
    println!("viewer connecting to {addr}");
    let mut participant = Participant::new(1, Layout::Original, true, 99);
    participant.request_refresh();
    let start = Instant::now();
    let deadline = start + Duration::from_secs(seconds);
    while Instant::now() < deadline {
        if let Some(rtcp) = participant.take_rtcp() {
            let _ = sock.send(&rtcp);
        }
        for dg in sock.recv_all().expect("recv") {
            let ticks = (start.elapsed().as_micros() as u64) * 9 / 100;
            participant.handle_datagram(&dg, ticks);
        }
        participant.tick((start.elapsed().as_micros() as u64) * 9 / 100);
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = participant.stats();
    println!(
        "viewer done: synced={} regions={} moves={} NACKs={} PLIs={} decode errors={}",
        participant.synced(),
        stats.regions_applied,
        stats.moves_applied,
        stats.nacks_sent,
        stats.plis_sent,
        stats.decode_errors,
    );
    if let Some(path) = ppm {
        let frame = participant.render(640, 480);
        std::fs::write(&path, frame.to_ppm()).expect("write ppm");
        println!("wrote {path}");
    }
}

/// Run an AH plus one lossy UDP viewer inside the deterministic simulator
/// and print the per-stage pipeline latency breakdown that the obs layer's
/// frame tracing collected for every delivered `RegionUpdate`, plus the
/// health engine's verdict. With `--trace out.json`, export the merged
/// stage-span + flight-recorder timeline as Chrome-trace JSON (openable at
/// ui.perfetto.dev). With `--capture out.bin`, arm a consent-gated wire
/// capture of the whole session and write it (plus, with `--manifest`, the
/// `adshare-capture-manifest/v1` sidecar `adshare-demo replay` verifies
/// against).
fn run_sim(
    seconds: u64,
    trace_out: Option<String>,
    capture_out: Option<String>,
    manifest_out: Option<String>,
) {
    use adshare::capture::{manifest_json, CaptureMode};
    use adshare::netsim::udp::LinkConfig;
    use adshare::obs::STAGE_NAMES;
    use adshare::rate::RateConfig;
    use adshare::session::{AhConfig, Layout, SimSession};

    println!(
        "sim: AH + one UDP viewer (1% loss, 20 ms delay), {seconds} simulated second(s) of typing"
    );
    let mut desktop = Desktop::new(640, 480);
    let win = desktop.create_window(1, Rect::new(50, 40, 400, 300), [250, 250, 250, 255]);
    let cfg = AhConfig {
        adaptive_rate: Some(RateConfig::default()),
        ..AhConfig::default()
    };
    let mut s = SimSession::new(desktop, cfg, 0xD37);
    if capture_out.is_some() {
        // The demo operator asked for the capture, which is the consent.
        s.arm_capture(true, CaptureMode::Full, 0xD37)
            .expect("consent supplied");
        println!("capture armed (full retention, consented)");
    }
    let link = LinkConfig {
        loss: 0.01,
        delay_us: 20_000,
        jitter_us: 4_000,
        ..Default::default()
    };
    let p = s.add_udp_participant(
        Layout::Original,
        link,
        LinkConfig::default(),
        Some(8_000_000),
        5,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");

    let mut wl = Typing::new(win, 3);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..seconds * 30 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("settle");

    let snap = s.obs().registry.snapshot();
    let frames = snap.histogram("pipeline.total_us").map_or(0, |h| h.count);
    println!("\nper-stage pipeline latency over {frames} delivered frames (µs):\n");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "stage", "count", "p50", "p90", "p99", "max"
    );
    for stage in STAGE_NAMES {
        if let Some(h) = snap.histogram(&format!("pipeline.{stage}_us")) {
            println!(
                "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
                stage,
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
        }
    }
    // Where the encode CPU actually goes, by codec (cache misses only —
    // hits cost nothing). Fed by the codec.* counters the encode path emits.
    println!("\nencode CPU by codec (cache misses):\n");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "codec", "encodes", "cpu µs", "bytes", "p50 µs", "max µs"
    );
    for kind in adshare::codec::CodecKind::ALL {
        let name = kind.encoding_name();
        let encodes = snap.counter(&format!("codec.{name}.encodes")).unwrap_or(0);
        if encodes == 0 {
            continue;
        }
        let h = snap.histogram(&format!("codec.{name}.encode_us"));
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>8} {:>8}",
            name,
            encodes,
            snap.counter(&format!("codec.{name}.cpu_us_total"))
                .unwrap_or(0),
            snap.counter(&format!("codec.{name}.bytes")).unwrap_or(0),
            h.as_ref().map_or(0, |h| h.p50()),
            h.as_ref().map_or(0, |h| h.max),
        );
    }

    println!(
        "\nretransmissions: {}   rtp packets received: {}   viewer converged: {}",
        snap.counter("ah.retransmissions").unwrap_or(0),
        snap.counter("participant.0.rtp_rx_packets").unwrap_or(0),
        s.converged(p),
    );

    // The congestion controller's view of the path (adshare-rate).
    use adshare::obs::MetricSnapshot;
    let gauge = |name: &str| match snap.get(name) {
        Some(MetricSnapshot::Gauge(v)) => *v,
        _ => 0,
    };
    let tier = match gauge("ah.participant.0.rate.tier") {
        0 => "lossless",
        1 => "balanced",
        _ => "economy",
    };
    println!("\nrate control (adaptive, 8 Mb/s link cap):\n");
    println!(
        "{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}",
        "estimate (kb/s)",
        gauge("ah.participant.0.rate.rate_bps") / 1000,
        "codec tier",
        tier,
        "updates superseded",
        snap.counter("ah.participant.0.rate.superseded")
            .unwrap_or(0),
        "queue depth / bytes",
        format!(
            "{} / {}",
            gauge("ah.participant.0.rate.queue_depth"),
            gauge("ah.participant.0.rate.queue_bytes")
        ),
        "refreshes throttled",
        snap.counter("ah.participant.0.rate.refresh_throttled")
            .unwrap_or(0),
    );

    // Health engine verdict over the final window of events + metrics.
    let report = s.obs().health_check(s.clock.now_us());
    println!("\nhealth: {}", report.overall.as_str());
    for r in &report.rules {
        println!(
            "  {:<16} {:<9} value {:>10.3}  threshold {:>10.3}  ({})",
            r.name,
            r.status.as_str(),
            r.value,
            r.threshold,
            r.detail
        );
    }

    // Chrome-trace / Perfetto timeline export.
    if let Some(path) = trace_out {
        let json = s.obs().export_chrome_trace();
        adshare::obs::validate_chrome_trace(&json).expect("generated trace validates");
        std::fs::write(&path, &json).expect("write trace");
        println!(
            "\nwrote {path} ({} bytes) — open at ui.perfetto.dev or chrome://tracing",
            json.len()
        );
    }

    // Wire-capture flush: freeze the sink with the flight-recorder ring
    // embedded, then write the file and its manifest sidecar.
    if let Some(path) = capture_out {
        let manifest = s.capture_manifest().expect("capture armed");
        let cap = s.finalize_capture().expect("capture armed");
        let stats = cap.stats();
        cap.write_to(std::path::Path::new(&path))
            .expect("write capture");
        println!(
            "\nwrote {path}: {} record(s), {} payload bytes, wire digest 0x{:016x}",
            stats.records, stats.payload_bytes, manifest.wire_digest,
        );
        if let Some(mpath) = manifest_out {
            std::fs::write(&mpath, manifest_json(&manifest)).expect("write manifest");
            println!("wrote {mpath} (adshare-capture-manifest/v1)");
        }
    }
}

/// Replay a capture file through fresh participants at the recorded
/// virtual cadence and verify the bit-exactness claims: the capture's
/// egress wire digest and (when a manifest is supplied) every decoded
/// surface digest. With `--trace out.json`, render the capture's embedded
/// flight-recorder events plus per-packet instants as a historical
/// Chrome-trace / Perfetto timeline. Exits non-zero on any mismatch.
fn run_replay(capture_path: &str, manifest_path: Option<String>, trace_out: Option<String>) {
    use adshare::capture::{parse_manifest, read_capture};
    use adshare::session::replay::{historical_chrome_trace, replay};

    let capture = read_capture(std::path::Path::new(capture_path)).expect("read capture");
    println!(
        "replay: {capture_path} — session {}, {} record(s), consent={}, ring={}",
        capture.header.session_id,
        capture.records.len(),
        capture.header.consent,
        capture.header.ring,
    );
    let manifest = manifest_path.map(|p| {
        let text = std::fs::read_to_string(&p).expect("read manifest");
        parse_manifest(&text).expect("parse manifest")
    });
    let report = replay(&capture, manifest.as_ref());
    println!(
        "fed {} ingress record(s), honoured {} gap marker(s)",
        report.records_fed, report.gaps_skipped
    );
    println!(
        "wire digest 0x{:016x} — {}",
        report.wire_digest,
        match report.recorded_wire_digest {
            Some(rec) if rec == report.wire_digest => "matches manifest".to_string(),
            Some(rec) => format!("MISMATCH (manifest claims 0x{rec:016x})"),
            None => "no manifest to verify against".to_string(),
        }
    );
    for sc in &report.surfaces {
        println!(
            "participant {}: surface digest 0x{:016x} — {}",
            sc.actor,
            sc.replayed,
            match sc.recorded {
                Some(rec) if rec == sc.replayed => "bit-exact".to_string(),
                Some(rec) => format!("MISMATCH (recorded 0x{rec:016x})"),
                None => "not recorded".to_string(),
            }
        );
    }
    if let Some(path) = trace_out {
        let json = historical_chrome_trace(&capture);
        adshare::obs::validate_chrome_trace(&json).expect("historical trace validates");
        std::fs::write(&path, &json).expect("write trace");
        println!(
            "wrote {path} ({} bytes) — historical timeline, open at ui.perfetto.dev",
            json.len()
        );
    }
    if report.bit_exact() {
        println!("replay verdict: bit-exact");
    } else {
        eprintln!("replay verdict: MISMATCH");
        std::process::exit(1);
    }
}

/// Run N complete simulated sessions inside one [`MultiHost`]: every
/// session gets its own desktop, `AppHost`, and lossy UDP viewer; all of
/// them share one encode cache and worker pool and are stepped by the
/// readiness event loop. Prints the host roll-up and optionally writes the
/// `adshare-host-stats/v1` document.
fn run_host_demo(sessions: usize, seconds: u64, stats_out: Option<String>) {
    use adshare::host::HostConfig;
    use adshare::netsim::udp::LinkConfig;
    use adshare::session::{AhConfig, Layout};

    println!(
        "host: {sessions} tenant session(s), 1 lossy UDP viewer each, \
         {seconds} simulated second(s)"
    );
    let mut host = MultiHost::new(HostConfig::default());
    let interval = host.config().capture_interval_us;
    let t_end = seconds * 1_000_000;
    for i in 0..sessions {
        let mut desktop = Desktop::new(640, 480);
        let win = desktop.create_window(1, Rect::new(50, 40, 320, 240), [250, 250, 250, 255]);
        let idx = host.add_session(desktop, AhConfig::default(), i as u64, CacheSharing::Shared);
        host.session_mut(idx).add_udp_participant(
            Layout::Original,
            LinkConfig {
                loss: 0.01,
                delay_us: 20_000,
                ..Default::default()
            },
            LinkConfig::default(),
            None,
            i as u64 ^ 0x5eed,
        );
        // Four content classes: same-class tenants produce identical tiles
        // for the shared cache to deduplicate.
        let class = i % 4;
        let mut wl = Typing::new(win, 1 + (class as u32 % 2));
        let mut rng = StdRng::seed_from_u64(class as u64);
        host.set_workload(idx, move |sess, now| {
            wl.tick(sess.ah.desktop_mut(), &mut rng);
            now < t_end.saturating_sub(500_000) // stop early, let it drain
        });
    }
    host.run_until(t_end);

    let converged = (0..sessions)
        .filter(|&i| host.session(i).converged(0))
        .count();
    let st = host.stats();
    println!(
        "\nhost done: {}/{} viewers converged over {} services \
         ({}..{} per session)",
        converged, sessions, st.services, st.steps_min, st.steps_max
    );
    println!(
        "shared cache: {}% hit rate ({} hits / {} misses), {} entries / {} KiB \
         across {} shards, {} evictions",
        st.cache_hit_rate_pct,
        st.cache_hits,
        st.cache_misses,
        st.cache_entries,
        st.cache_bytes >> 10,
        st.cache_shards,
        st.cache_evictions,
    );
    println!(
        "worker pool: {} permits, {} inline fallbacks; host cpu {} ms over {} ms wall",
        st.pool_max_workers,
        st.pool_inline_fallbacks,
        st.cpu_us / 1000,
        st.wall_us / 1000,
    );
    println!(
        "capture interval {} ms; {} session(s) still armed at shutdown",
        interval / 1000,
        st.active_sessions
    );
    if let Some(path) = stats_out {
        std::fs::write(&path, st.to_json()).expect("write host stats");
        println!("wrote {path} (adshare-host-stats/v1)");
    }
}

fn selftest() {
    println!("selftest: AH + viewer over loopback for 3 s");
    let ah = std::thread::spawn(|| run_ah(16001, "typing", 4));
    std::thread::sleep(Duration::from_millis(200));
    run_viewer("127.0.0.1:16001".parse().expect("addr"), 3, None);
    let _ = ah.join();
    println!("selftest complete");
}
