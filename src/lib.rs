//! # adshare — RTP application and desktop sharing
//!
//! A complete implementation of `draft-boyaci-avt-app-sharing-00`
//! ("RTP Payload format for Application and Desktop Sharing",
//! Boyaci & Schulzrinne): the remoting protocol, the Human Interface
//! Protocol (HIP), RTCP feedback (PLI / Generic NACK), RFC 4571 TCP
//! framing, BFCP floor control with the HID-status extension, SDP
//! negotiation — plus every substrate a reproduction needs: an RTP/RTCP
//! stack, PNG/DEFLATE/DCT/RLE codecs written from scratch, a simulated
//! window system with synthetic workloads, and a deterministic network
//! simulator.
//!
//! ## Quick start
//!
//! ```rust
//! use adshare::prelude::*;
//!
//! // An AH sharing a desktop with one window.
//! let mut desktop = Desktop::new(640, 480);
//! let win = desktop.create_window(1, Rect::new(50, 40, 200, 150), [230, 230, 230, 255]);
//! let mut session = SimSession::new(desktop, AhConfig::default(), 7);
//!
//! // A TCP participant joins and receives initial state (§4.4).
//! let viewer = session.add_tcp_participant(
//!     Layout::Original,
//!     TcpConfig::default(),
//!     LinkConfig::default(),
//!     1,
//! );
//!
//! // Run the world until the viewer's pixels match the AH's.
//! let elapsed = session.run_until(10_000, 5_000_000, |s| s.converged(viewer));
//! assert!(elapsed.is_some());
//! let _ = win;
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`rtp`] | `adshare-rtp` | RTP/RTCP, feedback, RFC 4571 framing |
//! | [`codec`] | `adshare-codec` | images, DEFLATE/zlib, PNG, DCT, RLE |
//! | [`screen`] | `adshare-screen` | window system, damage, workloads |
//! | [`remoting`] | `adshare-remoting` | the draft's payload formats |
//! | [`bfcp`] | `adshare-bfcp` | floor control (Appendix A) |
//! | [`sdp`] | `adshare-sdp` | session negotiation (§10) |
//! | [`netsim`] | `adshare-netsim` | deterministic links + real sockets |
//! | [`session`] | `adshare-session` | AH / participant / orchestration |
//! | [`obs`] | `adshare-obs` | metrics registry + per-frame pipeline tracing |
//! | [`rate`] | `adshare-rate` | congestion control, pacing, adaptive quality |
//! | [`layers`] | `adshare-layers` | simulcast/SVC quality tiers, per-subtree tier selection |
//! | [`encode`] | `adshare-encode` | parallel tile encoding + cross-frame encode cache |
//! | [`relay`] | `adshare-relay` | cascadable fan-out relay tier with NACK absorption |
//! | [`host`] | `adshare-host` | multi-tenant sharded host: thousands of sessions per process |
//! | [`capture`] | `adshare-capture` | consent-gated wire capture, deterministic replay, cache warm files |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adshare_bfcp as bfcp;
pub use adshare_capture as capture;
pub use adshare_codec as codec;
pub use adshare_encode as encode;
pub use adshare_host as host;
pub use adshare_layers as layers;
pub use adshare_netsim as netsim;
pub use adshare_obs as obs;
pub use adshare_rate as rate;
pub use adshare_relay as relay;
pub use adshare_remoting as remoting;
pub use adshare_rtp as rtp;
pub use adshare_screen as screen;
pub use adshare_sdp as sdp;
pub use adshare_session as session;

/// One-stop imports for applications.
pub mod prelude {
    pub use adshare_bfcp::{BfcpMessage, FloorChair, FloorClient, FloorState, HidStatus};
    pub use adshare_capture::{
        parse_capture, parse_manifest, read_capture, CaptureConfig, CaptureHandle, CaptureMode,
        ManifestSummary,
    };
    pub use adshare_codec::{Codec, CodecKind, Image, Rect};
    pub use adshare_encode::{EncodeConfig, TileConfig};
    pub use adshare_host::{
        run_standalone, CacheSharing, HostConfig, HostStats, MultiHost, Workload as HostWorkload,
    };
    pub use adshare_layers::{LayersConfig, TierSet};
    pub use adshare_netsim::tcp::TcpConfig;
    pub use adshare_netsim::udp::{LinkConfig, LinkStep};
    pub use adshare_netsim::VirtualClock;
    pub use adshare_rate::{QualityTier, RateConfig};
    pub use adshare_relay::scenario::{run_flash_crowd, FlashCrowd};
    pub use adshare_relay::sim::{RelaySim, Upstream};
    pub use adshare_relay::{RelayConfig, RelayNode};
    pub use adshare_remoting::hip::HipMessage;
    pub use adshare_remoting::message::RemotingMessage;
    pub use adshare_remoting::registry::MouseButton;
    pub use adshare_remoting::WindowId as WireWindowId;
    pub use adshare_screen::workload::{
        PingPong, Scrolling, Slideshow, Terminal, Typing, Video, WindowDrag, Workload,
    };
    pub use adshare_screen::Desktop;
    pub use adshare_sdp::{build_ah_offer, build_answer, OfferParams};
    pub use adshare_session::replay::{historical_chrome_trace, replay, ReplayReport};
    pub use adshare_session::scenario::{
        run_scenario, Action, Expectation, Scenario, ScenarioCapture, ScenarioOutcome, TimedEvent,
        WorkloadKind,
    };
    pub use adshare_session::{
        AhConfig, AppHost, Layout, Participant, PointerPolicy, SimSession, TransportKind,
    };
}
