//! Extensions beyond the draft's MUSTs: NACK-storm avoidance (§5.3.2 MAY),
//! multicast retransmission dedup, and RTCP receiver reports giving the AH
//! a per-path quality view.

use adshare::prelude::*;
use adshare::screen::workload::{Typing, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn classroom(
    n: usize,
    loss: f64,
    seed: u64,
) -> (SimSession, Vec<usize>, adshare::screen::wm::WindowId) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), seed);
    let link = LinkConfig {
        loss,
        delay_us: 10_000,
        jitter_us: 2_000,
        ..Default::default()
    };
    let members: Vec<usize> = (0..n)
        .map(|i| {
            s.add_multicast_participant(
                Layout::Original,
                link,
                LinkConfig::default(),
                seed + 10 + i as u64,
            )
        })
        .collect();
    (s, members, w)
}

#[test]
fn multicast_under_loss_converges_with_bounded_retransmissions() {
    let (mut s, members, w) = classroom(6, 0.05, 1);
    s.run_until(10_000, 120_000_000, |s| {
        members.iter().all(|&m| s.converged(m))
    })
    .expect("class syncs under loss");

    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..60 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    s.run_until(10_000, 120_000_000, |s| {
        members.iter().all(|&m| s.converged(m))
    })
    .expect("class consistent after the burst");

    let stats = s.ah.stats();
    // The dedup window plus member backoff must suppress a meaningful part
    // of the storm: at 5% loss over 6 members, duplicate repair requests
    // are common.
    let suppressed_somewhere = stats.retransmits_suppressed
        + members
            .iter()
            .map(|&m| s.participant(m).nacks_suppressed())
            .sum::<u64>();
    assert!(
        suppressed_somewhere > 0,
        "some duplicate repairs should be suppressed (ah: {}, members: {})",
        stats.retransmits_suppressed,
        suppressed_somewhere - stats.retransmits_suppressed,
    );
    // And retransmissions stay within the same order as actual losses:
    // each member sees ~5% of ~region packets lost; without suppression the
    // AH would answer every member's NACK for every shared loss.
    assert!(
        stats.retransmits < stats.rtp_packets,
        "retransmits {} must not dwarf traffic {}",
        stats.retransmits,
        stats.rtp_packets
    );
}

#[test]
fn backoff_suppression_reduces_nacks_vs_no_backoff() {
    // Same world twice; only the backoff differs.
    let run = |backoff: bool| -> u64 {
        let (mut s, members, w) = classroom(6, 0.08, 7);
        if !backoff {
            for &m in &members {
                s.participant_mut(m).set_nack_backoff(0);
            }
        }
        s.run_until(10_000, 120_000_000, |s| {
            members.iter().all(|&m| s.converged(m))
        })
        .expect("sync");
        let mut wl = Typing::new(w, 3);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..60 {
            wl.tick(s.ah.desktop_mut(), &mut rng);
            s.step(33_333);
        }
        s.run_until(10_000, 120_000_000, |s| {
            members.iter().all(|&m| s.converged(m))
        })
        .expect("settle");
        members
            .iter()
            .map(|&m| s.participant(m).stats().nacks_sent)
            .sum()
    };
    let with_backoff = run(true);
    let without = run(false);
    assert!(
        with_backoff <= without,
        "backoff must not increase NACK count: {with_backoff} vs {without}"
    );
}

#[test]
fn multiple_multicast_sessions_with_different_rates() {
    // §4.3: "Several simultaneous multicast sessions with different
    // transmission rates can be created at the AH." A fast session and a
    // heavily paced one watch the same desktop; the fast one tracks updates
    // promptly, the paced one lags but spends proportionally fewer bytes
    // per unit time — and both eventually converge.
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 50);
    let fast = s.create_multicast_session(None); // unpaced
    let slow = s.create_multicast_session(Some(400_000)); // 400 kbit/s
    let pf = s.add_multicast_participant_in(
        fast,
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        51,
    );
    let ps = s.add_multicast_participant_in(
        slow,
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        52,
    );
    s.run_until(10_000, 120_000_000, |s| s.converged(pf) && s.converged(ps))
        .expect("both sync");

    let mut wl = Typing::new(w, 4);
    let mut rng = StdRng::seed_from_u64(53);
    let t_load_start = s.clock.now_us();
    for _ in 0..90 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let load_us = s.clock.now_us() - t_load_start;
    let fast_bytes = s.ah.participant_bytes_sent(s.handle(pf));
    let slow_bytes = s.ah.participant_bytes_sent(s.handle(ps));
    // The paced session's egress must respect its budget (plus burst).
    let slow_budget = 400_000 / 8 * load_us / 1_000_000 + 50_000;
    assert!(
        slow_bytes <= fast_bytes,
        "paced session must not exceed the unpaced one: {slow_bytes} vs {fast_bytes}"
    );
    assert!(
        slow_bytes <= slow_budget,
        "paced session over budget: {slow_bytes} > {slow_budget}"
    );
    // Both converge once the burst ends.
    s.run_until(10_000, 240_000_000, |s| s.converged(pf) && s.converged(ps))
        .expect("both sessions converge after load");
}

#[test]
fn receiver_reports_reach_the_ah() {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    // No retransmissions: NACK repair would backfill the receiver's
    // statistics and legitimately hide the loss from the report.
    let cfg = AhConfig {
        retransmissions: false,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 21);
    let link = LinkConfig {
        loss: 0.05,
        delay_us: 10_000,
        ..Default::default()
    };
    let p = s.add_udp_participant(Layout::Original, link, LinkConfig::default(), None, 22);
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("sync");

    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..120 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    // 4 s elapsed: at least one periodic RR (2 s interval) must have landed.
    let report =
        s.ah.reception_report(s.handle(p))
            .expect("AH has a reception report");
    assert!(report.highest_seq > 0);
    // Under 5% loss, cumulative losses get reported sooner or later.
    assert!(
        report.cumulative_lost > 0 || report.fraction_lost > 0,
        "a lossy path should show up in the report: {report:?}"
    );
}

#[test]
fn sender_reports_anchor_latency_measurement() {
    // The AH multiplexes RTCP sender reports onto the media path
    // (RFC 5761); participants use the wallclock↔timestamp anchor to
    // measure true capture→display latency.
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 41);
    let link = TcpConfig {
        rate_bps: 50_000_000,
        delay_us: 30_000,
        send_buf: 1 << 20,
    };
    let p = s.add_tcp_participant(Layout::Original, link, LinkConfig::default(), 42);
    s.run_until(10_000, 30_000_000, |s| s.converged(p))
        .expect("sync");

    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..90 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    assert!(s.ah.stats().sr_sent > 0, "AH emitted sender reports");
    let (p50, p95, max) = s
        .participant(p)
        .latency_summary_us()
        .expect("latency measured once an SR anchored the clock");
    // One-way delay is 30 ms; with the 10 ms tick quantum and serialization
    // the p50 must land in a plausible band around it.
    assert!(
        (30_000..120_000).contains(&p50),
        "p50 {p50} µs should be near the 30 ms path delay"
    );
    assert!(p50 <= p95 && p95 <= max);
}

#[test]
fn adaptive_codec_keeps_text_lossless_and_video_lossy() {
    use adshare::screen::workload::Video;
    let mut d = Desktop::new(800, 600);
    let text = d.create_window(1, Rect::new(30, 30, 200, 150), [252, 252, 252, 255]);
    let video = d.create_window(2, Rect::new(300, 60, 160, 120), [0, 0, 0, 255]);
    let cfg = AhConfig {
        adaptive_codec: true,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 81);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig {
            rate_bps: 1_000_000_000,
            delay_us: 5_000,
            send_buf: 8 << 20,
        },
        LinkConfig::default(),
        82,
    );
    s.run_until(10_000, 30_000_000, |s| s.divergence(p) < 8.0)
        .expect("sync");

    let mut t = Typing::new(text, 3);
    let mut v = Video::new(video, Rect::new(5, 5, 150, 110));
    let mut rng = StdRng::seed_from_u64(83);
    for _ in 0..30 {
        t.tick(s.ah.desktop_mut(), &mut rng);
        v.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    for _ in 0..100 {
        s.step(10_000);
    }
    // Text window: classified synthetic → PNG → pixel-exact.
    assert_eq!(
        s.participant(p).window_content(text.0),
        s.ah.desktop().window_content(text),
        "text must be lossless under the adaptive policy"
    );
    // Video window: classified photographic → DCT → small bounded error.
    let (a, b) = (
        s.participant(p).window_content(video.0).unwrap(),
        s.ah.desktop().window_content(video).unwrap(),
    );
    let err = a.mean_abs_error(b);
    assert!(err > 0.0, "video should be lossy (DCT chosen)");
    assert!(err < 8.0, "but with bounded error, got {err}");
}

#[test]
fn lossless_path_reports_clean() {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 210), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 31);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        32,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("sync");
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..120 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let report = s.ah.reception_report(s.handle(p)).expect("report arrives");
    assert_eq!(report.cumulative_lost, 0, "clean path reports zero loss");
}
