//! SDP offer/answer (draft §10) wired to an actual session: negotiate
//! capabilities, then run the session with the negotiated parameters.

use adshare::prelude::*;
use adshare::sdp::answer::Transport;

#[test]
fn negotiated_udp_session_runs() {
    let offer = build_ah_offer(&OfferParams::default());
    let negotiated = build_answer(
        &offer,
        Transport::Udp,
        &[
            CodecKind::Png,
            CodecKind::Dct,
            CodecKind::Rle,
            CodecKind::Raw,
        ],
    )
    .unwrap();
    assert_eq!(negotiated.transport, Transport::Udp);
    assert!(negotiated.retransmissions);

    // Configure the AH from the negotiated values.
    let mut d = Desktop::new(640, 480);
    d.create_window(1, Rect::new(10, 10, 200, 150), [230, 230, 230, 255]);
    let cfg = AhConfig {
        remoting_pt: negotiated.remoting_pt,
        retransmissions: negotiated.retransmissions,
        codec: negotiated.codecs[0].1,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 1);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        2,
    );
    assert!(s
        .run_until(10_000, 10_000_000, |s| s.converged(p))
        .is_some());
}

#[test]
fn negotiated_tcp_fallback_session_runs() {
    let params = OfferParams {
        offer_udp: false,
        ..OfferParams::default()
    };
    let offer = build_ah_offer(&params);
    let negotiated = build_answer(&offer, Transport::Udp, &[CodecKind::Png]).unwrap();
    assert_eq!(negotiated.transport, Transport::Tcp, "falls back to TCP");
    assert!(!negotiated.retransmissions);

    let mut d = Desktop::new(640, 480);
    d.create_window(1, Rect::new(10, 10, 200, 150), [230, 230, 230, 255]);
    let cfg = AhConfig {
        remoting_pt: negotiated.remoting_pt,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 3);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        4,
    );
    assert!(s
        .run_until(10_000, 10_000_000, |s| s.converged(p))
        .is_some());
}

#[test]
fn offer_round_trips_through_text() {
    // What the AH writes, a standard SDP parser reads back identically —
    // and the example in §10.3 stays parseable.
    let offer = build_ah_offer(&OfferParams::default());
    let text = offer.to_sdp();
    let back = adshare::sdp::parse(&text).unwrap();
    assert_eq!(back.media, offer.media);
    // The §10.3 example itself.
    let example = "m=application 50000 TCP/BFCP *\r\na=floorid:0 m-stream:10\r\nm=application 6000 RTP/AVP 99\r\na=rtpmap:99 remoting/90000\r\na=fmtp: retransmissions=yes\r\nm=application 6000 TCP/RTP/AVP 99\r\na=rtpmap:99 remoting/90000\r\nm=application 6006 TCP/RTP/AVP 100\r\na=rtpmap:99 hip/90000\r\na=label:10\r\n";
    let parsed = adshare::sdp::parse(example).unwrap();
    assert_eq!(parsed.media.len(), 4);
    assert!(parsed.media[1].retransmissions());
}

#[test]
fn from_negotiation_bootstraps_a_working_session() {
    // The one-call path: offer → answer → configured session.
    let mut d = Desktop::new(640, 480);
    d.create_window(1, Rect::new(10, 10, 200, 150), [230, 230, 230, 255]);
    let (mut s, negotiated) = SimSession::from_negotiation(
        d,
        &OfferParams::default(),
        Transport::Udp,
        &[CodecKind::Png, CodecKind::Dct],
        5,
    )
    .expect("negotiation succeeds");
    assert_eq!(s.ah.config().remoting_pt, negotiated.remoting_pt);
    assert_eq!(
        s.ah.config().codec,
        CodecKind::Png,
        "offer preference order respected"
    );
    assert!(s.ah.config().retransmissions);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        6,
    );
    assert!(s
        .run_until(10_000, 10_000_000, |s| s.converged(p))
        .is_some());
}

#[test]
fn codec_mismatch_falls_back_to_png() {
    let offer = build_ah_offer(&OfferParams::default());
    // Participant supports only PNG (the draft's MUST) — negotiation still
    // succeeds with the single common codec.
    let negotiated = build_answer(&offer, Transport::Udp, &[CodecKind::Png]).unwrap();
    assert_eq!(negotiated.codecs.len(), 1);
    assert_eq!(negotiated.codecs[0].1, CodecKind::Png);
}
