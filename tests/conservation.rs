//! Conservation invariants: every datagram and byte offered to a transport
//! is accounted for by exactly one of delivered / dropped (plus explicit
//! duplication credit), and the RTCP reception reports a participant emits
//! agree with the loss the registry counted on the wire.

use adshare::netsim::udp::UdpChannel;
use adshare::obs::registry::MetricSnapshot;
use adshare::obs::{Obs, Registry};
use adshare::prelude::*;
use adshare::remoting::message::{RegionUpdate, RemotingMessage};
use adshare::remoting::packetizer::RemotingPacketizer;
use adshare::rtp::rtcp::{decode_compound, RtcpPacket};
use adshare::rtp::session::RtpSender;
use adshare::screen::workload::{Typing, Workload};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.counter_value(name)
        .unwrap_or_else(|| panic!("counter {name} must be registered"))
}

/// `tx + dup == rx + dropped` for a UDP-style transport prefix, in both
/// datagrams and bytes. Holds exactly when nothing is in flight.
fn udp_conserved(reg: &Registry, prefix: &str) -> bool {
    let c = |suffix: &str| counter(reg, &format!("{prefix}.{suffix}"));
    c("tx_datagrams") + c("dup_datagrams") == c("rx_datagrams") + c("dropped_datagrams")
        && c("tx_bytes") + c("dup_bytes") == c("rx_bytes") + c("dropped_bytes")
}

#[test]
fn udp_channel_conserves_under_adversarial_link() {
    // Loss, duplication, a tight MTU, and a rate limit with queue drops all
    // active at once: every datagram must still land in exactly one bucket.
    let registry = Registry::new();
    let mut ch = UdpChannel::new(
        LinkConfig {
            loss: 0.2,
            duplicate: 0.1,
            delay_us: 7_000,
            jitter_us: 2_000,
            mtu: 900,
            rate_bps: Some(2_000_000),
        },
        77,
    );
    ch.register_metrics(&registry, "udp");

    let mut now = 0u64;
    let mut state = 1u32;
    for _ in 0..2_000 {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        let len = (state as usize % 1400) + 1; // some exceed the MTU
        ch.send(now, &vec![0xA5; len]);
        now += 500;
        let _ = ch.poll(now);
    }
    // Drain everything still queued.
    now += 10_000_000;
    let _ = ch.poll(now);
    assert_eq!(ch.in_flight(), 0);

    assert!(udp_conserved(&registry, "udp"));
    // The adversarial config must actually have exercised every bucket.
    assert!(counter(&registry, "udp.rx_datagrams") > 0);
    assert!(counter(&registry, "udp.dropped_datagrams") > 0);
    assert!(counter(&registry, "udp.dup_datagrams") > 0);
}

#[test]
fn session_transports_conserve_bytes_after_drain() {
    let mut desktop = Desktop::new(640, 480);
    let w = desktop.create_window(1, Rect::new(40, 40, 240, 180), [245, 245, 245, 255]);
    let mut s = SimSession::new(desktop, AhConfig::default(), 31);
    let lossy = LinkConfig {
        loss: 0.05,
        delay_us: 15_000,
        jitter_us: 3_000,
        ..Default::default()
    };
    let udp = s.add_udp_participant(Layout::Original, lossy, LinkConfig::default(), None, 32);
    let tcp = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        33,
    );
    let mc = s.add_multicast_participant(Layout::Original, lossy, LinkConfig::default(), 35);
    s.run_until(10_000, 120_000_000, |s| {
        s.converged(udp) && s.converged(tcp) && s.converged(mc)
    })
    .expect("all participants sync");

    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(34);
    for _ in 0..40 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(30_000);
    }
    s.run_until(10_000, 120_000_000, |s| {
        s.converged(udp) && s.converged(tcp) && s.converged(mc)
    })
    .expect("all participants settle");

    let registry = s.obs().registry.clone();
    let conserved = |reg: &Registry| {
        udp_conserved(reg, "ah.participant.0.udp")
            && udp_conserved(reg, "ah.mcast.0.member.0")
            && udp_conserved(reg, "participant.0.upstream")
            && udp_conserved(reg, "participant.1.upstream")
            && udp_conserved(reg, "participant.2.upstream")
            && counter(reg, "ah.participant.1.tcp.tx_bytes")
                == counter(reg, "ah.participant.1.tcp.rx_bytes")
    };
    // With no fresh damage the pipeline drains; periodic RTCP can keep a
    // datagram in flight at any single instant, so step until the session
    // reaches a fully drained, conserved state.
    let mut drained = false;
    for _ in 0..500 {
        s.step(2_000);
        if conserved(&registry) {
            drained = true;
            break;
        }
    }
    assert!(
        drained,
        "transports never reached a drained state where every byte is accounted for"
    );
    // TCP backlog gauge must read zero at the drained instant.
    let snap = registry.snapshot();
    assert_eq!(
        snap.get("ah.participant.1.tcp.backlog_bytes"),
        Some(&MetricSnapshot::Gauge(0)),
        "drained TCP link has no backlog"
    );
    // Loss was real: the lossy downstream actually dropped something.
    assert!(counter(&registry, "ah.participant.0.udp.dropped_datagrams") > 0);
    // Multicast fan-out: every group send was offered to the member link.
    assert_eq!(
        counter(&registry, "ah.mcast.0.tx_datagrams"),
        counter(&registry, "ah.mcast.0.member.0.tx_datagrams")
    );
}

#[test]
fn rtcp_reception_report_agrees_with_registry_loss_counters() {
    // Drive a participant directly over an in-order, zero-delay lossy
    // channel so the expected RFC 3550 cumulative-loss figure can be
    // computed exactly from what the channel's counters say.
    let registry = Registry::new();
    let obs = Obs::new();
    let mut ch = UdpChannel::new(
        LinkConfig {
            loss: 0.08,
            delay_us: 0,
            jitter_us: 0,
            ..Default::default()
        },
        91,
    );
    ch.register_metrics(&registry, "viewer.link");

    let mut rng = StdRng::seed_from_u64(92);
    let mut packetizer = RemotingPacketizer::new(RtpSender::new(0xC0FFEE, 99, &mut rng), 1200);
    // NACK disabled: reception statistics only, no repair traffic.
    let mut viewer = Participant::new(1, Layout::Original, false, 93);
    viewer.attach_obs(&obs, 0);

    // delivered[i] says whether send #i reached the viewer; the link has
    // zero delay and jitter, so delivery is in-order and immediate.
    let mut delivered = Vec::new();
    let mut last_seq = 0u16;
    for i in 0..600u32 {
        let msg = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WireWindowId(1),
            payload_type: 101,
            left: i,
            top: 0,
            payload: Bytes::from(vec![i as u8; 200]),
        });
        let pkts = packetizer.packetize(&msg, i * 3000).expect("packetize");
        assert_eq!(pkts.len(), 1, "200-byte updates fit one packet");
        let seq = pkts[0].header.sequence;
        ch.send(0, &pkts[0].encode());
        let out = ch.poll(0);
        delivered.push(!out.is_empty());
        for dg in out {
            last_seq = seq;
            viewer.handle_datagram(&dg, i as u64 * 3000);
        }
    }
    assert_eq!(ch.in_flight(), 0, "zero-delay link never holds datagrams");

    // Expected cumulative loss: drops strictly inside the window between
    // the first and the last delivery (RFC 3550 §A.3 — packets lost before
    // the first or after the highest received are invisible to the report).
    let first = delivered
        .iter()
        .position(|&d| d)
        .expect("something delivered");
    let last = delivered
        .iter()
        .rposition(|&d| d)
        .expect("something delivered");
    let received = delivered.iter().filter(|&&d| d).count() as u64;
    let expected_lost = (last - first + 1) as u64 - received;
    assert!(expected_lost > 0, "8% loss must drop something mid-stream");

    // Tick far enough to cross the RR interval and read the report back.
    viewer.tick(90_000 * 3);
    let compound = viewer.take_rtcp().expect("RR due");
    let block = decode_compound(&compound)
        .expect("valid compound")
        .into_iter()
        .find_map(|p| match p {
            RtcpPacket::ReceiverReport(rr) => rr.reports.into_iter().next(),
            _ => None,
        })
        .expect("reception report block");

    assert_eq!(u64::from(block.cumulative_lost), expected_lost);
    assert_eq!(block.highest_seq as u16, last_seq, "extended highest seq");

    // The registry's wire-level accounting must tell the same story: with
    // no duplication, drops outside the reporting window explain the whole
    // difference between channel drops and reported loss.
    assert_eq!(
        counter(&registry, "viewer.link.tx_datagrams"),
        counter(&registry, "viewer.link.rx_datagrams")
            + counter(&registry, "viewer.link.dropped_datagrams")
    );
    let outside = first as u64 + (delivered.len() - 1 - last) as u64;
    assert_eq!(
        counter(&registry, "viewer.link.dropped_datagrams"),
        u64::from(block.cumulative_lost) + outside
    );

    // And the participant mirrored the block into its obs gauges.
    let snap = obs.registry.snapshot();
    assert_eq!(
        snap.get("participant.0.rtcp_cum_lost"),
        Some(&MetricSnapshot::Gauge(i64::from(block.cumulative_lost)))
    );
    assert_eq!(
        snap.get("participant.0.rtcp_highest_seq"),
        Some(&MetricSnapshot::Gauge(i64::from(block.highest_seq)))
    );
    assert_eq!(snap.counter("participant.0.rtp_rx_packets"), Some(received));
}
