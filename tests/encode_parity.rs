//! The tile pipeline's session-level guarantees: worker count never
//! changes what goes on the wire, and the cross-frame cache changes how
//! much work it costs to produce it.

use adshare::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_session(workers: usize, cross_frame_cache: bool, seed: u64) -> (SimSession, usize) {
    let mut d = Desktop::new(1024, 768);
    d.create_window(1, Rect::new(100, 80, 400, 300), [240, 240, 240, 255]);
    d.create_window(2, Rect::new(550, 200, 300, 250), [220, 230, 240, 255]);
    let cfg = AhConfig {
        encode: EncodeConfig {
            workers,
            cross_frame_cache,
            tile: TileConfig::square(64),
            ..EncodeConfig::default()
        },
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, seed);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        seed + 1,
    );
    (s, p)
}

fn drive(s: &mut SimSession, p: usize, rng_seed: u64) -> (u64, u64, u64, u64) {
    let win = s.ah.desktop().wm().shared_records().next().unwrap().id;
    let mut scroll = Scrolling::new(win, 2);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    for _ in 0..40 {
        scroll.tick(s.ah.desktop_mut(), &mut rng);
        s.step(10_000);
    }
    // Let retransmissions and repairs settle.
    let t = s.run_until(10_000, 5_000_000, |s| s.converged(p));
    assert!(t.is_some(), "must converge");
    let st = s.ah.stats();
    (
        st.bytes_sent,
        st.rtp_packets,
        st.region_msgs,
        st.encoded_bytes,
    )
}

/// The same session driven with 1 worker and with 8 workers produces the
/// same wire traffic, byte for byte in aggregate: same bytes sent, same
/// packet count, same RegionUpdate count, same encoded payload volume.
#[test]
fn worker_count_does_not_change_the_wire() {
    let (mut serial, p1) = build_session(1, true, 7);
    let (mut parallel, p2) = build_session(8, true, 7);
    let a = drive(&mut serial, p1, 99);
    let b = drive(&mut parallel, p2, 99);
    assert_eq!(a, b, "(bytes, packets, regions, encoded) diverged");
    // Both participants hold pixel-identical copies of the same desktop.
    for rec in serial.ah.desktop().wm().shared_records() {
        assert_eq!(
            serial.participant(p1).window_content(rec.id.0),
            parallel.participant(p2).window_content(rec.id.0),
            "window {} pixels diverged",
            rec.id.0
        );
    }
}

/// Ping-pong content (frame N+2 == frame N): the cross-frame cache must
/// cut encode work at least in half versus the per-step cache, while both
/// converge to the same pixels.
#[test]
fn cross_frame_cache_halves_encodes_on_ping_pong() {
    let run = |cross_frame: bool| {
        let (mut s, p) = build_session(2, cross_frame, 11);
        let win = s.ah.desktop().wm().shared_records().next().unwrap().id;
        let mut wl = PingPong::new(win, Rect::new(32, 32, 192, 128));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            wl.tick(s.ah.desktop_mut(), &mut rng);
            s.step(10_000);
        }
        let t = s.run_until(10_000, 5_000_000, |s| s.converged(p));
        assert!(t.is_some(), "must converge (cross_frame={cross_frame})");
        s.ah.stats().encodes
    };
    let per_step = run(false);
    let cross_frame = run(true);
    assert!(
        cross_frame * 2 <= per_step,
        "cross-frame cache should cut encodes ≥2×: {cross_frame} vs {per_step}"
    );
}
