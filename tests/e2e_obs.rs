//! End-to-end observability regression: an AH and a participant on a lossy
//! simulated UDP link recover via Generic NACK retransmission to a
//! pixel-identical framebuffer, and the unified `adshare-obs` registry
//! records both the repair work and a complete per-stage latency breakdown
//! for every traced frame.

use adshare::obs::STAGE_NAMES;
use adshare::prelude::*;
use adshare::screen::workload::{Typing, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lossy_udp_session_converges_and_reports_through_registry() {
    let mut desktop = Desktop::new(640, 480);
    let w = desktop.create_window(1, Rect::new(40, 40, 240, 180), [245, 245, 245, 255]);
    let mut s = SimSession::new(desktop, AhConfig::default(), 21);
    let link = LinkConfig {
        loss: 0.05,
        delay_us: 15_000,
        jitter_us: 3_000,
        ..Default::default()
    };
    let p = s.add_udp_participant(Layout::Original, link, LinkConfig::default(), None, 22);
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync under 5% loss");

    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..60 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(30_000);
    }
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("typing burst settles under 5% loss");

    // converged() compares every shared window byte for byte, so this is
    // the pixel-identical assertion.
    assert!(s.converged(p));

    // The repair machinery must have actually run, and the registry view
    // must agree with the legacy stats accessor it sits behind.
    let registry = &s.obs().registry;
    let retransmissions = registry
        .counter_value("ah.retransmissions")
        .expect("ah.retransmissions registered");
    assert!(
        retransmissions > 0,
        "5% loss over a typing burst must trigger NACK retransmissions"
    );
    assert_eq!(retransmissions, s.ah.stats().retransmits);

    // Frame tracing completed at least one full per-stage breakdown, and
    // every stage histogram saw exactly the same number of frames.
    let snap = registry.snapshot();
    let total = snap
        .histogram("pipeline.total_us")
        .expect("stage histograms registered");
    assert!(total.count > 0, "at least one RegionUpdate fully traced");
    for stage in STAGE_NAMES {
        let h = snap
            .histogram(&format!("pipeline.{stage}_us"))
            .unwrap_or_else(|| panic!("stage histogram pipeline.{stage}_us registered"));
        assert_eq!(
            h.count, total.count,
            "a completed trace records every stage ({stage})"
        );
        assert!(h.p50() <= h.p99(), "percentiles ordered ({stage})");
    }

    // Participant-side reception metrics flowed into the same registry.
    assert!(
        snap.counter("participant.0.rtp_rx_packets").unwrap_or(0) > 0,
        "participant rx packets counted"
    );
    assert_eq!(
        snap.counter("participant.0.frame_latency_us"),
        None,
        "frame latency is a histogram, not a counter"
    );
    assert_eq!(
        snap.histogram("participant.0.frame_latency_us")
            .map(|h| h.count),
        Some(total.count),
        "per-participant frame latency tracks completed traces"
    );

    // The snapshot exports as a valid adshare-obs/v1 document.
    let text = snap.to_json();
    let doc = adshare::obs::json::parse(&text).expect("snapshot JSON parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(adshare::obs::SNAPSHOT_SCHEMA)
    );
}
