//! Hostile-input robustness: every byte-ingesting surface of the session
//! layer must be total — garbage in, never a panic, and the session keeps
//! working afterwards.

use adshare::netsim::tcp::TcpConfig;
use adshare::prelude::*;

fn noise(seed: u32, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 24) as u8
        })
        .collect()
}

#[test]
fn participant_survives_garbage_datagrams() {
    let mut p = Participant::new(1, Layout::Original, true, 1);
    for len in 0..200 {
        p.handle_datagram(&noise(len as u32, len), len as u64);
    }
    // Including plausible RTP/RTCP prefixes.
    for seed in 0..100u32 {
        let mut buf = noise(seed, 64);
        buf[0] = 0x80; // RTP v2
        p.handle_datagram(&buf, 0);
        buf[1] = 200 + (seed % 7) as u8; // RTCP PT range
        p.handle_datagram(&buf, 0);
    }
    assert!(!p.synced(), "garbage must not fake a sync");
}

#[test]
fn participant_survives_garbage_stream() {
    let mut p = Participant::new(1, Layout::Original, false, 2);
    for chunk in noise(7, 8192).chunks(37) {
        p.handle_stream(chunk, 0);
    }
    assert!(!p.synced());
}

#[test]
fn ah_survives_garbage_rtcp_and_hip() {
    let mut d = Desktop::new(320, 240);
    d.create_window(1, Rect::new(10, 10, 100, 80), [240, 240, 240, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 3);
    let idx = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        4,
    );
    let h = s.handle(idx);
    for seed in 0..200u32 {
        let buf = noise(seed, (seed % 96) as usize);
        s.ah.handle_rtcp(h, &buf, seed as u64);
        s.ah.handle_hip(h, &buf);
        let _ = s.ah.handle_bfcp(&buf, seed as u64);
    }
    assert_eq!(
        s.ah.stats().hip_injected,
        0,
        "garbage must never inject events"
    );
}

#[test]
fn session_recovers_after_garbage_burst() {
    // Garbage mid-session must not poison later valid traffic.
    let mut d = Desktop::new(320, 240);
    let w = d.create_window(1, Rect::new(10, 10, 160, 120), [245, 245, 245, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 5);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        6,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("sync");

    // Inject garbage directly into the participant (as if a hostile host
    // spoofed datagrams onto its port).
    for seed in 0..50u32 {
        let buf = noise(seed, 80);
        s.participant_mut(p).handle_datagram(&buf, 0);
    }
    // Real traffic continues and still converges.
    let patch = Image::filled(30, 20, [200, 0, 0, 255]).unwrap();
    s.ah.desktop_mut().draw(w, 5, 5, &patch);
    let t = s.run_until(10_000, 20_000_000, |s| s.converged(p));
    assert!(t.is_some(), "session survives a spoofed-garbage burst");
}

#[test]
fn vnc_client_survives_garbage() {
    use adshare::session::baseline::VncClient;
    let mut c = VncClient::new(320, 240);
    for seed in 0..100u32 {
        let _ = c.ingest(&noise(seed, (seed % 128) as usize));
    }
    assert_eq!(c.updates_applied, 0);
}
