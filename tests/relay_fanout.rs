//! e2e relay-tier properties: wire-byte transparency for a from-start
//! lossless leg, shared-cache NACK absorption across participants,
//! late-joiner catch-up without an upstream refresh, and a property test
//! that the shared retransmit cache honors its byte budget.

use adshare::netsim::time::us_to_ticks;
use adshare::prelude::*;
use adshare::rtp::history::RetransmitHistory;
use adshare::rtp::packet::RtpPacket;
use adshare::rtp::RtpHeader;
use proptest::prelude::*;

fn shared_desktop() -> Desktop {
    let mut d = Desktop::new(640, 480);
    let id = d.create_window(1, Rect::new(40, 30, 200, 150), [245, 245, 245, 255]);
    let stamp = Image::filled(48, 32, [20, 120, 220, 255]).unwrap();
    d.draw(id, 12, 10, &stamp);
    d
}

fn ms(delay_us: u64) -> LinkConfig {
    LinkConfig {
        delay_us,
        ..Default::default()
    }
}

/// A single participant behind a from-start lossless relay leg receives the
/// exact datagram sequence a direct AH→participant link would carry: the
/// relay's per-leg sequence rewriting is the identity and forwarded RTCP
/// keeps its in-stream position.
#[test]
fn single_participant_relay_is_wire_transparent() {
    let zero = ms(0);
    // Direct world.
    let mut ah_a = AppHost::new(shared_desktop(), AhConfig::default(), 42);
    let ha = ah_a.attach_udp(1, zero, 7, None);
    let mut p_a = Participant::new(1, Layout::Original, true, 9);
    p_a.request_refresh();
    // Relay world: same AH construction, the relay in the middle.
    let mut ah_b = AppHost::new(shared_desktop(), AhConfig::default(), 42);
    let hb = ah_b.attach_udp(1, zero, 7, None);
    let mut relay = RelayNode::new(RelayConfig::default(), 0);
    let leg = relay.add_leg_raw(None);
    relay.subscribe(0);
    // The relayed participant does NOT request its own refresh: in the
    // relay topology the join refresh toward the AH is the relay's job
    // (`subscribe`), and a leg attached from stream start is already
    // current. (A participant PLI would be answered — correctly — with a
    // locally synthesized catch-up burst, which the direct wire by
    // definition does not carry.)
    let mut p_b = Participant::new(1, Layout::Original, true, 9);

    let mut direct_wire: Vec<Vec<u8>> = Vec::new();
    let mut relayed_wire: Vec<Vec<u8>> = Vec::new();
    let mut now = 0u64;
    for step in 0u32..1_200 {
        now += 5_000;
        let ticks = us_to_ticks(now);
        // The same edits hit both desktops at the same instant.
        if step % 37 == 5 {
            for host in [&mut ah_a, &mut ah_b] {
                let id = host.desktop().wm().shared_records().next().unwrap().id;
                host.desktop_mut().fill(
                    id,
                    Rect::new(step % 80, 10, 24, 18),
                    [step as u8, 120, 200, 255],
                );
            }
        }
        ah_a.step(now);
        ah_b.step(now);
        for dg in ah_a.poll_udp(ha, now) {
            direct_wire.push(dg.clone());
            p_a.handle_datagram(&dg, ticks);
        }
        p_a.tick(ticks);
        if let Some(r) = p_a.take_rtcp() {
            ah_a.handle_rtcp(ha, &r, now);
        }
        for dg in ah_b.poll_udp(hb, now) {
            relay.ingest_upstream(&dg, now);
        }
        relay.step(now);
        if let Some(r) = relay.take_upstream_rtcp() {
            ah_b.handle_rtcp(hb, &r, now);
        }
        for dg in relay.poll_leg(leg, now) {
            relayed_wire.push(dg.clone());
            p_b.handle_datagram(&dg, ticks);
        }
        p_b.tick(ticks);
        if let Some(r) = p_b.take_rtcp() {
            relay.handle_leg_rtcp(leg, &r, now);
        }
    }
    assert!(p_a.synced(), "direct participant synced");
    assert!(p_b.synced(), "relayed participant synced");
    assert!(!direct_wire.is_empty());
    assert_eq!(
        direct_wire.len(),
        relayed_wire.len(),
        "datagram counts diverge"
    );
    for (i, (d, r)) in direct_wire.iter().zip(relayed_wire.iter()).enumerate() {
        assert_eq!(d, r, "datagram {i} of {} differs", direct_wire.len());
    }
}

/// Two participants lose the same downstream datagram; the relay serves the
/// first NACK with one shared-cache lookup and the second from its
/// per-sequence suppression window. Nothing escalates upstream.
#[test]
fn shared_cache_serves_both_nackers_with_one_lookup() {
    let link = ms(5_000);
    let mut sim = RelaySim::new(
        shared_desktop(),
        AhConfig::default(),
        &OfferParams::default(),
        21,
    );
    let relay = sim.add_relay(Upstream::Ah, RelayConfig::default(), link, link, 22);
    let a = sim.add_participant(relay, Layout::Original, link, link, 23);
    let b = sim.add_participant(relay, Layout::Original, link, link, 24);
    assert!(
        sim.run_until(5_000, 4_000, |s| s.converged(a) && s.converged(b)),
        "initial sync"
    );
    let (hits0, misses0) = sim.relay(relay).cache_stats();

    // Drop the next datagram on both legs: the legs carry identical
    // streams, so both participants lose the same upstream sequence.
    let (_, leg_a) = sim.participant_leg(a);
    let (_, leg_b) = sim.participant_leg(b);
    sim.relay_mut(relay)
        .leg_link_mut(leg_a)
        .unwrap()
        .drop_next(1);
    sim.relay_mut(relay)
        .leg_link_mut(leg_b)
        .unwrap()
        .drop_next(1);
    let id = sim.ah.desktop().wm().shared_records().next().unwrap().id;
    sim.ah
        .desktop_mut()
        .fill(id, Rect::new(10, 10, 60, 40), [9, 9, 9, 255]);
    for _ in 0..200 {
        sim.step(5_000);
    }
    // Follow-up traffic so any still-hidden gap surfaces, then settle.
    sim.ah
        .desktop_mut()
        .fill(id, Rect::new(80, 60, 60, 40), [99, 9, 9, 255]);
    assert!(
        sim.run_until(5_000, 2_000, |s| s.converged(a) && s.converged(b)),
        "recovery: divergence {} / {}",
        sim.divergence(a),
        sim.divergence(b)
    );
    let stats = sim.relay(relay).stats();
    let (hits, misses) = sim.relay(relay).cache_stats();
    assert!(
        stats.nacks_absorbed_seqs >= 2,
        "both NACKs answered locally: {stats:?}"
    );
    assert!(
        stats.nacks_suppressed_seqs >= 1,
        "second NACK served from the suppression window: {stats:?}"
    );
    assert_eq!(
        hits - hits0,
        1,
        "exactly one shared-cache lookup for two NACKers"
    );
    assert_eq!(misses, misses0, "no cache misses");
    assert_eq!(
        stats.upstream_nacks(),
        0,
        "downstream loss must not leak upstream: {stats:?}"
    );
}

/// A participant joining mid-session converges pixel-identically from the
/// relay's shadow-state catch-up burst; the AH never sees a PLI for it.
#[test]
fn late_joiner_converges_from_relay_catchup_without_upstream_refresh() {
    let link = ms(5_000);
    let mut sim = RelaySim::new(
        shared_desktop(),
        AhConfig::default(),
        &OfferParams::default(),
        31,
    );
    let relay = sim.add_relay(Upstream::Ah, RelayConfig::default(), link, link, 32);
    let a = sim.add_participant(relay, Layout::Original, link, link, 33);
    assert!(
        sim.run_until(5_000, 4_000, |s| s.converged(a)),
        "initial sync"
    );

    // The desktop evolves well past the initial full state.
    let id = sim.ah.desktop().wm().shared_records().next().unwrap().id;
    for round in 0..6u32 {
        sim.ah.desktop_mut().fill(
            id,
            Rect::new(10 + round * 20, 20, 18, 90),
            [round as u8 * 40, 80, 160, 255],
        );
        for _ in 0..40 {
            sim.step(5_000);
        }
    }
    assert!(
        sim.run_until(5_000, 2_000, |s| s.converged(a)),
        "pre-join settle"
    );
    let plis_before = sim.relay(relay).stats().plis_upstream;

    let b = sim.add_participant(relay, Layout::Original, link, link, 34);
    assert!(
        sim.run_until(5_000, 4_000, |s| s.converged(b)),
        "late joiner: divergence {}",
        sim.divergence(b)
    );
    let stats = sim.relay(relay).stats();
    assert!(
        stats.catchups_served >= 1,
        "join must be served from the shadow state: {stats:?}"
    );
    assert_eq!(
        stats.plis_upstream, plis_before,
        "late join must not trigger an upstream refresh: {stats:?}"
    );
    assert!(sim.converged(a), "existing participant undisturbed");
}

proptest! {
    /// The shared retransmit cache never exceeds either bound, and evicts
    /// oldest-first: what survives is exactly the longest suffix of the
    /// recorded packets that fits both budgets.
    #[test]
    fn retransmit_cache_honors_byte_budget(
        sizes in proptest::collection::vec(1usize..2_000, 1..120),
        max_packets in 1usize..48,
        max_bytes in 64usize..16_384,
    ) {
        let mut h = RetransmitHistory::new(max_packets, max_bytes);
        let pkt = |seq: usize, size: usize| {
            RtpPacket::new(RtpHeader::new(99, seq as u16, 0, 1), vec![0u8; size])
        };
        for (i, &size) in sizes.iter().enumerate() {
            h.record(pkt(i, size));
            prop_assert!(h.len() <= max_packets, "packet cap violated");
            prop_assert!(h.bytes() <= max_bytes, "byte budget violated");
        }
        // Longest fitting suffix, computed independently.
        let wire: Vec<usize> = sizes.iter().map(|&s| pkt(0, s).wire_len()).collect();
        let mut start = sizes.len();
        let mut total = 0usize;
        while start > 0
            && sizes.len() - start < max_packets
            && total + wire[start - 1] <= max_bytes
        {
            start -= 1;
            total += wire[start];
        }
        prop_assert_eq!(h.len(), sizes.len() - start);
        prop_assert_eq!(h.bytes(), total);
        for seq in 0..sizes.len() {
            prop_assert_eq!(
                h.contains(seq as u16),
                seq >= start,
                "seq {} cached iff inside the surviving suffix (start {})",
                seq,
                start
            );
        }
    }
}
