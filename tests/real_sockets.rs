//! The sans-IO stack over *real* loopback sockets: no simulator anywhere.
//! UDP with a genuine PLI round trip, and TCP with RFC 4571 framing.

use std::time::{Duration, Instant};

use adshare::codec::codec::{default_pt, AnyCodec, Codec};
use adshare::codec::CodecKind;
use adshare::netsim::real::{RealTcp, RealTcpListener, RealUdp};
use adshare::prelude::*;
use adshare::remoting::message::{RegionUpdate, RemotingMessage, WindowManagerInfo, WindowRecord};
use adshare::remoting::packetizer::RemotingPacketizer;
use adshare::rtp::framing::frame_into;
use adshare::rtp::rtcp::{decode_compound, RtcpPacket};
use adshare::rtp::session::RtpSender;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEADLINE: Duration = Duration::from_secs(10);

fn ticks(t0: Instant) -> u64 {
    (t0.elapsed().as_micros() as u64) * 9 / 100
}

fn full_state_messages(desktop: &Desktop) -> Vec<RemotingMessage> {
    let png = AnyCodec::new(CodecKind::Png);
    let mut msgs = vec![RemotingMessage::WindowManagerInfo(WindowManagerInfo {
        windows: desktop
            .wm()
            .records()
            .iter()
            .map(|r| WindowRecord {
                window_id: WireWindowId(r.id.0),
                group_id: r.group,
                left: r.rect.left,
                top: r.rect.top,
                width: r.rect.width,
                height: r.rect.height,
            })
            .collect(),
    })];
    for rec in desktop.wm().records() {
        let content = desktop.window_content(rec.id).unwrap();
        msgs.push(RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WireWindowId(rec.id.0),
            payload_type: default_pt::PNG,
            left: rec.rect.left,
            top: rec.rect.top,
            payload: Bytes::from(png.encode(content)),
        }));
    }
    msgs
}

#[test]
fn udp_loopback_with_pli_bootstrap() {
    let mut ah = RealUdp::bind().unwrap();
    let mut viewer_sock = RealUdp::bind().unwrap();
    ah.set_peer(viewer_sock.local_addr().unwrap());
    viewer_sock.set_peer(ah.local_addr().unwrap());

    let mut desktop = Desktop::new(320, 240);
    let win = desktop.create_window(1, Rect::new(20, 20, 160, 120), [245, 245, 245, 255]);
    desktop.fill(win, Rect::new(10, 10, 40, 30), [200, 30, 30, 255]);
    let _ = desktop.take_damage();

    let mut rng = StdRng::seed_from_u64(1);
    let mut pkt = RemotingPacketizer::new(RtpSender::new(0xAB, 99, &mut rng), 1200);
    let mut viewer = Participant::new(1, Layout::Original, true, 2);
    viewer.request_refresh();

    let t0 = Instant::now();
    while t0.elapsed() < DEADLINE {
        if let Some(rtcp) = viewer.take_rtcp() {
            viewer_sock.send(&rtcp).unwrap();
        }
        for dg in ah.recv_all().unwrap() {
            if let Ok(pkts) = decode_compound(&dg) {
                if pkts.iter().any(|p| matches!(p, RtcpPacket::Pli(_))) {
                    for msg in full_state_messages(&desktop) {
                        for p in pkt.packetize(&msg, ticks(t0) as u32).unwrap() {
                            ah.send(&p.encode()).unwrap();
                        }
                    }
                }
            }
        }
        for dg in viewer_sock.recv_all().unwrap() {
            viewer.handle_datagram(&dg, ticks(t0));
        }
        if viewer.synced() && viewer.window_content(win.0) == desktop.window_content(win) {
            assert_eq!(
                viewer.window_content(win.0).unwrap().pixel(10, 10),
                Some([200, 30, 30, 255])
            );
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("UDP loopback session did not converge");
}

#[test]
fn tcp_loopback_with_rfc4571_framing() {
    let listener = RealTcpListener::bind().unwrap();
    let mut client = RealTcp::connect(listener.local_addr().unwrap()).unwrap();
    let t0 = Instant::now();
    let mut server = loop {
        if let Some(s) = listener.accept().unwrap() {
            break s;
        }
        assert!(t0.elapsed() < DEADLINE, "accept timed out");
        std::thread::sleep(Duration::from_millis(1));
    };

    let mut desktop = Desktop::new(320, 240);
    let win = desktop.create_window(1, Rect::new(10, 10, 200, 150), [240, 248, 255, 255]);
    // A second window exercises multi-window WMI over the stream.
    let win2 = desktop.create_window(2, Rect::new(150, 100, 100, 80), [10, 60, 10, 255]);
    let _ = desktop.take_damage();

    let mut rng = StdRng::seed_from_u64(3);
    // TCP: big payload budget, frames split by RFC 4571.
    let mut pkt = RemotingPacketizer::new(RtpSender::new(0xCD, 99, &mut rng), 60_000);
    let mut viewer = Participant::new(2, Layout::Original, false, 4);

    // §4.4: server pushes the state right after connection establishment.
    let mut wire = Vec::new();
    for msg in full_state_messages(&desktop) {
        for p in pkt.packetize(&msg, 0).unwrap() {
            frame_into(&mut wire, &p.encode()).unwrap();
        }
    }
    let mut sent = 0;
    while t0.elapsed() < DEADLINE {
        if sent < wire.len() {
            sent += server.send(&wire[sent..]).unwrap();
        }
        let bytes = client.recv().unwrap();
        if !bytes.is_empty() {
            viewer.handle_stream(&bytes, ticks(t0));
        }
        if viewer.synced()
            && viewer.window_content(win.0) == desktop.window_content(win)
            && viewer.window_content(win2.0) == desktop.window_content(win2)
        {
            assert_eq!(viewer.z_order().len(), 2);
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("TCP loopback session did not converge");
}
