//! The adversarial scenario suite, end to end: four seeded schedules —
//! relay flash crowd, sustained viewer churn, a mid-session bandwidth
//! cliff, and a BFCP control-handoff storm — each judged by the health
//! engine as oracle (no false CRITICAL, no missed degradation), plus
//! domain invariants on the surviving state. Property tests pin down that
//! schedules are deterministic under a fixed seed and that arbitrary
//! schedules never panic the simulator.

use adshare::obs::HealthStatus;
use adshare::prelude::*;
use adshare::session::scenario::{presets, registry_fingerprint};
use proptest::collection::vec;
use proptest::prelude::*;

fn artifact_dir(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// A storm of 100 late joiners inside one refresh interval must be served
/// entirely from the relay's shadow state: one catch-up burst per joiner,
/// no PLI-per-joiner escalation to the AH, no CRITICAL verdict, and every
/// survivor pixel-identical after half the crowd churns back out.
#[test]
fn flash_crowd_is_absorbed_by_relay_catchup() {
    let mut fc = FlashCrowd::new(0xF1A5_C0DE);
    fc.dump_dir = Some(artifact_dir("scenario_flash_crowd"));
    let (outcome, sim) = run_flash_crowd(&fc);
    assert!(
        outcome.passed,
        "oracle violations: {:?}\nlog tail: {:?}",
        outcome.violations,
        outcome.log.iter().rev().take(8).collect::<Vec<_>>()
    );
    let stats = sim.relay(0).stats();
    assert!(
        stats.catchups_served >= fc.joiners as u64,
        "each joiner needs a shadow-state catch-up burst: served {} for {} joiners",
        stats.catchups_served,
        fc.joiners
    );
    assert!(
        stats.plis_upstream <= 4,
        "the crowd must not escalate a PLI per joiner upstream: {}",
        stats.plis_upstream
    );
    assert_eq!(
        outcome.active_participants,
        fc.joiners - fc.joiners / 2,
        "half the crowd left at t={:?}",
        fc.leave_half_at_us
    );
    assert!(outcome.converged, "survivors must end pixel-identical");
}

/// Eight join/leave rounds over mildly lossy links: every joiner's refresh
/// and every leaver's teardown must pass without a CRITICAL page, leaving
/// the three survivors converged.
#[test]
fn sustained_churn_stays_healthy() {
    let mut scn = presets::churn(41);
    scn.dump_dir = Some(artifact_dir("scenario_churn"));
    let (outcome, s) = run_scenario(&scn);
    assert!(
        outcome.passed,
        "oracle violations: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.active_participants, 3, "3 + 8 joins - 8 leaves");
    assert!(!s.is_active(0), "round 0 leaver removed");
    assert!(s.is_active(10), "last joiner still present");
    assert!(outcome.converged, "survivors must end pixel-identical");
}

/// A 6 Mb/s video link collapsing to 2 Mb/s mid-session: the AIMD
/// controller must shift down (rate decreases observed), the oracle must
/// notice the constrained phase (DEGRADED required) without paging
/// (no CRITICAL), the cliff must be answered by a quality-tier downgrade
/// — tier ≥ 1 while constrained, back to tier 0 once the link lifts —
/// and the post-recovery tail must repair losslessly.
#[test]
fn bandwidth_cliff_downshifts_then_repairs() {
    let mut scn = presets::bandwidth_cliff(42);
    scn.dump_dir = Some(artifact_dir("scenario_cliff"));
    assert_eq!(
        scn.tier_expectations.len(),
        2,
        "the preset must demand a downgrade window and a lossless recovery window"
    );
    let (outcome, s) = run_scenario(&scn);
    assert!(
        outcome.passed,
        "oracle violations: {:?}",
        outcome.violations
    );
    assert!(
        outcome.worst >= HealthStatus::Degraded,
        "the cliff must register as degradation"
    );
    let tier_at = |r: &adshare::obs::HealthReport| {
        r.rules
            .iter()
            .find(|rule| rule.name == "tier")
            .map_or(0, |rule| rule.value as i64)
    };
    assert!(
        outcome
            .reports
            .iter()
            .any(|r| r.at_us >= 5_000_000 && r.at_us <= 9_000_000 && tier_at(r) >= 1),
        "constrained phase must ride a lossy tier"
    );
    assert!(
        outcome
            .reports
            .iter()
            .filter(|r| r.at_us >= 17_000_000)
            .all(|r| tier_at(r) == 0),
        "recovered session must return to lossless"
    );
    let handle = s.handle(0);
    assert!(
        s.ah.rate_decreases(handle) > 0,
        "AIMD must down-shift on the cliff"
    );
    assert!(outcome.converged, "quiet tail must end in lossless repair");
}

/// Six viewers fighting over the floor across duplicating links while the
/// chair flips HID status: grants must flow (no stuck revoke), chair and
/// clients must agree on the holder after every step (no double grant),
/// and health must stay below CRITICAL throughout.
#[test]
fn floor_storm_keeps_chair_and_clients_agreeing() {
    let mut scn = presets::floor_storm(43);
    scn.dump_dir = Some(artifact_dir("scenario_floor_storm"));
    let (outcome, mut s) = run_scenario(&scn);
    assert!(
        outcome.passed,
        "oracle violations: {:?}",
        outcome.violations
    );
    let (grants, revokes) = s.ah.chair_mut().stats();
    assert!(
        grants >= 6,
        "the storm must actually hand the floor around: {grants} grants"
    );
    assert!(
        revokes > 0,
        "the 800 ms grant timer must revoke under contention"
    );
    assert!(outcome.converged);
}

/// Same schedule, same seed → byte-identical event log and counter/gauge
/// registry. The churn preset covers joins, leaves and health checks.
#[test]
fn fixed_seed_reruns_are_identical() {
    let scn = presets::churn(77);
    let (a, sa) = run_scenario(&scn);
    let (b, sb) = run_scenario(&scn);
    assert_eq!(a.log, b.log, "event logs diverged under a fixed seed");
    assert_eq!(
        registry_fingerprint(sa.obs()),
        registry_fingerprint(sb.obs()),
        "registry fingerprints diverged under a fixed seed"
    );
    assert_eq!(a.passed, b.passed);
}

// ---------------------------------------------------------------------------
// Property tests: arbitrary schedules.
// ---------------------------------------------------------------------------

/// Raw generated event material: `(at_us, kind, participant, x, y)`,
/// decoded into an [`Action`] by [`decode_event`]. Integer-only because
/// the vendored proptest shim has no float or enum strategies.
type RawEvent = (u64, u8, u8, u32, u32);

fn decode_link(x: u32, y: u32) -> LinkConfig {
    LinkConfig {
        loss: f64::from(x % 80) / 1000.0,       // 0–7.9 %
        duplicate: f64::from(y % 200) / 1000.0, // 0–19.9 %
        delay_us: u64::from(x % 7) * 10_000,    // 0–60 ms
        jitter_us: u64::from(y % 5) * 2_000,    // 0–8 ms
        rate_bps: match x % 3 {
            0 => None,
            1 => Some(200_000 + u64::from(y % 16) * 250_000),
            _ => Some(2_000_000),
        },
        ..LinkConfig::default()
    }
}

fn decode_event(raw: RawEvent, duration_us: u64) -> TimedEvent {
    let (at_raw, kind, participant, x, y) = raw;
    let at_us = at_raw % duration_us;
    let participant = participant as usize % 6;
    let action = match kind % 6 {
        0 => Action::Join {
            count: 1 + (x as usize % 2),
            down: decode_link(x, y),
            up: decode_link(y, x),
            rate_bps: None,
        },
        1 => Action::Leave { participant },
        2 => Action::Link {
            participant,
            steps: vec![LinkStep {
                at_us: u64::from(x) % duration_us,
                cfg: decode_link(y, x),
            }],
        },
        3 => Action::FloorRequest {
            participant,
            via_link: x % 2 == 0,
        },
        4 => Action::FloorRelease {
            participant,
            via_link: y % 2 == 0,
        },
        _ => Action::SetHid {
            status: [
                HidStatus::NotAllowed,
                HidStatus::KeyboardAllowed,
                HidStatus::MouseAllowed,
                HidStatus::AllAllowed,
            ][x as usize % 4],
        },
    };
    TimedEvent { at_us, action }
}

fn build(seed: u64, raw: &[RawEvent], duration_us: u64) -> Scenario {
    let mut scn = Scenario::new("prop", seed, duration_us);
    // The oracle is not under test here; lift the ceiling so wild links
    // can't fail the run, only panic or nondeterminism can.
    scn.expectations = vec![Expectation {
        from_us: 0,
        to_us: duration_us,
        max: HealthStatus::Critical,
        min: None,
    }];
    scn.events = raw.iter().map(|&r| decode_event(r, duration_us)).collect();
    scn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two runs of the same arbitrary schedule under the same seed produce
    /// identical event logs and identical counter/gauge registries.
    #[test]
    fn arbitrary_schedules_are_deterministic(
        seed in 0u64..1 << 32,
        raw in vec((0u64..3_000_000, 0u8..=255, 0u8..=255, any::<u32>(), any::<u32>()), 0..12),
    ) {
        let scn = build(seed, &raw, 2_500_000);
        let (a, sa) = run_scenario(&scn);
        let (b, sb) = run_scenario(&scn);
        prop_assert_eq!(a.log, b.log);
        prop_assert_eq!(registry_fingerprint(sa.obs()), registry_fingerprint(sb.obs()));
    }

    /// Arbitrary schedules — out-of-range participants, leaves before
    /// joins, floor traffic from absent viewers, link cliffs at random
    /// instants — must never panic the simulator or the oracle.
    #[test]
    fn arbitrary_schedules_never_panic(
        seed in 0u64..1 << 32,
        raw in vec((0u64..2_000_000, 0u8..=255, 0u8..=255, any::<u32>(), any::<u32>()), 0..16),
    ) {
        let scn = build(seed, &raw, 1_500_000);
        let (outcome, _s) = run_scenario(&scn);
        prop_assert!(!outcome.reports.is_empty());
    }
}
