//! Layered-quality end-to-end properties: a lossy spell drives a leg down
//! a tier and back, converging pixel-identically after the lossless
//! repair; a from-start lossless leg's wire digest is byte-identical to a
//! no-layers baseline; and tier selection is deterministic under a fixed
//! seed — same schedule, same switches, same wire bytes.

use adshare::layers::TierStats;
use adshare::prelude::*;
use adshare::rate::QualityTier;
use adshare::session::scenario::registry_fingerprint;
use proptest::prelude::*;

fn shared_desktop() -> Desktop {
    let mut d = Desktop::new(640, 480);
    let id = d.create_window(1, Rect::new(40, 30, 220, 160), [245, 245, 245, 255]);
    let stamp = Image::filled(48, 32, [20, 120, 220, 255]).unwrap();
    d.draw(id, 12, 10, &stamp);
    d
}

fn clean() -> LinkConfig {
    LinkConfig {
        delay_us: 5_000,
        ..Default::default()
    }
}

fn layered_cfg() -> RelayConfig {
    RelayConfig {
        layers: Some(LayersConfig::default()),
        ..RelayConfig::default()
    }
}

/// Paint one small damage rect and advance the world `steps × 5 ms`.
fn paint_round(sim: &mut RelaySim, round: u32, steps: usize) {
    let id = sim.ah.desktop().wm().shared_records().next().unwrap().id;
    sim.ah.desktop_mut().fill(
        id,
        Rect::new(round % 120, 8, 16, 16),
        [round as u8, 90, 180, 255],
    );
    for _ in 0..steps {
        sim.step(5_000);
    }
}

/// A lossy spell must push the leg down a tier (frame-boundary switch),
/// and once the link heals the selector must climb back to lossless and
/// the catch-up repair must end pixel-identical to the AH.
fn tier_round_trip(seed: u64, loss: f64) {
    let mut sim = RelaySim::new(
        shared_desktop(),
        AhConfig::default(),
        &OfferParams::default(),
        seed,
    );
    // Start the tier band's estimate just above the lossless bar so a
    // single loss-report decrease (×0.7, one per ~2 s RR) crosses it —
    // the round trip exercises the switch machinery, not AIMD patience.
    let mut layers = LayersConfig::default();
    layers.rate.initial_bps = 2_000_000;
    let cfg = RelayConfig {
        layers: Some(layers),
        ..RelayConfig::default()
    };
    let relay = sim.add_relay(Upstream::Ah, cfg, clean(), clean(), seed + 1);
    let p = sim.add_participant(relay, Layout::Original, clean(), clean(), seed + 2);
    let (_, leg) = sim.participant_leg(p);
    assert!(
        sim.run_until(5_000, 10_000, |s| s.converged(p)),
        "initial sync"
    );
    assert_eq!(sim.relay(relay).leg_tier(leg), Some(QualityTier::Lossless));

    // Cripple the leg; keep painting so loss reports flow.
    sim.relay_mut(relay)
        .leg_link_mut(leg)
        .expect("udp leg")
        .set_schedule(vec![LinkStep {
            at_us: 0,
            cfg: LinkConfig { loss, ..clean() },
        }]);
    // Paint until the loss reports push the leg off lossless (bounded:
    // the exact report that crosses the threshold depends on how much
    // the NACK repairs claw back before each ~2 s RR).
    let mut saw_lossy = false;
    for round in 0..200u32 {
        paint_round(&mut sim, round, 20);
        if sim.relay(relay).leg_tier(leg) != Some(QualityTier::Lossless) {
            saw_lossy = true;
            break;
        }
    }
    assert!(
        saw_lossy,
        "sustained {loss} loss must force a tier downgrade"
    );

    // Heal the link: the estimator grows back, the selector upgrades at a
    // frame boundary, and the catch-up burst repairs the leg losslessly.
    sim.relay_mut(relay)
        .leg_link_mut(leg)
        .expect("udp leg")
        .set_schedule(vec![LinkStep {
            at_us: 0,
            cfg: clean(),
        }]);
    for round in 60..80u32 {
        paint_round(&mut sim, round, 20);
    }
    let recovered = sim.run_until(5_000, 8_000, |s| {
        s.relay(relay).leg_tier(leg) == Some(QualityTier::Lossless) && s.converged(p)
    });
    assert!(
        recovered,
        "leg must return to lossless and repair pixel-identically: tier {:?}, divergence {}",
        sim.relay(relay).leg_tier(leg),
        sim.divergence(p)
    );
    let stats = sim.tier_stats(relay);
    assert!(
        stats.legs[leg].downgrades >= 1,
        "round trip records the downgrade: {stats:?}"
    );
    assert!(
        stats.legs[leg].switches >= 2,
        "round trip needs a switch each way: {stats:?}"
    );
}

#[test]
fn lossy_spell_downgrades_then_repairs_pixel_identically() {
    tier_round_trip(0x001A_7E55, 0.25);
}

/// One deterministic run of a two-leg layered tree under a seeded paint
/// schedule; returns everything tier selection decides.
fn layered_run(seed: u64, schedule: &[(u32, u32)]) -> (TierStats, Vec<u64>, String) {
    let mut sim = RelaySim::new(
        shared_desktop(),
        AhConfig::default(),
        &OfferParams::default(),
        seed,
    );
    let relay = sim.add_relay(Upstream::Ah, layered_cfg(), clean(), clean(), seed + 1);
    let fast = sim.add_participant(relay, Layout::Original, clean(), clean(), seed + 2);
    let slow = sim.add_participant_rate(
        relay,
        Layout::Original,
        clean(),
        clean(),
        seed + 3,
        Some(1_200_000),
    );
    for &(x, c) in schedule {
        let id = sim.ah.desktop().wm().shared_records().next().unwrap().id;
        sim.ah
            .desktop_mut()
            .fill(id, Rect::new(x % 150, 8, 12, 12), [c as u8, 70, 140, 255]);
        for _ in 0..15 {
            sim.step(5_000);
        }
    }
    let digests = (0..sim.relay(relay).leg_count())
        .map(|l| sim.relay(relay).leg_wire_digest(l))
        .collect();
    let _ = (fast, slow);
    let fp = registry_fingerprint(sim.obs());
    (sim.tier_stats(relay), digests, fp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed, same paint schedule → identical tier decisions, wire
    /// digests and metric registries: tier selection adds no hidden
    /// nondeterminism to the relay.
    #[test]
    fn tier_selection_is_deterministic_under_seeded_schedules(
        seed in 0u64..1 << 32,
        schedule in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..12),
    ) {
        let (stats_a, digests_a, fp_a) = layered_run(seed, &schedule);
        let (stats_b, digests_b, fp_b) = layered_run(seed, &schedule);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(digests_a, digests_b);
        prop_assert_eq!(fp_a, fp_b);
    }

    /// A from-start lossless layered leg ships byte-for-byte what a
    /// no-layers relay ships: publishing tiers costs the fast subtree
    /// nothing on the wire.
    #[test]
    fn lossless_tier_wire_digest_matches_no_layers_baseline(
        seed in 0u64..1 << 32,
        rounds in 1u32..24,
    ) {
        let run = |cfg: RelayConfig| {
            let mut sim = RelaySim::new(
                shared_desktop(),
                AhConfig::default(),
                &OfferParams::default(),
                seed,
            );
            let relay = sim.add_relay(Upstream::Ah, cfg, clean(), clean(), seed + 1);
            let p = sim.add_participant(relay, Layout::Original, clean(), clean(), seed + 2);
            for round in 0..rounds {
                paint_round(&mut sim, round, 15);
            }
            let (_, leg) = sim.participant_leg(p);
            (sim.relay(relay).leg_wire_digest(leg), sim.divergence(p))
        };
        let (layered, _) = run(layered_cfg());
        let (baseline, _) = run(RelayConfig::default());
        prop_assert_eq!(layered, baseline);
    }

    /// Tier switches commit at frame boundaries, so after any lossy spell
    /// the upgrade's catch-up repair converges the viewer to the AH's
    /// exact pixels — no partially-lossy frame survives.
    #[test]
    fn tier_switches_decode_pixel_identically_after_repair(
        seed in 0u64..1 << 32,
        loss_pct in 25u32..45,
    ) {
        tier_round_trip(seed, f64::from(loss_pct) / 100.0);
    }
}
