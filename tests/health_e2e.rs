//! End-to-end health engine: a clean link stays OK, a mid-run loss step
//! drives the verdict to DEGRADED, and a tightened SLO forces CRITICAL
//! with an automatic black-box dump that carries the triggering NACK and
//! rate events.

use adshare::obs::{DumpSink, EventKind, HealthConfig, HealthStatus};
use adshare::prelude::*;
use adshare::screen::workload::{Typing, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn link(loss: f64) -> LinkConfig {
    LinkConfig {
        loss,
        delay_us: 20_000,
        ..Default::default()
    }
}

/// Typing session with a loss step applied `step_at_us` after sync; health
/// is checked every ~0.5 s like a supervising loop would.
fn run(
    loss_after: f64,
    cfg_override: Option<HealthConfig>,
    sink: Option<DumpSink>,
    seed: u64,
) -> SimSession {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(30, 30, 300, 220), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), seed);
    {
        let mut engine = s.obs().health.lock().unwrap();
        if let Some(cfg) = cfg_override {
            engine.set_config(cfg);
        }
        if let Some(sink) = sink {
            engine.set_sink(sink);
        }
    }
    let p = s.add_udp_participant(
        Layout::Original,
        link(0.0),
        LinkConfig::default(),
        None,
        seed,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");
    if loss_after > 0.0 {
        let at_us = s.clock.now_us() + 500_000;
        s.set_link_schedule(
            p,
            vec![LinkStep {
                at_us,
                cfg: link(loss_after),
            }],
        );
    }
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    for i in 0..180 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
        if i % 15 == 14 {
            s.obs().health_check(s.clock.now_us());
        }
    }
    s
}

#[test]
fn clean_link_stays_ok() {
    let s = run(0.0, None, None, 41);
    let report = s.obs().health_check(s.clock.now_us());
    assert_eq!(
        report.overall,
        HealthStatus::Ok,
        "clean link not OK:\n{}",
        report.render()
    );
    assert_eq!(s.obs().health.lock().unwrap().dumps(), 0);
}

#[test]
fn loss_step_drives_degraded() {
    let s = run(0.05, None, None, 42);
    let report = s.obs().health_check(s.clock.now_us());
    assert!(
        report.overall >= HealthStatus::Degraded,
        "5% loss did not degrade health:\n{}",
        report.render()
    );
    let loss_rule = report.rules.iter().find(|r| r.name == "loss").unwrap();
    assert!(
        loss_rule.status >= HealthStatus::Degraded,
        "loss rule stayed {} at value {}",
        loss_rule.status.as_str(),
        loss_rule.value
    );
    // The recorder saw the repair traffic that tripped the rule.
    let events = s.obs().recorder.snapshot();
    assert!(
        events.iter().any(|e| e.kind == EventKind::NackReceived),
        "no NACKs recorded under 5% loss"
    );
}

#[test]
fn critical_transition_dumps_blackbox_with_triggering_events() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("health_e2e_blackbox");
    let _ = std::fs::remove_dir_all(&dir);
    // Pull the loss CRITICAL threshold below what a 5% link produces.
    let tight = HealthConfig {
        loss: (0.005, 0.01),
        ..HealthConfig::default()
    };
    let s = run(0.05, Some(tight), Some(DumpSink::Dir(dir.clone())), 43);

    let engine = s.obs().health.lock().unwrap();
    assert!(engine.dumps() >= 1, "CRITICAL transition did not dump");
    let dump = engine.last_dump().expect("dump retained in memory");
    let doc = adshare::obs::json::parse(dump).expect("dump is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("adshare-blackbox/v1")
    );
    assert_eq!(
        doc.get("report")
            .and_then(|r| r.get("overall"))
            .and_then(|o| o.as_str()),
        Some("CRITICAL")
    );
    // The black box carries the events that tripped the rule: NACKs from
    // the lossy link and the rate controller reacting to them.
    let kinds: Vec<&str> = doc
        .get("events")
        .and_then(|e| e.get("events"))
        .and_then(|e| e.as_array())
        .expect("embedded event log")
        .iter()
        .filter_map(|e| e.get("kind").and_then(|k| k.as_str()))
        .collect();
    assert!(
        kinds.contains(&"nack_received"),
        "black box lacks the triggering NACK events: {kinds:?}"
    );
    assert!(
        kinds.contains(&"health_transition"),
        "black box lacks the health transition itself: {kinds:?}"
    );

    // The dump also landed on disk for post-mortem collection (CI uploads
    // this directory as an artifact on failure).
    let on_disk: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("blackbox_") && name.ends_with(".json")
        })
        .collect();
    assert!(!on_disk.is_empty(), "no blackbox_*.json written to {dir:?}");
}

// ---------------------------------------------------------------------------
// Oracle self-tests: the scenario suite (tests/scenarios.rs) trusts the
// health engine as its pass/fail oracle, so each rule gets a synthetic
// trace that must flip exactly that rule — and nothing else. A rule that
// fires on its neighbour's trace would make every scenario verdict suspect.
// ---------------------------------------------------------------------------

use adshare::obs::{FlightRecorder, HealthEngine, HealthReport, Registry};

/// A registry/recorder/engine triple with stock thresholds, plus enough
/// healthy baseline traffic that "everything OK" is a real statement (all
/// denominators are populated) rather than a vacuous one.
fn bare_oracle(now_us: u64) -> (Registry, FlightRecorder, HealthEngine) {
    let registry = Registry::new();
    let recorder = FlightRecorder::new(4096);
    // 100 packets sent, fresh frames delivered, warm cache: all rules OK.
    for i in 0..10u64 {
        let ts = now_us.saturating_sub(1_800_000) + i * 150_000;
        recorder.record(ts, 0, EventKind::RtpTx, 1, 10 << 32);
        recorder.record(ts, 1, EventKind::FrameDelivered, 50_000, i);
        recorder.record(ts, 0, EventKind::CacheHit, 10, 0);
    }
    (
        registry,
        recorder,
        HealthEngine::new(HealthConfig::default()),
    )
}

/// Assert `report` has `expect` as the status of `flipped` and OK
/// everywhere else.
fn assert_only(report: &HealthReport, flipped: &str, expect: HealthStatus) {
    for r in &report.rules {
        if r.name == flipped {
            assert_eq!(
                r.status,
                expect,
                "{} should be {} (value {}):\n{}",
                flipped,
                expect.as_str(),
                r.value,
                report.render()
            );
        } else {
            assert_eq!(
                r.status,
                HealthStatus::Ok,
                "trace for {} also flipped {}:\n{}",
                flipped,
                r.name,
                report.render()
            );
        }
    }
}

#[test]
fn oracle_baseline_trace_is_all_ok() {
    let now = 10_000_000;
    let (registry, recorder, mut engine) = bare_oracle(now);
    let report = engine.check(now, &registry, &recorder);
    assert_eq!(report.overall, HealthStatus::Ok, "{}", report.render());
}

#[test]
fn oracle_loss_trace_flips_only_loss() {
    let now = 10_000_000;
    let (registry, recorder, mut engine) = bare_oracle(now);
    // One NACK message reporting 20 of the 100 baseline packets lost:
    // loss = 0.20 >= 0.15 CRITICAL, while nack_rate stays at 0.5/s (OK).
    recorder.record(now - 100_000, 1, EventKind::NackReceived, 20, 0);
    let report = engine.check(now, &registry, &recorder);
    assert_only(&report, "loss", HealthStatus::Critical);
}

#[test]
fn oracle_nack_storm_trace_flips_only_nack_rate() {
    let now = 10_000_000;
    let (registry, recorder, mut engine) = bare_oracle(now);
    // 41 NACK messages in the 2 s window = 20.5/s >= 20 CRITICAL. Each
    // message reports zero lost sequences so the loss rule stays OK —
    // this is the "chatty repair loop" signature, not bulk loss.
    for i in 0..41u64 {
        recorder.record(
            now - 1_900_000 + i * 45_000,
            2,
            EventKind::NackReceived,
            0,
            0,
        );
    }
    let report = engine.check(now, &registry, &recorder);
    assert_only(&report, "nack_rate", HealthStatus::Critical);
}

#[test]
fn oracle_stale_frame_trace_flips_only_staleness() {
    let now = 10_000_000;
    let (registry, recorder, mut engine) = bare_oracle(now);
    // A burst of deliveries 2.5 s after their damage: p99 over the window
    // (10 fresh baseline + 30 stale) lands on a stale one, >= 2 s CRITICAL.
    for i in 0..30u64 {
        recorder.record(
            now - 400_000 + i * 10_000,
            1,
            EventKind::FrameDelivered,
            2_500_000,
            i,
        );
    }
    let report = engine.check(now, &registry, &recorder);
    assert_only(&report, "staleness_p99", HealthStatus::Critical);
}

#[test]
fn oracle_backlog_trace_flips_only_backlog_skip() {
    let now = 10_000_000;
    let (registry, recorder, mut engine) = bare_oracle(now);
    // A TCP participant so far behind that the freshest-frame policy
    // skipped 11 frames against the 10 baseline sends: ratio 11/21 >= 0.5.
    for i in 0..11u64 {
        recorder.record(
            now - 1_000_000 + i * 50_000,
            3,
            EventKind::BacklogSkip,
            i,
            0,
        );
    }
    let report = engine.check(now, &registry, &recorder);
    assert_only(&report, "backlog_skip", HealthStatus::Critical);
}

#[test]
fn oracle_cold_cache_trace_flips_only_cache_hit() {
    let now = 10_000_000;
    let (registry, recorder, mut engine) = bare_oracle(now);
    // 3000 fresh tiles, 100 cached (baseline): hit rate 100/3100 < 0.05
    // floor with well over `cache_min_tiles` observed. DEGRADED only —
    // the rule has no CRITICAL tier (a cold cache is slow, not down).
    recorder.record(now - 500_000, 0, EventKind::CacheMiss, 3_000, 0);
    let report = engine.check(now, &registry, &recorder);
    assert_only(&report, "cache_hit", HealthStatus::Degraded);
}

#[test]
fn oracle_floor_pin_trace_flips_only_floor_pinned() {
    let now = 10_000_000;
    let (registry, recorder, mut engine) = bare_oracle(now);
    // A participant's estimator gauge sits at the 128 kbit/s floor. The
    // rule measures *duration*, so it needs consecutive checks: engaged
    // at `now`, DEGRADED past 1 s, CRITICAL past 5 s.
    registry
        .gauge("ah.participant.0.rate.rate_bps")
        .set(100_000);
    let report = engine.check(now, &registry, &recorder);
    assert_only(&report, "floor_pinned", HealthStatus::Ok);
    let report = engine.check(now + 1_200_000, &registry, &recorder);
    let pin = report
        .rules
        .iter()
        .find(|r| r.name == "floor_pinned")
        .unwrap();
    assert_eq!(pin.status, HealthStatus::Degraded, "{}", report.render());
    let report = engine.check(now + 6_000_000, &registry, &recorder);
    let pin = report
        .rules
        .iter()
        .find(|r| r.name == "floor_pinned")
        .unwrap();
    assert_eq!(pin.status, HealthStatus::Critical, "{}", report.render());
    // Un-pinning resets the timer the moment the rate recovers.
    registry
        .gauge("ah.participant.0.rate.rate_bps")
        .set(900_000);
    let report = engine.check(now + 6_500_000, &registry, &recorder);
    assert_only(&report, "floor_pinned", HealthStatus::Ok);
}
