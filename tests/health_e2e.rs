//! End-to-end health engine: a clean link stays OK, a mid-run loss step
//! drives the verdict to DEGRADED, and a tightened SLO forces CRITICAL
//! with an automatic black-box dump that carries the triggering NACK and
//! rate events.

use adshare::obs::{DumpSink, EventKind, HealthConfig, HealthStatus};
use adshare::prelude::*;
use adshare::screen::workload::{Typing, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn link(loss: f64) -> LinkConfig {
    LinkConfig {
        loss,
        delay_us: 20_000,
        ..Default::default()
    }
}

/// Typing session with a loss step applied `step_at_us` after sync; health
/// is checked every ~0.5 s like a supervising loop would.
fn run(
    loss_after: f64,
    cfg_override: Option<HealthConfig>,
    sink: Option<DumpSink>,
    seed: u64,
) -> SimSession {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(30, 30, 300, 220), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), seed);
    {
        let mut engine = s.obs().health.lock().unwrap();
        if let Some(cfg) = cfg_override {
            engine.set_config(cfg);
        }
        if let Some(sink) = sink {
            engine.set_sink(sink);
        }
    }
    let p = s.add_udp_participant(
        Layout::Original,
        link(0.0),
        LinkConfig::default(),
        None,
        seed,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");
    if loss_after > 0.0 {
        let at_us = s.clock.now_us() + 500_000;
        s.set_link_schedule(
            p,
            vec![LinkStep {
                at_us,
                cfg: link(loss_after),
            }],
        );
    }
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    for i in 0..180 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
        if i % 15 == 14 {
            s.obs().health_check(s.clock.now_us());
        }
    }
    s
}

#[test]
fn clean_link_stays_ok() {
    let s = run(0.0, None, None, 41);
    let report = s.obs().health_check(s.clock.now_us());
    assert_eq!(
        report.overall,
        HealthStatus::Ok,
        "clean link not OK:\n{}",
        report.render()
    );
    assert_eq!(s.obs().health.lock().unwrap().dumps(), 0);
}

#[test]
fn loss_step_drives_degraded() {
    let s = run(0.05, None, None, 42);
    let report = s.obs().health_check(s.clock.now_us());
    assert!(
        report.overall >= HealthStatus::Degraded,
        "5% loss did not degrade health:\n{}",
        report.render()
    );
    let loss_rule = report.rules.iter().find(|r| r.name == "loss").unwrap();
    assert!(
        loss_rule.status >= HealthStatus::Degraded,
        "loss rule stayed {} at value {}",
        loss_rule.status.as_str(),
        loss_rule.value
    );
    // The recorder saw the repair traffic that tripped the rule.
    let events = s.obs().recorder.snapshot();
    assert!(
        events.iter().any(|e| e.kind == EventKind::NackReceived),
        "no NACKs recorded under 5% loss"
    );
}

#[test]
fn critical_transition_dumps_blackbox_with_triggering_events() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("health_e2e_blackbox");
    let _ = std::fs::remove_dir_all(&dir);
    // Pull the loss CRITICAL threshold below what a 5% link produces.
    let tight = HealthConfig {
        loss: (0.005, 0.01),
        ..HealthConfig::default()
    };
    let s = run(0.05, Some(tight), Some(DumpSink::Dir(dir.clone())), 43);

    let engine = s.obs().health.lock().unwrap();
    assert!(engine.dumps() >= 1, "CRITICAL transition did not dump");
    let dump = engine.last_dump().expect("dump retained in memory");
    let doc = adshare::obs::json::parse(dump).expect("dump is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("adshare-blackbox/v1")
    );
    assert_eq!(
        doc.get("report")
            .and_then(|r| r.get("overall"))
            .and_then(|o| o.as_str()),
        Some("CRITICAL")
    );
    // The black box carries the events that tripped the rule: NACKs from
    // the lossy link and the rate controller reacting to them.
    let kinds: Vec<&str> = doc
        .get("events")
        .and_then(|e| e.get("events"))
        .and_then(|e| e.as_array())
        .expect("embedded event log")
        .iter()
        .filter_map(|e| e.get("kind").and_then(|k| k.as_str()))
        .collect();
    assert!(
        kinds.contains(&"nack_received"),
        "black box lacks the triggering NACK events: {kinds:?}"
    );
    assert!(
        kinds.contains(&"health_transition"),
        "black box lacks the health transition itself: {kinds:?}"
    );

    // The dump also landed on disk for post-mortem collection (CI uploads
    // this directory as an artifact on failure).
    let on_disk: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("blackbox_") && name.ends_with(".json")
        })
        .collect();
    assert!(!on_disk.is_empty(), "no blackbox_*.json written to {dir:?}");
}
