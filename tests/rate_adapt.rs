//! End-to-end rate adaptation (`adshare-rate`): a lossy, bandwidth-capped
//! UDP session whose link halves mid-run. The adaptive controller must
//! back off, degrade quality while constrained, then repair back to a
//! pixel-identical final frame — and spend substantially fewer wire bytes
//! than the fixed-rate baseline that keeps pushing at the original rate.

use adshare::obs::MetricSnapshot;
use adshare::prelude::*;
use adshare::screen::workload::{Video, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Initial link rate; the schedule halves it mid-workload.
const LINK_BPS: u64 = 4_000_000;

fn link(rate_bps: u64) -> LinkConfig {
    LinkConfig {
        loss: 0.02,
        duplicate: 0.005,
        delay_us: 15_000,
        jitter_us: 2_000,
        rate_bps: Some(rate_bps),
        ..Default::default()
    }
}

struct Outcome {
    /// Wire bytes at the instant the workload stopped (equal horizon for
    /// both modes — the honest basis for the savings comparison).
    wire_bytes: u64,
    retransmits: u64,
    /// Time from workload stop to pixel-identical convergence, `None` if
    /// the run never got there within the allotted simulation time.
    settle_us: Option<u64>,
    rate_decreases: u64,
}

fn run(adaptive: bool, seed: u64) -> Outcome {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 320, 240), [245, 245, 245, 255]);
    let cfg = AhConfig {
        adaptive_rate: adaptive.then(|| RateConfig {
            initial_bps: LINK_BPS,
            // Degrade below ~2.5 Mb/s so the halved link forces a lossy
            // tier (and therefore a repair pass before convergence).
            lossless_above_bps: 2_500_000,
            ..RateConfig::default()
        }),
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, seed);
    let p = s.add_udp_participant(
        Layout::Original,
        link(LINK_BPS),
        LinkConfig::default(),
        Some(LINK_BPS),
        seed ^ 0x51c,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");

    // The link halves 1 s into the workload.
    let halve_at = s.clock.now_us() + 1_000_000;
    s.set_link_schedule(
        p,
        vec![LinkStep {
            at_us: halve_at,
            cfg: link(LINK_BPS / 2),
        }],
    );

    // 4 s of 30 fps video spanning the bandwidth step.
    let mut wl = Video::new(w, Rect::new(20, 20, 240, 180));
    let mut rng = StdRng::seed_from_u64(seed ^ 7);
    for _ in 0..120 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let wire_bytes = s.ah.participant_bytes_sent(s.handle(p));
    let retransmits = s.ah.stats().retransmits;
    let settle_us = s.run_until(10_000, 60_000_000, |s| s.converged(p));

    let snap = s.obs().registry.snapshot();
    if adaptive {
        let rate = match snap.get("ah.participant.0.rate.rate_bps") {
            Some(MetricSnapshot::Gauge(v)) => *v,
            other => panic!("rate gauge missing or mistyped: {other:?}"),
        };
        assert!(rate > 0, "adaptive controller must export its estimate");
        assert!(
            snap.get("ah.participant.0.rate.superseded").is_some(),
            "supersede counter must be exported"
        );
    }
    Outcome {
        wire_bytes,
        retransmits,
        settle_us,
        rate_decreases: s.ah.rate_decreases(s.handle(p)),
    }
}

#[test]
fn adaptive_converges_pixel_identical_with_fewer_wire_bytes() {
    let fixed = run(false, 21);
    let adaptive = run(true, 21);
    eprintln!(
        "wire bytes: adaptive={} fixed={} ({:.0}% saved); retransmits: {} vs {}; \
         decreases={}; settle: {:?} vs {:?}",
        adaptive.wire_bytes,
        fixed.wire_bytes,
        100.0 * (1.0 - adaptive.wire_bytes as f64 / fixed.wire_bytes as f64),
        adaptive.retransmits,
        fixed.retransmits,
        adaptive.rate_decreases,
        adaptive.settle_us,
        fixed.settle_us,
    );
    // The headline acceptance: the adaptive sender reaches the exact final
    // frame and spends ≥30% fewer bytes over the identical workload.
    assert!(
        adaptive.settle_us.is_some(),
        "adaptive run must converge pixel-identical after the workload"
    );
    assert!(
        (adaptive.wire_bytes as f64) <= 0.7 * fixed.wire_bytes as f64,
        "adaptive must save ≥30% wire bytes: adaptive={} fixed={}",
        adaptive.wire_bytes,
        fixed.wire_bytes
    );
    // Backing off below the link rate keeps recovery traffic bounded: no
    // more retransmissions than the baseline overdriving the halved link.
    assert!(
        adaptive.retransmits <= fixed.retransmits,
        "adaptive retransmits {} must not exceed fixed {}",
        adaptive.retransmits,
        fixed.retransmits
    );
    // The congestion controller actually reacted to the halved link.
    assert!(
        adaptive.rate_decreases > 0,
        "bandwidth halving must trigger multiplicative decreases"
    );
    // The repair pass is prompt once the source goes quiet.
    assert!(
        adaptive.settle_us.unwrap() < 30_000_000,
        "adaptive settle took {} µs",
        adaptive.settle_us.unwrap()
    );
}
