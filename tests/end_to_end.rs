//! End-to-end integration: the full Figure 1 architecture — AH capture →
//! encode → RTP → network → participant decode → render — over simulated
//! TCP, UDP and multicast transports.

use adshare::prelude::*;

fn desktop_with_windows() -> (Desktop, Vec<adshare::screen::wm::WindowId>) {
    let mut d = Desktop::new(1280, 1024);
    let a = d.create_window(1, Rect::new(220, 150, 350, 450), [240, 240, 240, 255]);
    let c = d.create_window(2, Rect::new(850, 320, 160, 150), [200, 220, 240, 255]);
    let b = d.create_window(1, Rect::new(450, 400, 350, 300), [250, 250, 250, 255]);
    (d, vec![a, c, b])
}

#[test]
fn tcp_participant_receives_initial_state_and_converges() {
    let (desktop, _) = desktop_with_windows();
    let mut s = SimSession::new(desktop, AhConfig::default(), 1);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        2,
    );
    let t = s.run_until(10_000, 10_000_000, |s| s.converged(p));
    assert!(t.is_some(), "TCP participant must converge");
    assert!(s.participant(p).synced());
    assert_eq!(s.participant(p).z_order().len(), 3);
}

#[test]
fn udp_participant_syncs_via_pli() {
    let (desktop, _) = desktop_with_windows();
    let mut s = SimSession::new(desktop, AhConfig::default(), 3);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        4,
    );
    let t = s.run_until(10_000, 10_000_000, |s| s.converged(p));
    assert!(
        t.is_some(),
        "UDP participant must converge after its join PLI"
    );
    assert!(s.participant(p).stats().plis_sent >= 1);
}

#[test]
fn live_updates_propagate() {
    let (desktop, wins) = desktop_with_windows();
    let mut s = SimSession::new(desktop, AhConfig::default(), 5);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        6,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("initial sync");

    // Draw into window A and verify the change arrives.
    let patch = Image::filled(40, 30, [255, 0, 0, 255]).unwrap();
    s.ah.desktop_mut().draw(wins[0], 10, 20, &patch);
    let t = s.run_until(10_000, 10_000_000, |s| s.converged(p));
    assert!(t.is_some(), "update must propagate");
    let content = s.participant(p).window_content(wins[0].0).unwrap();
    assert_eq!(content.pixel(10, 20), Some([255, 0, 0, 255]));
    assert_eq!(content.pixel(49, 49), Some([255, 0, 0, 255]));
}

#[test]
fn window_move_is_cheap_on_the_wire() {
    let (desktop, wins) = desktop_with_windows();
    let mut s = SimSession::new(desktop, AhConfig::default(), 7);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        8,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("initial sync");

    let before = s.ah.participant_bytes_sent(s.handle(p));
    s.ah.desktop_mut().move_window(wins[1], 900, 500);
    s.run_until(10_000, 5_000_000, |s| {
        s.participant(p).window_ah_rect(wins[1].0) == Some(Rect::new(900, 500, 160, 150))
    })
    .expect("geometry update must arrive");
    let cost = s.ah.participant_bytes_sent(s.handle(p)) - before;
    // A relocation is one WindowManagerInfo (3 windows × 20 B + headers),
    // far below re-sending the 160×150 window's pixels.
    assert!(cost < 300, "window move cost {cost} bytes");
    assert!(s.converged(p), "content must be retained across the move");
}

#[test]
fn multicast_members_all_converge_with_single_egress() {
    let (desktop, _) = desktop_with_windows();
    let mut s = SimSession::new(desktop, AhConfig::default(), 9);
    let members: Vec<usize> = (0..4)
        .map(|i| {
            s.add_multicast_participant(
                Layout::Original,
                LinkConfig::default(),
                LinkConfig::default(),
                100 + i,
            )
        })
        .collect();
    let t = s.run_until(10_000, 20_000_000, |s| {
        members.iter().all(|&m| s.converged(m))
    });
    assert!(t.is_some(), "all multicast members converge");
    // Egress is shared: equals any single member's count.
    let e0 = s.ah.participant_bytes_sent(s.handle(members[0]));
    let e1 = s.ah.participant_bytes_sent(s.handle(members[1]));
    assert_eq!(e0, e1, "multicast egress counted once for the group");
}

#[test]
fn scrolling_workload_stays_consistent() {
    use adshare::screen::workload::{Scrolling, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(50, 50, 300, 220), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 11);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        12,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("initial sync");

    let mut wl = Scrolling::new(w, 1);
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..20 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(30_000);
    }
    let t = s.run_until(10_000, 10_000_000, |s| s.converged(p));
    assert!(t.is_some(), "scrolled content must converge exactly");
    assert!(
        s.participant(p).stats().moves_applied > 0,
        "MoveRectangle used for scrolls"
    );
}

#[test]
fn bursty_scrolling_stays_consistent() {
    // Regression: several scrolls in one capture interval mean the queued
    // MoveRectangles all replay before the batched RegionUpdate. Damage
    // recorded before a later scroll must be translated along with the
    // content, or intermediate bands go stale (this exact bug shipped once:
    // a 3-line terminal burst left divergence ~14 forever).
    use adshare::screen::workload::{Terminal, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 280, 400), [255, 250, 240, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 23);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        24,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("sync");

    let mut wl = Terminal::new(w, 80, 3); // bursts of 3 scrolled lines
    let mut rng = StdRng::seed_from_u64(25);
    for _ in 0..40 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    let t = s.run_until(10_000, 20_000_000, |s| s.converged(p));
    assert!(
        t.is_some(),
        "bursty scrolls must converge exactly (divergence {})",
        s.divergence(p)
    );
    assert!(
        s.participant(p).stats().moves_applied > 0,
        "MoveRectangles were used"
    );
}

#[test]
fn typing_workload_end_to_end_over_udp() {
    use adshare::screen::workload::{Typing, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(50, 50, 280, 210), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 15);
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        16,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("initial sync");

    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..30 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(30_000);
    }
    let t = s.run_until(10_000, 10_000_000, |s| s.converged(p));
    assert!(t.is_some(), "typed content must converge");
    assert!(s.participant(p).stats().regions_applied > 10);
}

#[test]
fn window_close_closes_at_participant() {
    let (desktop, wins) = desktop_with_windows();
    let mut s = SimSession::new(desktop, AhConfig::default(), 19);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        20,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("initial sync");
    s.ah.desktop_mut().close_window(wins[2]);
    let t = s.run_until(10_000, 5_000_000, |s| s.participant(p).z_order().len() == 2);
    assert!(
        t.is_some(),
        "participant MUST close windows absent from the WMI"
    );
    assert!(s.participant(p).window_content(wins[2].0).is_none());
}

#[test]
fn event_driven_stepping_matches_fixed_step() {
    // The event-driven stepper must reach the same converged state as
    // fixed-dt polling, in far fewer steps across idle stretches.
    let build = || {
        let (desktop, wins) = desktop_with_windows();
        let mut s = SimSession::new(desktop, AhConfig::default(), 41);
        let p = s.add_tcp_participant(
            Layout::Original,
            TcpConfig::default(),
            LinkConfig::default(),
            42,
        );
        (s, p, wins)
    };

    // Fixed-dt baseline: 1 ms ticks.
    let (mut fixed, pf, _) = build();
    let t_fixed = fixed
        .run_until(1_000, 10_000_000, |s| s.converged(pf))
        .expect("fixed converges");
    let steps_fixed = t_fixed / 1_000;

    // Event-driven: 33 ms capture interval, jumps across idle time.
    let (mut eventful, pe, _) = build();
    let (t_event, steps_event) = eventful
        .run_until_event_driven(33_000, 10_000_000, |s| s.converged(pe))
        .expect("event-driven converges");
    assert!(eventful.converged(pe));
    assert!(
        steps_event < steps_fixed,
        "event-driven should take fewer steps: {steps_event} vs {steps_fixed}"
    );
    // Both reach consistency within the same order of simulated time.
    assert!(t_event < 10 * t_fixed.max(1), "{t_event} vs {t_fixed}");
}

#[test]
fn in_stream_pointer_model_paints_cursor_pixels() {
    // §4.2/§5.2.4: the AH may composite the pointer into RegionUpdates
    // instead of sending MousePointerInfo. Participants then see cursor
    // pixels inside window content and receive no pointer messages.
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(50, 40, 300, 220), [250, 250, 250, 255]);
    let cfg = AhConfig {
        pointer: PointerPolicy::InStream,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 31);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        32,
    );
    s.run_until(10_000, 10_000_000, |s| s.participant(p).synced())
        .expect("sync");
    for _ in 0..50 {
        s.step(10_000);
    }
    // Move the pointer over the window: its pixels must reach the viewer
    // inside a RegionUpdate.
    s.ah.desktop_mut().pointer_mut().move_to(150, 120); // window-local (100, 80)
    s.run_until(10_000, 10_000_000, |s| {
        s.participant(p)
            .window_content(w.0)
            .and_then(|c| c.pixel(100, 80))
            .map(|px| px == [0, 0, 0, 255]) // cursor outline
            .unwrap_or(false)
    })
    .expect("cursor pixels composited into the stream");
    assert_eq!(
        s.participant(p).stats().pointers_applied,
        0,
        "in-stream model sends no MousePointerInfo"
    );
    assert_eq!(s.participant(p).pointer(), None);
}

#[test]
fn lossy_codec_session_converges_approximately() {
    let (desktop, _) = desktop_with_windows();
    let cfg = AhConfig {
        codec: CodecKind::Dct,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(desktop, cfg, 21);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        22,
    );
    let t = s.run_until(10_000, 10_000_000, |s| s.divergence(p) < 6.0);
    assert!(
        t.is_some(),
        "DCT session approaches the source, divergence bounded"
    );
}
