//! Loss recovery over UDP (draft §4.3, §5.3): Generic NACK retransmission
//! and PLI full refresh, exercised through the full simulated stack.

use adshare::prelude::*;

fn small_desktop() -> (Desktop, adshare::screen::wm::WindowId) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 240, 180), [245, 245, 245, 255]);
    (d, w)
}

fn lossy(loss: f64) -> LinkConfig {
    LinkConfig {
        loss,
        delay_us: 15_000,
        jitter_us: 3_000,
        ..Default::default()
    }
}

#[test]
fn nack_recovery_converges_under_5_percent_loss() {
    let (desktop, w) = small_desktop();
    let mut s = SimSession::new(desktop, AhConfig::default(), 1);
    let p = s.add_udp_participant(
        Layout::Original,
        lossy(0.05),
        LinkConfig::default(),
        None,
        2,
    );
    s.run_until(10_000, 30_000_000, |s| s.converged(p))
        .expect("initial sync despite loss");

    // Sustained activity under loss.
    use adshare::screen::workload::{Typing, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..50 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(30_000);
    }
    s.run_until(10_000, 30_000_000, |s| s.converged(p))
        .expect("converges under 5% loss");
    let stats = s.participant(p).stats();
    assert!(stats.nacks_sent > 0, "loss must trigger NACKs");
    assert!(s.ah.stats().retransmits > 0, "AH must answer NACKs");
}

#[test]
fn pli_fallback_when_retransmissions_disabled() {
    let (desktop, w) = small_desktop();
    let cfg = AhConfig {
        retransmissions: false,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(desktop, cfg, 5);
    let p = s.add_udp_participant(
        Layout::Original,
        lossy(0.05),
        LinkConfig::default(),
        None,
        6,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");

    use adshare::screen::workload::{Typing, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(30_000);
    }
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("PLI full refresh recovers without NACK support");
    assert_eq!(s.ah.stats().retransmits, 0, "no retransmissions configured");
    assert!(s.participant(p).stats().plis_sent >= 1);
}

#[test]
fn heavy_loss_still_converges() {
    let (desktop, _) = small_desktop();
    let mut s = SimSession::new(desktop, AhConfig::default(), 9);
    let p = s.add_udp_participant(
        Layout::Original,
        lossy(0.20),
        LinkConfig::default(),
        None,
        10,
    );
    s.run_until(10_000, 120_000_000, |s| s.converged(p))
        .expect("20% loss: recovery machinery must still reach consistency");
}

#[test]
fn late_joiner_syncs_into_running_session() {
    let (desktop, w) = small_desktop();
    let mut s = SimSession::new(desktop, AhConfig::default(), 11);
    let p1 = s.add_udp_participant(
        Layout::Original,
        lossy(0.0),
        LinkConfig::default(),
        None,
        12,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p1))
        .expect("first participant syncs");

    // Activity happens before the second participant exists.
    use adshare::screen::workload::{Scrolling, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut wl = Scrolling::new(w, 1);
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..15 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(30_000);
    }
    // Late joiner: must get WMI + full state purely via its join PLI.
    let p2 = s.add_udp_participant(
        Layout::Original,
        lossy(0.0),
        LinkConfig::default(),
        None,
        14,
    );
    let t = s.run_until(10_000, 20_000_000, |s| s.converged(p2));
    assert!(
        t.is_some(),
        "late joiner converges from PLI-triggered refresh"
    );
    assert!(s.participant(p2).stats().plis_sent >= 1);
}

#[test]
fn reordering_alone_needs_no_recovery() {
    // Jitter-induced reordering must be absorbed by the reorder buffer:
    // no PLIs beyond the join one, no decode errors.
    let (desktop, w) = small_desktop();
    let cfg = LinkConfig {
        loss: 0.0,
        delay_us: 10_000,
        jitter_us: 30_000,
        ..Default::default()
    };
    let mut s = SimSession::new(desktop, AhConfig::default(), 15);
    let p = s.add_udp_participant(Layout::Original, cfg, LinkConfig::default(), None, 16);
    s.run_until(10_000, 30_000_000, |s| s.converged(p))
        .expect("sync under jitter");

    use adshare::screen::workload::{Video, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut wl = Video::new(w, Rect::new(10, 10, 120, 90));
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..20 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(40_000);
    }
    s.run_until(10_000, 30_000_000, |s| s.converged(p))
        .expect("converges under jitter");
    let stats = s.participant(p).stats();
    assert_eq!(stats.decode_errors, 0);
    assert!(
        stats.plis_sent <= 3,
        "nothing beyond join/resync PLIs, got {}",
        stats.plis_sent
    );
}
