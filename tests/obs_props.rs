//! Property tests for the observability layer: the flight-recorder ring
//! under concurrent wraparound, and Chrome-trace export validity for
//! arbitrary trace/event mixes.

use adshare::obs::{
    chrome_trace_json, validate_chrome_trace, CompletedTrace, Event, FlightRecorder, FrameTrace,
    StageLatencies, ACTOR_AH, EVENT_KINDS,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Deterministic payload derived from (actor, index): a surviving slot is
/// torn exactly when its `b` disagrees with this function of its other
/// fields.
fn payload(actor: u16, i: u64) -> u64 {
    ((actor as u64) << 48) ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn arb_trace() -> impl Strategy<Value = CompletedTrace> {
    (
        (any::<u32>(), any::<u16>(), 0u64..1 << 40, 0u64..1 << 20),
        (
            0u64..1 << 20,
            0u64..1 << 20,
            0u64..1 << 20,
            0u64..1 << 20,
            0u64..1 << 20,
        ),
        (any::<u16>(), 1u32..64, 0u64..1 << 24),
    )
        .prop_map(
            |(
                (ssrc, seq, base, damage_us),
                (encode_us, fragment_us, transport_us, decode_us, extra),
                (window_id, fragments, bytes),
            )| {
                let sent_at_us = base + damage_us;
                CompletedTrace {
                    ssrc,
                    seq,
                    delivered_at_us: sent_at_us + transport_us + extra,
                    trace: FrameTrace {
                        window_id,
                        damage_at_us: base,
                        sent_at_us,
                        encode_wall_us: encode_us,
                        fragment_wall_us: fragment_us,
                        fragments,
                        bytes,
                    },
                    stages: StageLatencies {
                        damage_us,
                        encode_us,
                        fragment_us,
                        transport_us,
                        decode_us,
                        total_us: damage_us + encode_us + fragment_us + transport_us + decode_us,
                    },
                }
            },
        )
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        (0u64..1 << 40, 0u64..1 << 40),
        (any::<u8>(), 0u16..6, any::<u64>(), any::<u64>()),
    )
        .prop_map(|((seq, ts_us), (kind, actor, a, b))| Event {
            seq,
            ts_us,
            actor: if actor == 5 { ACTOR_AH } else { actor },
            kind: EVENT_KINDS[(kind as usize) % EVENT_KINDS.len()],
            a,
            b,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writer threads race into a ring small enough to wrap many times.
    /// Every surviving event must be internally consistent (no torn slots),
    /// sequence numbers strictly increasing, and the total count exact.
    #[test]
    fn ring_wraparound_never_tears(
        cap_pow in 3u32..8,
        threads in 2usize..5,
        per in 50usize..400,
    ) {
        let rec = FlightRecorder::new(1usize << cap_pow);
        std::thread::scope(|s| {
            for t in 0..threads {
                let rec = &rec;
                s.spawn(move || {
                    let actor = t as u16;
                    for i in 0..per as u64 {
                        let kind = EVENT_KINDS[(i as usize) % EVENT_KINDS.len()];
                        rec.record(i, actor, kind, i, payload(actor, i));
                    }
                });
            }
        });
        let total = (threads * per) as u64;
        prop_assert_eq!(rec.recorded(), total);
        let snap = rec.snapshot();
        prop_assert!(snap.len() <= rec.capacity());
        for w in snap.windows(2) {
            prop_assert!(w[0].seq < w[1].seq, "seqs not monotonic: {} then {}", w[0].seq, w[1].seq);
        }
        for e in &snap {
            prop_assert!(e.seq < total);
            prop_assert!((e.actor as usize) < threads);
            prop_assert_eq!(e.ts_us, e.a);
            prop_assert_eq!(e.kind, EVENT_KINDS[(e.a as usize) % EVENT_KINDS.len()]);
            prop_assert_eq!(e.b, payload(e.actor, e.a), "torn slot survived: {:?}", e);
        }
    }

    /// Any mix of completed traces and recorder events exports to a
    /// Chrome-trace document the structural validator accepts: it parses,
    /// every B has its E per (pid, tid), and durations are non-negative.
    #[test]
    fn chrome_trace_export_always_validates(
        traces in vec(arb_trace(), 0..12),
        events in vec(arb_event(), 0..40),
    ) {
        let json = chrome_trace_json(&traces, &events);
        let verdict = validate_chrome_trace(&json);
        prop_assert!(verdict.is_ok(), "export failed validation: {:?}", verdict);
    }
}
