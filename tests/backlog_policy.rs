//! Draft §7: "Application hosts shouldn't blindly send every screen update
//! ... they should monitor the state of their TCP transmission buffers ...
//! and only send the most recent screen data when there is no backlog.
//! This will prevent screen latency for rapidly-changing images."
//!
//! These tests verify both the mechanism (backlog gating) and the outcome
//! (bounded staleness on a slow link) against the naive-sender ablation.

use adshare::prelude::*;
use adshare::screen::workload::{Video, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn slow_link() -> TcpConfig {
    TcpConfig {
        rate_bps: 1_000_000,
        delay_us: 20_000,
        send_buf: 32 * 1024,
    }
}

/// Run a video workload over a constrained TCP link and report
/// (AH bytes offered, final divergence after a settle period, updates sent).
fn run(policy: bool, seconds: u64) -> (u64, f64, u64) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(40, 40, 320, 240), [245, 245, 245, 255]);
    let cfg = AhConfig {
        tcp_freshness_policy: policy,
        ..AhConfig::default()
    };
    let mut s = SimSession::new(d, cfg, 42);
    let p = s.add_tcp_participant(Layout::Original, slow_link(), LinkConfig::default(), 43);
    s.run_until(10_000, 20_000_000, |s| s.converged(p))
        .expect("initial sync");

    let mut wl = Video::new(w, Rect::new(20, 20, 280, 200));
    let mut rng = StdRng::seed_from_u64(44);
    // ~30 fps of photographic change: far beyond 1 Mbit/s of PNG.
    for _ in 0..(seconds * 30) {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    // Stop changing; give both senders a settle window, then measure how
    // long until the viewer sees the final frame.
    let settle = s
        .run_until(10_000, 60_000_000, |s| s.converged(p))
        .map(|t| t as f64)
        .unwrap_or(f64::MAX);
    let sent = s.ah.participant_bytes_sent(s.handle(p));
    (sent, settle, s.ah.stats().region_msgs)
}

#[test]
fn policy_bounds_catchup_time_after_burst() {
    let (_, settle_on, _) = run(true, 3);
    let (_, settle_off, _) = run(false, 3);
    // With the policy, the pending state is one freshest frame: catch-up is
    // quick. Without it, every stale frame queued in user space must drain
    // over the slow link first.
    assert!(
        settle_on < settle_off,
        "freshest-frame policy should settle faster: {settle_on} vs {settle_off} µs"
    );
    assert!(
        settle_on < 10_000_000.0,
        "policy settle time bounded, got {settle_on} µs"
    );
}

#[test]
fn policy_sends_fewer_but_fresher_updates() {
    let (bytes_on, _, updates_on) = run(true, 2);
    let (bytes_off, _, updates_off) = run(false, 2);
    assert!(
        updates_on < updates_off,
        "policy skips stale frames: {updates_on} vs {updates_off} updates"
    );
    assert!(
        bytes_on < bytes_off,
        "policy offers less data to the link: {bytes_on} vs {bytes_off} bytes"
    );
}

#[test]
fn fast_link_unaffected_by_policy() {
    // On an uncongested link the policy never engages: both variants
    // deliver every update.
    let fast = TcpConfig {
        rate_bps: 1_000_000_000,
        delay_us: 1_000,
        send_buf: 1 << 20,
    };
    for policy in [true, false] {
        let mut d = Desktop::new(640, 480);
        let w = d.create_window(1, Rect::new(40, 40, 200, 150), [245, 245, 245, 255]);
        let cfg = AhConfig {
            tcp_freshness_policy: policy,
            ..AhConfig::default()
        };
        let mut s = SimSession::new(d, cfg, 7);
        let p = s.add_tcp_participant(Layout::Original, fast, LinkConfig::default(), 8);
        s.run_until(5_000, 10_000_000, |s| s.converged(p))
            .expect("sync");
        let mut wl = Video::new(w, Rect::new(10, 10, 100, 80));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            wl.tick(s.ah.desktop_mut(), &mut rng);
            s.step(33_333);
        }
        let t = s.run_until(5_000, 5_000_000, |s| s.converged(p));
        assert!(t.is_some(), "policy={policy}: fast link converges promptly");
    }
}
