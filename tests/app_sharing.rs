//! Application sharing vs desktop sharing (draft §2): "In application
//! sharing, the AH distributes screen updates if and only if they belong to
//! the shared application's windows." Non-shared windows stay on the AH;
//! child windows of the shared application follow it; toggling sharing
//! transmits full content.

use adshare::prelude::*;

fn mixed_desktop() -> (
    Desktop,
    adshare::screen::wm::WindowId,
    adshare::screen::wm::WindowId,
) {
    let mut d = Desktop::new(800, 600);
    // The shared application's window (group 1).
    let app = d.create_window(1, Rect::new(60, 50, 300, 220), [250, 250, 250, 255]);
    // A private window — mail client, say (group 2, not shared).
    let private = d.create_window_with_sharing(
        2,
        Rect::new(300, 200, 250, 180),
        [255, 230, 200, 255],
        false,
    );
    (d, app, private)
}

#[test]
fn unshared_window_never_reaches_participants() {
    let (desktop, app, private) = mixed_desktop();
    let mut s = SimSession::new(desktop, AhConfig::default(), 1);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        2,
    );
    s.run_until(10_000, 10_000_000, |s| s.participant(p).synced())
        .expect("sync");
    // Settle fully.
    for _ in 0..50 {
        s.step(10_000);
    }
    let v = s.participant(p);
    assert_eq!(
        v.z_order(),
        &[app.0],
        "only the shared window exists remotely"
    );
    assert!(v.window_content(private.0).is_none());

    // Activity in the private window must not generate any media traffic
    // (periodic 28-byte RTCP sender reports still flow — they carry clock
    // anchors, never pixels).
    let before_bytes = s.ah.participant_bytes_sent(s.handle(p));
    let before = s.ah.stats();
    let secret = Image::filled(100, 50, [255, 0, 0, 255]).unwrap();
    s.ah.desktop_mut().draw(private, 10, 10, &secret);
    s.ah.desktop_mut()
        .scroll(private, Rect::new(0, 0, 250, 180), 0, -10);
    for _ in 0..100 {
        s.step(10_000);
    }
    let after = s.ah.stats();
    assert_eq!(
        after.region_msgs, before.region_msgs,
        "no RegionUpdates for private window"
    );
    assert_eq!(
        after.move_msgs, before.move_msgs,
        "no MoveRectangles for private window"
    );
    assert_eq!(after.wmi_msgs, before.wmi_msgs, "no WMI churn");
    let bytes = s.ah.participant_bytes_sent(s.handle(p)) - before_bytes;
    // Each framed SR compound (SR + SDES CNAME) is ~60 bytes.
    let sr_bytes = (after.sr_sent - before.sr_sent) * 80;
    assert!(
        bytes <= sr_bytes,
        "private window leaked {bytes} bytes (only {sr_bytes} of RTCP expected)"
    );
}

#[test]
fn hip_events_into_unshared_windows_rejected() {
    let (desktop, _app, private) = mixed_desktop();
    let mut s = SimSession::new(desktop, AhConfig::default(), 3);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        4,
    );
    s.run_until(10_000, 10_000_000, |s| s.participant(p).synced())
        .expect("sync");
    // A malicious participant guesses the private window's id and aims a
    // click inside its (unknown to it) bounds.
    s.send_hip(
        p,
        &HipMessage::MousePressed {
            window_id: WireWindowId(private.0),
            button: MouseButton::Left,
            left: 350,
            top: 250,
        },
    );
    for _ in 0..30 {
        s.step(10_000);
    }
    assert_eq!(s.ah.stats().hip_injected, 0);
    assert_eq!(s.ah.stats().hip_rejected, 1);
}

#[test]
fn sharing_toggle_transmits_full_content_then_closes() {
    let (desktop, app, private) = mixed_desktop();
    let mut s = SimSession::new(desktop, AhConfig::default(), 5);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        6,
    );
    s.run_until(10_000, 10_000_000, |s| s.participant(p).synced())
        .expect("sync");
    for _ in 0..50 {
        s.step(10_000);
    }

    // Share the second window: it must appear with its full content.
    s.ah.desktop_mut().set_window_shared(private, true);
    s.run_until(10_000, 10_000_000, |s| {
        s.participant(p).window_content(private.0) == s.ah.desktop().window_content(private)
    })
    .expect("newly shared window transmitted in full");
    assert_eq!(s.participant(p).z_order().len(), 2);

    // Un-share it again: the next WMI omits it and the participant MUST
    // close it (§5.2.1).
    s.ah.desktop_mut().set_window_shared(private, false);
    s.run_until(10_000, 10_000_000, |s| {
        s.participant(p).z_order() == [app.0]
    })
    .expect("unshared window closed at the participant");
    assert!(s.participant(p).window_content(private.0).is_none());
}

#[test]
fn child_window_of_shared_app_is_transferred() {
    // §2: "shared application may open new child windows such as those for
    // selecting options or fonts. A true application sharing system ...
    // must transfer all the child windows of the shared application."
    let (desktop, app, _) = mixed_desktop();
    let mut s = SimSession::new(desktop, AhConfig::default(), 7);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        8,
    );
    s.run_until(10_000, 10_000_000, |s| s.participant(p).synced())
        .expect("sync");

    // The shared app (group 1) opens a font-picker dialog: same group,
    // shared.
    let dialog =
        s.ah.desktop_mut()
            .create_window(1, Rect::new(150, 120, 180, 120), [240, 240, 255, 255]);
    s.run_until(10_000, 10_000_000, |s| {
        s.participant(p).z_order().len() == 2 && s.converged(p)
    })
    .expect("child window transferred");
    let v = s.participant(p);
    assert_eq!(v.z_order(), &[app.0, dialog.0]);
    // Grouping information rides the WMI: both carry group 1.
    // (The participant MAY use it for layout; here we just verify receipt.)
    assert_eq!(
        v.window_ah_rect(dialog.0),
        Some(Rect::new(150, 120, 180, 120))
    );
}

#[test]
fn shared_region_excludes_private_windows() {
    let (desktop, _, _) = mixed_desktop();
    // Shared region = the app window only.
    assert_eq!(desktop.shared_region(), Some(Rect::new(60, 50, 300, 220)));
}
