//! Capture → replay, end to end: a scenario-suite session recorded to an
//! `adshare-capture/v1` file replays bit-exact (wire digest and decoded
//! surfaces), exports a valid historical Perfetto timeline, ships its ring
//! capture inside CRITICAL black-box dumps, reports ring truncation
//! explicitly, and pre-warms a re-share's encode cache from a warm file.
//! Property tests pin replay determinism down over arbitrary netsim
//! loss/reorder/duplication schedules.

use adshare::capture::{manifest_json, CaptureError};
use adshare::obs::{json, validate_chrome_trace, DumpSink, EventKind, HealthConfig};
use adshare::prelude::*;
use adshare::screen::workload::{Typing, Workload};
use adshare::session::scenario::presets;
use adshare_host::HostConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn artifact_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

/// The acceptance criterion, end to end: a scenario-suite run (sustained
/// churn: joins, leaves, PLI refreshes, mild loss) recorded to a capture
/// file + manifest sidecar, read back from disk, and replayed through
/// fresh participants — the wire digest and every decoded-surface digest
/// must match bit-exact, and the historical timeline must validate.
#[test]
fn scenario_suite_run_replays_bit_exact_from_disk() {
    let dir = artifact_dir("capture_replay_churn");
    let mut scn = presets::churn(0xCA97);
    scn.capture = Some(ScenarioCapture {
        consent: true,
        mode: CaptureMode::Full,
    });
    let (outcome, mut s) = run_scenario(&scn);
    assert!(
        outcome.passed,
        "oracle violations: {:?}",
        outcome.violations
    );

    // Freeze (embedding the flight-recorder ring), then summarize.
    s.finalize_capture().expect("capture armed");
    let manifest = s.capture_manifest().expect("capture armed");
    let cap = s.capture().expect("capture armed");
    assert_eq!(
        cap.wire_digest(),
        s.wire_digest(),
        "a full capture's egress fold must equal the session wire digest"
    );

    let cap_path = dir.join("churn.bin");
    let man_path = dir.join("churn.json");
    cap.write_to(&cap_path).expect("write capture");
    std::fs::write(&man_path, manifest_json(&manifest)).expect("write manifest");

    // Read back from disk like `adshare-demo replay` does.
    let capture = read_capture(&cap_path).expect("capture parses");
    let manifest =
        parse_manifest(&std::fs::read_to_string(&man_path).expect("read manifest")).unwrap();
    assert!(capture.header.consent, "consent flag must persist");
    assert!(!capture.header.ring, "full capture is not a ring");

    let report = replay(&capture, Some(&manifest));
    assert!(report.records_fed > 0, "replay fed no ingress records");
    assert!(
        !report.surfaces.is_empty(),
        "replay rebuilt no participant surfaces"
    );
    // Every actor the manifest recorded (the still-active participants —
    // leavers have no final surface) must be rebuilt and checked.
    assert!(!manifest.surface_digests.is_empty());
    for &(actor, _) in &manifest.surface_digests {
        assert!(
            report
                .surfaces
                .iter()
                .any(|sc| sc.actor == actor && sc.recorded.is_some()),
            "manifest actor {actor} missing from replay"
        );
    }
    assert!(
        report.bit_exact(),
        "replay diverged: wire 0x{:016x} vs recorded {:?}, surfaces {:?}",
        report.wire_digest,
        report.recorded_wire_digest,
        report.surfaces
    );

    // Historical Perfetto export from the capture file alone.
    let trace = historical_chrome_trace(&capture);
    validate_chrome_trace(&trace).expect("historical timeline validates");
    assert!(trace.contains("capture.rx"), "packet lanes missing");
    assert!(
        !trace.contains("\"ts\": -"),
        "merged timeline produced a negative timestamp"
    );
}

/// Arming is consent-gated at every level: the sink refuses, and so does
/// the session wrapper.
#[test]
fn arming_without_consent_is_refused() {
    let d = Desktop::new(160, 120);
    let mut s = SimSession::new(d, AhConfig::default(), 7);
    let err = s
        .arm_capture(false, CaptureMode::Full, 7)
        .expect_err("must refuse");
    assert_eq!(err, CaptureError::ConsentRequired);
    assert!(s.capture().is_none(), "refused arm must leave no sink");
}

/// Forcing a CRITICAL transition with auto-capture enabled must write the
/// ring capture next to the black box, reference it as `capture_path`, and
/// the referenced file must parse and replay without error.
#[test]
fn critical_dump_ships_replayable_ring_capture() {
    let dir = artifact_dir("capture_replay_critical");
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(30, 30, 300, 220), [250, 250, 250, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 0xC817);
    {
        let mut engine = s.obs().health.lock().unwrap();
        // Pull the loss CRITICAL threshold below what a 5% link produces.
        engine.set_config(HealthConfig {
            loss: (0.005, 0.01),
            ..HealthConfig::default()
        });
        engine.set_sink(DumpSink::Dir(dir.clone()));
    }
    s.enable_auto_capture(true, 2_000_000, dir.clone(), 0xC817)
        .expect("consent supplied");

    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig {
            loss: 0.05,
            delay_us: 20_000,
            jitter_us: 5_000,
            ..LinkConfig::default()
        },
        LinkConfig::default(),
        None,
        0xC817,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");
    let mut wl = Typing::new(w, 2);
    let mut rng = StdRng::seed_from_u64(0xC817);
    for i in 0..150 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
        if i % 15 == 14 {
            s.obs().health_check(s.clock.now_us());
        }
    }
    assert!(
        s.obs().health.lock().unwrap().dumps() >= 1,
        "tightened SLO under 5% loss must dump"
    );

    let engine = s.obs().health.lock().unwrap();
    let dump = engine.last_dump().expect("dump retained");
    let doc = json::parse(dump).expect("black box is JSON");
    let capture_path = doc
        .get("capture_path")
        .and_then(|p| p.as_str())
        .expect("black box must reference the auto-armed capture")
        .to_string();
    drop(engine);

    let capture = read_capture(std::path::Path::new(&capture_path)).expect("capture parses");
    assert!(capture.header.ring, "auto-armed capture must be a ring");
    assert!(capture.header.consent);
    assert!(!capture.records.is_empty(), "ring capture is empty");
    // Replays without a manifest: digests computed, nothing panics.
    let report = replay(&capture, None);
    assert!(report.records_fed > 0, "ring replay fed nothing");
}

/// When the ring overwrites, the loss is reported explicitly: manifest
/// truncation accounting stays self-consistent and the flight recorder
/// carries `CaptureTruncated` events with running totals.
#[test]
fn ring_truncation_is_reported_explicitly() {
    let mut d = Desktop::new(320, 240);
    let w = d.create_window(1, Rect::new(10, 10, 200, 150), [240, 240, 240, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 0x717);
    // A ring far smaller than the run, so it must overwrite.
    s.arm_capture(true, CaptureMode::Ring { window_us: 400_000 }, 0x717)
        .expect("consented");
    let p = s.add_udp_participant(
        Layout::Original,
        LinkConfig::default(),
        LinkConfig::default(),
        None,
        0x717,
    );
    s.run_until(10_000, 60_000_000, |s| s.converged(p))
        .expect("initial sync");
    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(0x717);
    for _ in 0..90 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    s.finalize_capture().expect("capture armed");
    let manifest = s.capture_manifest().expect("capture armed");
    assert!(manifest.ring);
    assert_eq!(manifest.window_us, 400_000);
    assert!(manifest.truncated, "a 0.4 s ring over a 3 s run must drop");
    assert!(manifest.truncated_records > 0);
    assert!(manifest.truncated_bytes > 0);
    assert_eq!(
        manifest.truncated,
        manifest.truncated_records > 0,
        "truncation marker must agree with the dropped-record count"
    );
    assert!(
        manifest.duration_us <= 400_000,
        "retained span {} exceeds the ring window",
        manifest.duration_us
    );
    // The manifest sidecar round-trips.
    let back = parse_manifest(&manifest_json(&manifest)).expect("manifest parses");
    assert_eq!(back, manifest);
    // Explicit truncation events with monotone running totals.
    let truncs: Vec<_> = s
        .obs()
        .recorder
        .snapshot()
        .into_iter()
        .filter(|e| e.kind == EventKind::CaptureTruncated)
        .collect();
    assert!(!truncs.is_empty(), "no CaptureTruncated events recorded");
    assert!(
        truncs.windows(2).all(|w| w[0].a <= w[1].a),
        "truncation totals must be monotone"
    );
}

/// Encode-cache persistence: a warm file exported from one host pre-warms
/// a fresh host, so an identical re-share re-encodes less — strictly more
/// cache hits and strictly fewer misses than the cold run — and the
/// `capture.*` gauges report the transfer.
#[test]
fn warm_file_prewarms_reshare_encode_cache() {
    const T_END_US: u64 = 600_000;
    fn desk() -> (Desktop, adshare::screen::wm::WindowId) {
        let mut d = Desktop::new(320, 240);
        let win = d.create_window(1, Rect::new(16, 16, 192, 128), [24, 48, 72, 255]);
        (d, win)
    }
    fn workload(win: adshare::screen::wm::WindowId) -> HostWorkload {
        let mut tick = 0u32;
        Box::new(move |sess: &mut SimSession, _now| {
            tick += 1;
            let c = ((tick * 13) % 200) as u8 + 20;
            let x = (tick % 3) * 48;
            sess.ah
                .desktop_mut()
                .fill(win, Rect::new(x, 0, 48, 48), [c, c ^ 0x5a, 90, 255]);
            tick < 30
        })
    }
    fn run_host(warm: Option<&[u8]>) -> (u64, u64, Vec<u8>) {
        let mut host = MultiHost::new(HostConfig::default());
        let ns = adshare_host::shared_namespace(&AhConfig::default());
        if let Some(bytes) = warm {
            let loaded = host.prewarm(ns, bytes).expect("warm file parses");
            assert!(loaded > 0, "prewarm accepted nothing");
            assert_eq!(
                host.registry().gauge("capture.prewarm_entries").get(),
                loaded as i64
            );
        }
        let (d, win) = desk();
        let idx = host.add_session(d, AhConfig::default(), 5, CacheSharing::Shared);
        host.session_mut(idx).add_udp_participant(
            Layout::Original,
            LinkConfig::default(),
            LinkConfig::default(),
            None,
            5 ^ 0x77,
        );
        host.set_workload(idx, workload(win));
        host.run_until(T_END_US);
        let warm_out = host.export_warm(ns, 512);
        (host.cache().hits(), host.cache().misses(), warm_out)
    }

    let (cold_hits, cold_misses, warm_file) = run_host(None);
    assert!(
        host_warm_entry_count(&warm_file) > 0,
        "cold run exported no warm entries"
    );
    let (warm_hits, warm_misses, _) = run_host(Some(&warm_file));
    assert!(
        warm_hits > cold_hits,
        "pre-warmed re-share must hit more: {warm_hits} vs cold {cold_hits}"
    );
    assert!(
        warm_misses < cold_misses,
        "pre-warmed re-share must miss less: {warm_misses} vs cold {cold_misses}"
    );
}

fn host_warm_entry_count(warm_file: &[u8]) -> usize {
    adshare::capture::decode_entries(warm_file)
        .expect("warm file parses")
        .len()
}

// ---------------------------------------------------------------------------
// Property tests: replay determinism over arbitrary schedules.
// ---------------------------------------------------------------------------

/// Decode integer material into a hostile link: loss, duplication, delay,
/// jitter (reordering), and optional rate caps.
fn decode_link(x: u32, y: u32) -> LinkConfig {
    LinkConfig {
        loss: f64::from(x % 80) / 1000.0,       // 0–7.9 %
        duplicate: f64::from(y % 150) / 1000.0, // 0–14.9 %
        delay_us: u64::from(x % 5) * 10_000,    // 0–40 ms
        jitter_us: u64::from(y % 6) * 2_000,    // 0–10 ms of reorder
        rate_bps: match x % 4 {
            0 => Some(400_000 + u64::from(y % 8) * 200_000),
            _ => None,
        },
        ..LinkConfig::default()
    }
}

/// Run a short typing session under the decoded loss/reorder schedule with
/// a full capture armed; return the serialized capture + manifest.
fn record_session(seed: u64, links: &[(u32, u32)], step_raw: u32) -> (Vec<u8>, ManifestSummary) {
    let mut d = Desktop::new(320, 240);
    let w = d.create_window(1, Rect::new(12, 12, 220, 160), [245, 245, 245, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), seed);
    s.arm_capture(true, CaptureMode::Full, seed)
        .expect("consented");
    for (i, &(x, y)) in links.iter().enumerate() {
        s.add_udp_participant(
            Layout::Original,
            decode_link(x, y),
            LinkConfig::default(),
            None,
            seed ^ (i as u64),
        );
    }
    // A mid-run link step on participant 0 (bandwidth cliff / loss spike).
    s.set_link_schedule(
        0,
        vec![LinkStep {
            at_us: 600_000 + u64::from(step_raw % 5) * 200_000,
            cfg: decode_link(step_raw, step_raw.rotate_left(7)),
        }],
    );
    let mut wl = Typing::new(w, 3);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    for _ in 0..60 {
        wl.tick(s.ah.desktop_mut(), &mut rng);
        s.step(33_333);
    }
    s.finalize_capture().expect("capture armed");
    let manifest = s.capture_manifest().expect("capture armed");
    let bytes = s.capture().expect("capture armed").to_bytes();
    assert_eq!(
        manifest.wire_digest,
        s.wire_digest(),
        "full-capture fold must equal the live session wire digest"
    );
    (bytes, manifest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Capture → replay of an arbitrary loss/reorder/duplication schedule
    /// reproduces the live session bit-exact: the capture parses, its
    /// egress fold equals the recorded wire digest, and every replayed
    /// surface matches the recorded per-actor digest.
    #[test]
    fn arbitrary_schedules_replay_bit_exact(
        seed in 0u64..1 << 32,
        links in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..3),
        step_raw in any::<u32>(),
    ) {
        let (bytes, manifest) = record_session(seed, &links, step_raw);
        let capture = parse_capture(&bytes).expect("capture parses");
        let report = replay(&capture, Some(&manifest));
        prop_assert!(report.records_fed > 0);
        prop_assert!(
            report.bit_exact(),
            "replay diverged: wire 0x{:016x} vs recorded {:?}, surfaces {:?}",
            report.wire_digest,
            report.recorded_wire_digest,
            report.surfaces
        );
        // And the historical timeline stays valid for any capture.
        let trace = historical_chrome_trace(&capture);
        prop_assert!(validate_chrome_trace(&trace).is_ok());
    }
}
