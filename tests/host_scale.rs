//! E2E tests for the multi-tenant host (`adshare-host`).
//!
//! The load-bearing claim: hosting changes *where* sessions run, never
//! *what they send*. A hosted session must be wire-byte-identical to the
//! same session run standalone under the same scheduling policy — at any
//! worker-pool size, with the cross-session cache on. On top of that, the
//! readiness event loop must be fair (skewed damage cannot starve a
//! session) and the tenant namespaces must be leak-proof (private sessions
//! never observe each other's encoded tiles).

use adshare::prelude::*;
use adshare_host::HostConfig;
use adshare_screen::wm::WindowId;
use proptest::prelude::*;

const INTERVAL_US: u64 = 16_000;
const T_END_US: u64 = 700_000;

fn desktop() -> (Desktop, WindowId) {
    let mut d = Desktop::new(320, 240);
    let win = d.create_window(1, Rect::new(16, 16, 192, 128), [24, 48, 72, 255]);
    (d, win)
}

fn link() -> LinkConfig {
    LinkConfig {
        delay_us: 2_000,
        ..LinkConfig::default()
    }
}

/// A deterministic per-session workload. Content depends only on
/// `(class, tick)`, so sessions with the same class produce identical
/// tiles (cross-session cache hits) while the bytes each session sends
/// are a pure function of its own inputs (the parity requirement).
fn workload(class: usize, win: WindowId) -> impl FnMut(&mut SimSession, u64) -> bool + Send {
    let mut tick = 0u32;
    move |sess, _now| {
        tick += 1;
        let c = ((tick as usize * 13 + class * 59) % 200) as u8 + 20;
        let x = (tick % 3) * 48;
        sess.ah.desktop_mut().fill(
            win,
            Rect::new(x, 0, 48, 48),
            [c, c ^ 0x5a, (class as u8) * 50, 255],
        );
        tick < 36
    }
}

/// Wire digests of `n` sessions run hosted at the given pool size.
fn hosted_digests(n: usize, pool_workers: usize, sharing: CacheSharing) -> Vec<u64> {
    let mut host = MultiHost::new(HostConfig {
        capture_interval_us: INTERVAL_US,
        pool_workers,
        ..HostConfig::default()
    });
    for i in 0..n {
        let (d, win) = desktop();
        let idx = host.add_session(d, AhConfig::default(), i as u64, sharing);
        host.session_mut(idx).add_udp_participant(
            Layout::Original,
            link(),
            link(),
            None,
            i as u64 ^ 0x77,
        );
        host.set_workload(idx, workload(i % 4, win));
    }
    host.run_until(T_END_US);
    (0..n).map(|i| host.session(i).wire_digest()).collect()
}

/// Wire digests of the same `n` sessions each run standalone (private
/// per-session cache, no pool) under the identical scheduling policy.
fn standalone_digests(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let (d, win) = desktop();
            let mut sess = SimSession::new(d, AhConfig::default(), i as u64);
            sess.add_udp_participant(Layout::Original, link(), link(), None, i as u64 ^ 0x77);
            run_standalone(
                &mut sess,
                INTERVAL_US,
                T_END_US,
                Some(Box::new(workload(i % 4, win))),
            );
            sess.wire_digest()
        })
        .collect()
}

/// A 64-session hosted run is wire-byte-identical, per session, to 64
/// standalone runs — with the shared cache on and at any pool size.
#[test]
fn hosted_sessions_are_wire_identical_to_standalone() {
    let standalone = standalone_digests(64);
    let hosted_serial = hosted_digests(64, 1, CacheSharing::Shared);
    assert_eq!(
        hosted_serial, standalone,
        "hosting (serial pool) must not change a single wire byte"
    );
    let hosted_parallel = hosted_digests(64, 8, CacheSharing::Shared);
    assert_eq!(
        hosted_parallel, standalone,
        "worker-pool size must not change a single wire byte"
    );
    let hosted_private = hosted_digests(64, 4, CacheSharing::Private);
    assert_eq!(
        hosted_private, standalone,
        "tenant isolation must not change a single wire byte"
    );
}

/// Private tenants never observe each other's cache entries, even with
/// byte-identical content; shared tenants do. Workload content never
/// repeats within a session (tick-varying colors), so in the private run
/// every recorded hit could only come from another tenant's entry — the
/// leak the namespaces must make impossible.
#[test]
fn private_tenants_never_share_tiles() {
    let run = |sharing: CacheSharing| {
        let mut host = MultiHost::new(HostConfig {
            capture_interval_us: INTERVAL_US,
            pool_workers: 2,
            ..HostConfig::default()
        });
        for i in 0..4 {
            let (d, win) = desktop();
            let idx = host.add_session(d, AhConfig::default(), i, sharing);
            host.session_mut(idx)
                .add_udp_participant(Layout::Original, link(), link(), None, i);
            // Same class for everyone: all four sessions draw identical bytes.
            host.set_workload(idx, workload(0, win));
        }
        host.run_until(T_END_US);
        host.stats()
    };

    let shared = run(CacheSharing::Shared);
    assert!(
        shared.cache_hits > 0,
        "identical shared-tenant content must hit the cross-session cache"
    );
    let private = run(CacheSharing::Private);
    assert_eq!(
        private.cache_hits, 0,
        "a private tenant observing another tenant's tiles is a leak"
    );
    assert!(
        private.cache_insertions > shared.cache_insertions,
        "private tenants must each pay for their own encodes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fairness: however damage is skewed across sessions — a few tenants
    /// redrawing huge regions every tick, the rest trickling — every
    /// session with a live workload is serviced at every capture tick.
    /// The event loop schedules by due time, never by damage volume.
    #[test]
    fn skewed_damage_never_starves_a_session(
        heavy_mask in 0u8..255,
        seed in 0u64..1_000,
    ) {
        let t_end = 400_000u64; // 25 capture intervals
        let mut host = MultiHost::new(HostConfig {
            capture_interval_us: INTERVAL_US,
            pool_workers: 2,
            ..HostConfig::default()
        });
        for i in 0..8usize {
            let (d, win) = desktop();
            let idx = host.add_session(d, AhConfig::default(), seed ^ i as u64, CacheSharing::Shared);
            host.session_mut(idx)
                .add_udp_participant(Layout::Original, link(), link(), None, seed ^ (i as u64) << 8);
            let heavy = heavy_mask & (1 << i) != 0;
            let mut tick = 0u32;
            host.set_workload(idx, move |sess, _| {
                tick += 1;
                if heavy {
                    // Full-window redraw, new bytes every tick.
                    let c = (tick % 251) as u8;
                    sess.ah.desktop_mut().fill(win, Rect::new(0, 0, 192, 128), [c, 255 - c, i as u8, 255]);
                } else if tick.is_multiple_of(4) {
                    sess.ah.desktop_mut().fill(win, Rect::new(0, 0, 16, 16), [tick as u8, 0, 0, 255]);
                }
                true // live for the whole run
            });
        }
        host.run_until(t_end);
        let ticks = t_end / INTERVAL_US;
        for i in 0..8 {
            prop_assert!(
                host.session_steps(i) >= ticks - 2,
                "session {} starved: {} services over {} capture ticks",
                i, host.session_steps(i), ticks
            );
        }
    }
}
