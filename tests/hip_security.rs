//! HIP event legitimacy and floor control through the full stack.
//!
//! §4.1: "The AH MUST only accept legitimate HIP events by checking whether
//! the requested coordinates are inside the shared windows." Appendix A:
//! BFCP moderates who may inject at all, and the HID status can block
//! keyboard or mouse independently.

use adshare::prelude::*;

fn session() -> (SimSession, u16) {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(100, 100, 200, 150), [240, 240, 240, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 1);
    let _ = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        2,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(0))
        .expect("sync");
    (s, w.0)
}

fn pump(s: &mut SimSession) {
    for _ in 0..20 {
        s.step(10_000);
    }
}

#[test]
fn events_inside_window_accepted_outside_rejected() {
    let (mut s, win) = session();
    let inside = HipMessage::MousePressed {
        window_id: WireWindowId(win),
        button: MouseButton::Left,
        left: 150,
        top: 120,
    };
    let outside = HipMessage::MousePressed {
        window_id: WireWindowId(win),
        button: MouseButton::Left,
        left: 500,
        top: 400,
    };
    let edge_inside = HipMessage::MouseMoved {
        window_id: WireWindowId(win),
        left: 299,
        top: 249,
    };
    let edge_outside = HipMessage::MouseMoved {
        window_id: WireWindowId(win),
        left: 300,
        top: 250,
    };
    for m in [&inside, &outside, &edge_inside, &edge_outside] {
        s.send_hip(0, m);
    }
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 2);
    assert_eq!(s.ah.stats().hip_rejected, 2);
}

#[test]
fn events_for_unknown_window_rejected() {
    let (mut s, _) = session();
    s.send_hip(
        0,
        &HipMessage::KeyPressed {
            window_id: WireWindowId(777),
            key_code: 0x41,
        },
    );
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 0);
    assert_eq!(s.ah.stats().hip_rejected, 1);
}

#[test]
fn key_events_need_only_valid_window() {
    let (mut s, win) = session();
    s.send_hip(
        0,
        &HipMessage::KeyPressed {
            window_id: WireWindowId(win),
            key_code: 0x70,
        },
    );
    s.send_hip(
        0,
        &HipMessage::KeyReleased {
            window_id: WireWindowId(win),
            key_code: 0x70,
        },
    );
    s.send_hip(
        0,
        &HipMessage::KeyTyped {
            window_id: WireWindowId(win),
            text: "hello ☃".into(),
        },
    );
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 3);
    let injected = s.ah.take_injected();
    assert!(matches!(&injected[2].1, HipMessage::KeyTyped { text, .. } if text == "hello ☃"));
}

#[test]
fn floor_control_gates_injection() {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(100, 100, 200, 150), [240, 240, 240, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 3);
    s.ah.set_require_floor(true);
    let alice = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        4,
    );
    let bob = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        5,
    );
    s.run_until(10_000, 10_000_000, |s| {
        s.converged(alice) && s.converged(bob)
    })
    .expect("sync");

    let click = HipMessage::MousePressed {
        window_id: WireWindowId(w.0),
        button: MouseButton::Left,
        left: 150,
        top: 120,
    };
    // Nobody holds the floor: rejected.
    s.send_hip(alice, &click);
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 0);

    // Alice requests and receives the floor.
    s.request_floor(alice);
    assert!(matches!(
        s.participant(alice).floor().state(),
        FloorState::Granted(_)
    ));
    s.send_hip(alice, &click);
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 1);

    // Bob is queued; his clicks are rejected.
    s.request_floor(bob);
    assert!(matches!(
        s.participant(bob).floor().state(),
        FloorState::Queued(1)
    ));
    s.send_hip(bob, &click);
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 1);

    // Alice releases; Bob is promoted and can click.
    s.release_floor(alice);
    assert!(matches!(
        s.participant(bob).floor().state(),
        FloorState::Granted(_)
    ));
    s.send_hip(bob, &click);
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 2);
}

#[test]
fn hid_status_blocks_keyboard_but_not_mouse() {
    let mut d = Desktop::new(640, 480);
    let w = d.create_window(1, Rect::new(100, 100, 200, 150), [240, 240, 240, 255]);
    let mut s = SimSession::new(d, AhConfig::default(), 7);
    s.ah.set_require_floor(true);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        8,
    );
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("sync");
    s.request_floor(p);

    // The AH blocks keyboard input (e.g. a password field got focus).
    let _ = s.ah.set_hid_status(HidStatus::MouseAllowed);
    s.send_hip(
        p,
        &HipMessage::KeyPressed {
            window_id: WireWindowId(w.0),
            key_code: 0x41,
        },
    );
    s.send_hip(
        p,
        &HipMessage::MouseMoved {
            window_id: WireWindowId(w.0),
            left: 150,
            top: 120,
        },
    );
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 1, "mouse passes");
    assert_eq!(s.ah.stats().hip_rejected, 1, "keyboard blocked");

    // Restore full access.
    let _ = s.ah.set_hid_status(HidStatus::AllAllowed);
    s.send_hip(
        p,
        &HipMessage::KeyPressed {
            window_id: WireWindowId(w.0),
            key_code: 0x41,
        },
    );
    pump(&mut s);
    assert_eq!(s.ah.stats().hip_injected, 2);
}

#[test]
fn mouse_wheel_and_typed_text_round_trip_values() {
    let (mut s, win) = session();
    s.send_hip(
        0,
        &HipMessage::MouseWheelMoved {
            window_id: WireWindowId(win),
            left: 150,
            top: 120,
            distance: -240,
        },
    );
    pump(&mut s);
    let injected = s.ah.take_injected();
    assert!(matches!(
        injected[0].1,
        HipMessage::MouseWheelMoved { distance: -240, .. }
    ));
}

#[test]
fn injected_mouse_move_drives_ah_pointer() {
    let (mut s, win) = session();
    s.send_hip(
        0,
        &HipMessage::MouseMoved {
            window_id: WireWindowId(win),
            left: 180,
            top: 140,
        },
    );
    pump(&mut s);
    assert_eq!(s.ah.desktop().pointer().position(), (180, 140));
}
