//! Cross-crate property tests: arbitrary inputs through complete pipelines.

use adshare::codec::codec::{AnyCodec, Codec};
use adshare::codec::CodecKind;
use adshare::prelude::*;
use adshare::remoting::fragment::{fragment, Reassembler};
use adshare::remoting::message::{RegionUpdate, RemotingMessage};
use adshare::remoting::packetizer::{
    depacketize_hip, HipPacketizer, RemotingDepacketizer, RemotingPacketizer,
};
use adshare::rtp::framing::{frame_into, Deframer};
use adshare::rtp::packet::RtpPacket;
use adshare::rtp::session::RtpSender;
use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_image() -> impl Strategy<Value = Image> {
    (1u32..48, 1u32..48, any::<u32>()).prop_map(|(w, h, seed)| {
        let mut img = Image::new(w, h).unwrap();
        let mut state = seed | 1;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                img.set_pixel(x, y, state.to_be_bytes());
            }
        }
        img
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lossless codecs recover arbitrary pixels exactly; the lossy codec
    /// stays within a bounded error.
    #[test]
    fn codecs_round_trip_arbitrary_images(img in arb_image()) {
        for kind in [CodecKind::Png, CodecKind::Rle, CodecKind::Raw] {
            let c = AnyCodec::new(kind);
            prop_assert_eq!(c.decode(&c.encode(&img)).unwrap(), img.clone(), "{:?}", kind);
        }
        let dct = AnyCodec::new(CodecKind::Dct);
        let back = dct.decode(&dct.encode(&img)).unwrap();
        prop_assert_eq!(back.width(), img.width());
        prop_assert_eq!(back.height(), img.height());
    }

    /// Any RegionUpdate fragments and reassembles exactly for any workable
    /// MTU, with Table 2 bits consistent.
    #[test]
    fn fragmentation_total(
        payload in proptest::collection::vec(any::<u8>(), 0..8192),
        mtu in 13usize..3000,
        window in any::<u16>(),
        left in any::<u32>(),
        top in any::<u32>(),
    ) {
        let msg = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WireWindowId(window),
            payload_type: 101,
            left,
            top,
            payload: Bytes::from(payload),
        });
        let packets = fragment(&msg, mtu).unwrap();
        // Bits per Table 2.
        for (i, p) in packets.iter().enumerate() {
            prop_assert!(p.payload.len() <= mtu);
            prop_assert_eq!(p.marker, i + 1 == packets.len());
        }
        let mut r = Reassembler::new();
        let mut got = None;
        for p in &packets {
            if let Some(m) = r.feed(p.marker, &p.payload).unwrap() {
                got = Some(m);
            }
        }
        prop_assert_eq!(got, Some(msg));
    }

    /// A full message sequence over RTP + RFC 4571 framing, delivered in
    /// arbitrary chunk sizes, reproduces the sequence exactly.
    #[test]
    fn tcp_pipeline_chunking_invariant(
        payload_sizes in proptest::collection::vec(0usize..5000, 1..8),
        chunk in 1usize..500,
    ) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut packetizer = RemotingPacketizer::new(RtpSender::new(1, 99, &mut rng), 1400);
        let msgs: Vec<RemotingMessage> = payload_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                RemotingMessage::RegionUpdate(RegionUpdate {
                    window_id: WireWindowId(i as u16),
                    payload_type: 101,
                    left: i as u32,
                    top: 0,
                    payload: Bytes::from(vec![(i % 251) as u8; n]),
                })
            })
            .collect();
        let mut wire = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            for pkt in packetizer.packetize(m, i as u32 * 3000).unwrap() {
                frame_into(&mut wire, &pkt.encode()).unwrap();
            }
        }
        let mut deframer = Deframer::default();
        let mut depkt = RemotingDepacketizer::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            deframer.push(piece);
            while let Some(frame) = deframer.pop().unwrap() {
                let pkt = RtpPacket::decode(&frame).unwrap();
                if let Some(m) = depkt.feed(&pkt).unwrap() {
                    got.push(m);
                }
            }
        }
        prop_assert_eq!(got, msgs);
    }

    /// Any unicode string survives KeyTyped chunking through RTP at any
    /// payload budget.
    #[test]
    fn key_typed_pipeline_unicode(text in "\\PC{0,300}", budget in 24usize..512) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = HipPacketizer::new(RtpSender::new(2, 100, &mut rng), budget);
        let msg = HipMessage::KeyTyped { window_id: WireWindowId(5), text: text.clone() };
        let pkts = p.packetize(&msg, 0).unwrap();
        let rebuilt: String = pkts
            .iter()
            .map(|pkt| {
                let wire = pkt.encode();
                let back = RtpPacket::decode(&wire).unwrap();
                match depacketize_hip(&back).unwrap() {
                    HipMessage::KeyTyped { text, .. } => text,
                    other => panic!("wrong type {other:?}"),
                }
            })
            .collect();
        prop_assert_eq!(rebuilt, text);
    }

    /// The reorder buffer delivers any permuted window of a sequence in
    /// order, without duplicates or fabrications.
    #[test]
    fn reorder_buffer_permutation(
        start in any::<u16>(),
        len in 1usize..80,
        swaps in proptest::collection::vec((0usize..80, 0usize..80), 0..60),
    ) {
        use adshare::rtp::header::RtpHeader;
        use adshare::rtp::reorder::ReorderBuffer;
        let mut order: Vec<usize> = (0..len).collect();
        for (a, b) in swaps {
            let (a, b) = (a % len, b % len);
            order.swap(a, b);
        }
        // Bound displacement to the buffer capacity so nothing is dropped.
        let mut buf = ReorderBuffer::new(len + 1);
        // Ensure the first packet ingested is the sequence start (the
        // session layer guarantees this via PLI resync; here we pin it).
        let first_pos = order.iter().position(|&i| i == 0).unwrap();
        order.swap(0, first_pos);
        let mut delivered = Vec::new();
        for &i in &order {
            let seq = start.wrapping_add(i as u16);
            buf.ingest(RtpPacket::new(RtpHeader::new(99, seq, 0, 1), Vec::new()));
            while let Some(p) = buf.pop_ready() {
                delivered.push(p.header.sequence);
            }
        }
        let expected: Vec<u16> = (0..len as u16).map(|i| start.wrapping_add(i)).collect();
        prop_assert_eq!(delivered, expected);
    }
}
