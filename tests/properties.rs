//! Cross-crate property tests: arbitrary inputs through complete pipelines.

use adshare::codec::codec::{AnyCodec, Codec};
use adshare::codec::CodecKind;
use adshare::prelude::*;
use adshare::remoting::fragment::{fragment, FragmentPacket, Reassembler};
use adshare::remoting::header::CommonHeader;
use adshare::remoting::message::{RegionUpdate, RemotingMessage};
use adshare::remoting::packetizer::{
    depacketize_hip, HipPacketizer, RemotingDepacketizer, RemotingPacketizer,
};
use adshare::remoting::registry::MSG_REGION_UPDATE;
use adshare::rtp::framing::{frame_into, Deframer};
use adshare::rtp::packet::RtpPacket;
use adshare::rtp::session::RtpSender;
use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_image() -> impl Strategy<Value = Image> {
    (1u32..48, 1u32..48, any::<u32>()).prop_map(|(w, h, seed)| {
        let mut img = Image::new(w, h).unwrap();
        let mut state = seed | 1;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                img.set_pixel(x, y, state.to_be_bytes());
            }
        }
        img
    })
}

/// Any of the seven HIP messages with arbitrary field values. The shim has
/// no `prop_oneof`, so a small discriminant selects the variant.
fn arb_hip() -> impl Strategy<Value = HipMessage> {
    (
        (0u8..7, any::<u16>(), any::<u8>()),
        (any::<u32>(), any::<u32>(), any::<i32>(), "\\PC{0,80}"),
    )
        .prop_map(|((disc, window, btn), (left, top, distance, text))| {
            let window_id = WireWindowId(window);
            // `from_value` inverts `value` for every octet (1/2/3 name the
            // draft's buttons, anything else is Other), so the full u8 range
            // round-trips.
            let button = MouseButton::from_value(btn);
            match disc {
                0 => HipMessage::MousePressed {
                    window_id,
                    button,
                    left,
                    top,
                },
                1 => HipMessage::MouseReleased {
                    window_id,
                    button,
                    left,
                    top,
                },
                2 => HipMessage::MouseMoved {
                    window_id,
                    left,
                    top,
                },
                3 => HipMessage::MouseWheelMoved {
                    window_id,
                    left,
                    top,
                    distance,
                },
                4 => HipMessage::KeyPressed {
                    window_id,
                    key_code: left,
                },
                5 => HipMessage::KeyReleased {
                    window_id,
                    key_code: top,
                },
                _ => HipMessage::KeyTyped { window_id, text },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every HIP message survives an encode/decode round trip for arbitrary
    /// field values, including full-range button octets, negative wheel
    /// distances, and arbitrary unicode in KeyTyped.
    #[test]
    fn hip_messages_round_trip(msg in arb_hip()) {
        let wire = msg.encode();
        prop_assert_eq!(HipMessage::decode(&wire), Ok(msg));
    }

    /// A receiver reassembles a RegionUpdate correctly from ANY split of the
    /// body a sender might choose — not just the equal-sized chunks our own
    /// fragmenter produces. Fragments are hand-built at arbitrary (possibly
    /// empty) split points with Table 2 bits set per position.
    #[test]
    fn reassembly_handles_arbitrary_split_points(
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(0usize..4096, 0..12),
        window in any::<u16>(),
        // The parameter octet's high bit is FirstPacket (Figure 10), so a
        // fragmented message's payload type is 7-bit — like RTP's own.
        pt in 0u8..128,
        left in any::<u32>(),
        top in any::<u32>(),
    ) {
        // Segment edges: arbitrary interior cut points (duplicates allowed,
        // so zero-length continuation fragments occur) plus both ends.
        let mut edges: Vec<usize> = cuts.iter().map(|&c| c % (payload.len() + 1)).collect();
        edges.push(0);
        edges.push(payload.len());
        edges.sort_unstable();

        let window_id = WireWindowId(window);
        let n_frags = edges.len() - 1;
        let mut packets = Vec::with_capacity(n_frags);
        for (i, pair) in edges.windows(2).enumerate() {
            let first = i == 0;
            let last = i + 1 == n_frags;
            let mut buf = Vec::new();
            CommonHeader::with_fragment_param(MSG_REGION_UPDATE, first, pt, window_id)
                .encode_into(&mut buf);
            if first {
                buf.extend_from_slice(&left.to_be_bytes());
                buf.extend_from_slice(&top.to_be_bytes());
            }
            buf.extend_from_slice(&payload[pair[0]..pair[1]]);
            packets.push(FragmentPacket { marker: last, payload: buf });
        }

        let mut r = Reassembler::new();
        let mut got = None;
        for p in &packets {
            if let Some(m) = r.feed(p.marker, &p.payload).unwrap() {
                prop_assert!(got.is_none(), "at most one completion");
                got = Some(m);
            }
        }
        let expected = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id,
            payload_type: pt,
            left,
            top,
            payload: Bytes::from(payload),
        });
        prop_assert_eq!(got, Some(expected));
        prop_assert!(!r.in_progress());
        prop_assert_eq!(r.dropped_partials(), 0);
    }

    /// Feeding a fragment stream with arbitrary drops and reordering never
    /// panics, never fabricates metadata, and after a `reset()` (the PLI
    /// recovery path) an intact message still reassembles exactly.
    #[test]
    fn reassembler_survives_loss_and_reordering(
        payload_len in 0usize..6000,
        mtu in 13usize..600,
        drops in proptest::collection::vec(any::<bool>(), 1..48),
        swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..24),
    ) {
        let body: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let msg = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WireWindowId(9),
            payload_type: 101,
            left: 17,
            top: 23,
            payload: Bytes::from(body),
        });
        let packets = fragment(&msg, mtu).unwrap();

        let mut order: Vec<usize> = (0..packets.len()).collect();
        for &(a, b) in &swaps {
            let (a, b) = (a % order.len(), b % order.len());
            order.swap(a, b);
        }
        let mut r = Reassembler::new();
        for (k, &i) in order.iter().enumerate() {
            if drops[k % drops.len()] {
                continue;
            }
            match r.feed(packets[i].marker, &packets[i].payload) {
                // Continuations carry no offsets, so a scrambled stream can
                // complete with a permuted body — but the first-fragment
                // metadata must never be fabricated.
                Ok(Some(RemotingMessage::RegionUpdate(ru))) => {
                    prop_assert_eq!(ru.window_id, WireWindowId(9));
                    prop_assert_eq!(ru.payload_type, 101);
                    prop_assert_eq!((ru.left, ru.top), (17, 23));
                }
                Ok(Some(other)) => prop_assert!(false, "wrong type {:?}", other),
                // Gaps legitimately surface as fragment-state errors; the
                // session layer answers them with reset() + PLI.
                Ok(None) | Err(_) => {}
            }
        }

        // PLI recovery: after a reset, an intact retransmission of the full
        // update reassembles byte-for-byte.
        r.reset();
        prop_assert!(!r.in_progress());
        let mut got = None;
        for p in &packets {
            if let Some(m) = r.feed(p.marker, &p.payload).unwrap() {
                got = Some(m);
            }
        }
        prop_assert_eq!(got, Some(msg));
    }

    /// Lossless codecs recover arbitrary pixels exactly; the lossy codec
    /// stays within a bounded error.
    #[test]
    fn codecs_round_trip_arbitrary_images(img in arb_image()) {
        for kind in [CodecKind::Png, CodecKind::Rle, CodecKind::Raw] {
            let c = AnyCodec::new(kind);
            prop_assert_eq!(c.decode(&c.encode(&img)).unwrap(), img.clone(), "{:?}", kind);
        }
        let dct = AnyCodec::new(CodecKind::Dct);
        let back = dct.decode(&dct.encode(&img)).unwrap();
        prop_assert_eq!(back.width(), img.width());
        prop_assert_eq!(back.height(), img.height());
    }

    /// Any RegionUpdate fragments and reassembles exactly for any workable
    /// MTU, with Table 2 bits consistent.
    #[test]
    fn fragmentation_total(
        payload in proptest::collection::vec(any::<u8>(), 0..8192),
        mtu in 13usize..3000,
        window in any::<u16>(),
        left in any::<u32>(),
        top in any::<u32>(),
    ) {
        let msg = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WireWindowId(window),
            payload_type: 101,
            left,
            top,
            payload: Bytes::from(payload),
        });
        let packets = fragment(&msg, mtu).unwrap();
        // Bits per Table 2.
        for (i, p) in packets.iter().enumerate() {
            prop_assert!(p.payload.len() <= mtu);
            prop_assert_eq!(p.marker, i + 1 == packets.len());
        }
        let mut r = Reassembler::new();
        let mut got = None;
        for p in &packets {
            if let Some(m) = r.feed(p.marker, &p.payload).unwrap() {
                got = Some(m);
            }
        }
        prop_assert_eq!(got, Some(msg));
    }

    /// A full message sequence over RTP + RFC 4571 framing, delivered in
    /// arbitrary chunk sizes, reproduces the sequence exactly.
    #[test]
    fn tcp_pipeline_chunking_invariant(
        payload_sizes in proptest::collection::vec(0usize..5000, 1..8),
        chunk in 1usize..500,
    ) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut packetizer = RemotingPacketizer::new(RtpSender::new(1, 99, &mut rng), 1400);
        let msgs: Vec<RemotingMessage> = payload_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                RemotingMessage::RegionUpdate(RegionUpdate {
                    window_id: WireWindowId(i as u16),
                    payload_type: 101,
                    left: i as u32,
                    top: 0,
                    payload: Bytes::from(vec![(i % 251) as u8; n]),
                })
            })
            .collect();
        let mut wire = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            for pkt in packetizer.packetize(m, i as u32 * 3000).unwrap() {
                frame_into(&mut wire, &pkt.encode()).unwrap();
            }
        }
        let mut deframer = Deframer::default();
        let mut depkt = RemotingDepacketizer::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            deframer.push(piece);
            while let Some(frame) = deframer.pop().unwrap() {
                let pkt = RtpPacket::decode(&frame).unwrap();
                if let Some(m) = depkt.feed(&pkt).unwrap() {
                    got.push(m);
                }
            }
        }
        prop_assert_eq!(got, msgs);
    }

    /// Any unicode string survives KeyTyped chunking through RTP at any
    /// payload budget.
    #[test]
    fn key_typed_pipeline_unicode(text in "\\PC{0,300}", budget in 24usize..512) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = HipPacketizer::new(RtpSender::new(2, 100, &mut rng), budget);
        let msg = HipMessage::KeyTyped { window_id: WireWindowId(5), text: text.clone() };
        let pkts = p.packetize(&msg, 0).unwrap();
        let rebuilt: String = pkts
            .iter()
            .map(|pkt| {
                let wire = pkt.encode();
                let back = RtpPacket::decode(&wire).unwrap();
                match depacketize_hip(&back).unwrap() {
                    HipMessage::KeyTyped { text, .. } => text,
                    other => panic!("wrong type {other:?}"),
                }
            })
            .collect();
        prop_assert_eq!(rebuilt, text);
    }

    /// The reorder buffer delivers any permuted window of a sequence in
    /// order, without duplicates or fabrications.
    #[test]
    fn reorder_buffer_permutation(
        start in any::<u16>(),
        len in 1usize..80,
        swaps in proptest::collection::vec((0usize..80, 0usize..80), 0..60),
    ) {
        use adshare::rtp::header::RtpHeader;
        use adshare::rtp::reorder::ReorderBuffer;
        let mut order: Vec<usize> = (0..len).collect();
        for (a, b) in swaps {
            let (a, b) = (a % len, b % len);
            order.swap(a, b);
        }
        // Bound displacement to the buffer capacity so nothing is dropped.
        let mut buf = ReorderBuffer::new(len + 1);
        // Ensure the first packet ingested is the sequence start (the
        // session layer guarantees this via PLI resync; here we pin it).
        let first_pos = order.iter().position(|&i| i == 0).unwrap();
        order.swap(0, first_pos);
        let mut delivered = Vec::new();
        for &i in &order {
            let seq = start.wrapping_add(i as u16);
            buf.ingest(RtpPacket::new(RtpHeader::new(99, seq, 0, 1), Vec::new()));
            while let Some(p) = buf.pop_ready() {
                delivered.push(p.header.sequence);
            }
        }
        let expected: Vec<u16> = (0..len as u16).map(|i| start.wrapping_add(i)).collect();
        prop_assert_eq!(delivered, expected);
    }
}
