//! The coordinate-system scenario of draft Figures 2–5: one AH shares
//! three windows; three participants display them in original, shifted,
//! and packed layouts, all preserving z-order — validated through the full
//! protocol pipeline, not just the layout code.

use adshare::prelude::*;

/// Figure 2: A at (220,150) 350×450; C at (850,320) 160×150;
/// B at (450,400) 350×300. Z-order bottom→top: A, C, B.
fn figure2_desktop() -> Desktop {
    let mut d = Desktop::new(1280, 1024);
    d.create_window(1, Rect::new(220, 150, 350, 450), [230, 230, 230, 255]); // A
    d.create_window(2, Rect::new(850, 320, 160, 150), [210, 230, 250, 255]); // C
    d.create_window(1, Rect::new(450, 400, 350, 300), [245, 245, 245, 255]); // B
    d
}

fn converge(s: &mut SimSession, p: usize) {
    s.run_until(10_000, 10_000_000, |s| s.converged(p))
        .expect("participant converges");
}

#[test]
fn figure3_participant1_original_coordinates() {
    let mut s = SimSession::new(figure2_desktop(), AhConfig::default(), 1);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        2,
    );
    converge(&mut s, p);
    let v = s.participant(p);
    assert_eq!(v.window_local_pos(0), Some((220, 150)));
    assert_eq!(v.window_local_pos(1), Some((850, 320)));
    assert_eq!(v.window_local_pos(2), Some((450, 400)));
    assert_eq!(v.z_order(), &[0, 1, 2]);

    // The rendered screen equals the AH composite over the whole desktop
    // (including the pointer: the AH uses the explicit model by default, so
    // the participant knows its position and icon).
    let frame = v.render(1280, 1024);
    let truth = s.ah.desktop().composite(true);
    assert_eq!(
        frame, truth,
        "original layout reproduces the AH screen exactly"
    );
}

#[test]
fn figure4_participant2_shifted_coordinates() {
    let mut s = SimSession::new(figure2_desktop(), AhConfig::default(), 3);
    // "Participant 2 shifts all the windows 220 pixels left and 150 pixels
    // up" — yielding B at (230,250) and C at (630,170) per Figure 4.
    let p = s.add_tcp_participant(
        Layout::Shifted { dx: 220, dy: 150 },
        TcpConfig::default(),
        LinkConfig::default(),
        4,
    );
    converge(&mut s, p);
    let v = s.participant(p);
    assert_eq!(v.window_local_pos(0), Some((0, 0)));
    assert_eq!(v.window_local_pos(1), Some((630, 170)));
    assert_eq!(v.window_local_pos(2), Some((230, 250)));
    // "Participant 2 preserves the relations between windows."
    let (ax, ay) = v.window_local_pos(0).unwrap();
    let (bx, by) = v.window_local_pos(2).unwrap();
    assert_eq!((bx - ax, by - ay), (450 - 220, 400 - 150));
    assert_eq!(v.z_order(), &[0, 1, 2], "z-order preserved");
}

#[test]
fn figure5_participant3_small_screen() {
    let mut s = SimSession::new(figure2_desktop(), AhConfig::default(), 5);
    // "Participant 3 combines all the windows in order to fit them to its
    // small screen" (640×480).
    let p = s.add_tcp_participant(
        Layout::Packed {
            width: 640,
            height: 480,
        },
        TcpConfig::default(),
        LinkConfig::default(),
        6,
    );
    converge(&mut s, p);
    let v = s.participant(p);
    for id in [0u16, 1, 2] {
        let (x, y) = v.window_local_pos(id).unwrap();
        assert!(
            x < 640 && y < 480,
            "window {id} on the small screen at ({x},{y})"
        );
    }
    assert_eq!(v.z_order(), &[0, 1, 2], "z-order preserved");
    // Window *content* is still pixel-exact even though positions moved.
    assert!(s.converged(p));
}

#[test]
fn content_updates_are_layout_independent() {
    // The same absolute-coordinate RegionUpdate stream must land correctly
    // for all three participants simultaneously.
    let mut s = SimSession::new(figure2_desktop(), AhConfig::default(), 7);
    let p1 = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        8,
    );
    let p2 = s.add_tcp_participant(
        Layout::Shifted { dx: 220, dy: 150 },
        TcpConfig::default(),
        LinkConfig::default(),
        9,
    );
    let p3 = s.add_tcp_participant(
        Layout::Packed {
            width: 640,
            height: 480,
        },
        TcpConfig::default(),
        LinkConfig::default(),
        10,
    );
    for p in [p1, p2, p3] {
        converge(&mut s, p);
    }
    // Paint into window B (id 2) at absolute (500, 450) = local (50, 50).
    let win_b = s.ah.desktop().wm().records()[2].id;
    let patch = Image::filled(30, 20, [10, 200, 10, 255]).unwrap();
    s.ah.desktop_mut().draw(win_b, 50, 50, &patch);
    for p in [p1, p2, p3] {
        converge(&mut s, p);
        let content = s.participant(p).window_content(2).unwrap();
        assert_eq!(
            content.pixel(50, 50),
            Some([10, 200, 10, 255]),
            "participant {p}"
        );
    }
}

#[test]
fn hip_coordinates_translate_back_from_shifted_layout() {
    let mut s = SimSession::new(figure2_desktop(), AhConfig::default(), 11);
    let p = s.add_tcp_participant(
        Layout::Shifted { dx: 220, dy: 150 },
        TcpConfig::default(),
        LinkConfig::default(),
        12,
    );
    converge(&mut s, p);
    // The participant clicks at its local (280, 300) — inside window B,
    // which sits at local (230, 250). That is absolute (500, 450).
    let (win, ax, ay) = s.participant(p).untranslate_point(280, 300).unwrap();
    assert_eq!(win.0, 2);
    assert_eq!((ax, ay), (500, 450));
    let click = HipMessage::MousePressed {
        window_id: win,
        button: MouseButton::Left,
        left: ax,
        top: ay,
    };
    s.send_hip(p, &click);
    // Let the upstream link deliver.
    for _ in 0..20 {
        s.step(10_000);
    }
    let injected = s.ah.take_injected();
    assert_eq!(
        injected.len(),
        1,
        "translated click must pass the §4.1 gate"
    );
    assert_eq!(injected[0].1.coordinates(), Some((500, 450)));
}

#[test]
fn z_order_change_propagates_without_pixels() {
    let mut s = SimSession::new(figure2_desktop(), AhConfig::default(), 13);
    let p = s.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        14,
    );
    converge(&mut s, p);
    let before = s.ah.participant_bytes_sent(s.handle(p));
    // Raise A (bottom) to the top.
    let a = s.ah.desktop().wm().records()[0].id;
    s.ah.desktop_mut().raise_window(a);
    s.run_until(10_000, 5_000_000, |s| {
        s.participant(p).z_order() == [1, 2, 0]
    })
    .expect("z-order update arrives");
    let cost = s.ah.participant_bytes_sent(s.handle(p)) - before;
    assert!(cost < 300, "restack costs one WMI, got {cost} bytes");
    // Rendered overlap now shows A on top, matching the AH composite.
    let frame = s.participant(p).render(1280, 1024);
    assert_eq!(frame, s.ah.desktop().composite(true));
}
